//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, implemented over
//! `std::sync::mpsc`. Unlike std receivers, crossbeam receivers are
//! `Clone + Sync`; we recover that by sharing the std receiver behind a
//! mutex, which is plenty for the subscriber/event-drain patterns this
//! workspace uses.

pub mod channel {
    //! Multi-producer multi-consumer channels (subset of crossbeam-channel).

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel (clonable and shared).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv()
        }

        /// Receives a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv()
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout)
        }

        /// Drains currently pending messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Iterates until all senders are gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over pending messages; see [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    /// Blocking iterator; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_try_iter_drains() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn disconnected_sender_reported() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
