//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal API-compatible subset of `parking_lot` built on
//! `std::sync`. The semantic difference that matters to callers —
//! `lock()`/`read()`/`write()` returning guards directly instead of
//! `LockResult`s — is preserved by swallowing poison (a panicking
//! thread does not leave the lock unusable, matching parking_lot).

use std::fmt;
use std::sync::PoisonError;

/// A mutex that hands out guards without a `Result` wrapper.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (rather than a
    /// notification).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this shim's [`Mutex`] guards, in the
/// `parking_lot` style: `wait*` take the guard by `&mut` reference.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically releases the guard's mutex and waits until notified,
    /// reacquiring before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |g| match self.0.wait(g) {
            Ok(g) => (g, false),
            Err(poisoned) => (poisoned.into_inner(), false),
        });
    }

    /// Like [`Condvar::wait`], but gives up at `timeout` (an absolute
    /// instant, as in `parking_lot`).
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Instant,
    ) -> WaitTimeoutResult {
        let dur = timeout.saturating_duration_since(std::time::Instant::now());
        self.wait_for(guard, dur)
    }

    /// Like [`Condvar::wait`], but gives up after `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let timed_out = self.replace_guard(guard, |g| match self.0.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res.timed_out()),
            Err(poisoned) => {
                let (g, res) = poisoned.into_inner();
                (g, res.timed_out())
            }
        });
        WaitTimeoutResult(timed_out)
    }

    /// Bridges std's by-value guard API to parking_lot's by-reference
    /// one: moves the guard out of `slot`, runs `f` (which consumes and
    /// returns a guard), and moves the result back in. `f` must not
    /// panic between the read and the write; the std waits it wraps
    /// return poison as `Err` instead of panicking.
    fn replace_guard<'a, T, R>(
        &self,
        slot: &mut MutexGuard<'a, T>,
        f: impl FnOnce(MutexGuard<'a, T>) -> (MutexGuard<'a, T>, R),
    ) -> R {
        unsafe {
            let taken = std::ptr::read(slot);
            let (back, out) = f(taken);
            std::ptr::write(slot, back);
            out
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock that hands out guards without a `Result` wrapper.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wakes_waiter_and_times_out() {
        use std::sync::Arc;
        use std::time::{Duration, Instant};
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        assert!(waiter.join().unwrap());

        // Timed wait with no notifier times out.
        let (lock, cv) = &*pair;
        *lock.lock() = false;
        let mut ready = lock.lock();
        let res = cv.wait_until(&mut ready, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(!*ready, "guard reacquired and usable after timeout");
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
