//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal API-compatible subset of `parking_lot` built on
//! `std::sync`. The semantic difference that matters to callers —
//! `lock()`/`read()`/`write()` returning guards directly instead of
//! `LockResult`s — is preserved by swallowing poison (a panicking
//! thread does not leave the lock unusable, matching parking_lot).

use std::fmt;
use std::sync::PoisonError;

/// A mutex that hands out guards without a `Result` wrapper.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock that hands out guards without a `Result` wrapper.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
