//! Strategies: composable random-value generators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, RngCore};

use crate::test_runner::TestRng;

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        TestRng::next_u64(self)
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `f` (regenerating; panics after
    /// too many rejections, since there is no global rejection budget).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.reason
        );
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(std::rc::Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Weighted union of same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a non-zero value.
    pub fn new(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = branches.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one branch");
        Union { branches, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as usize) as u32;
        for (weight, branch) in &self.branches {
            if pick < *weight {
                return branch.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum mismatch")
    }
}

/// The constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- primitives ---------------------------------------------------------

/// Primitive types generable by [`any`].
pub trait ArbitraryPrim {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryPrim for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryPrim for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryPrim for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite floats over a broad range, with occasional exact zero.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.below(61) as i32) - 30;
        mantissa * (2f64).powi(exp)
    }
}

impl ArbitraryPrim for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        any_char(&mut *rng)
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: ArbitraryPrim> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating arbitrary values of a primitive type.
pub fn any<T: ArbitraryPrim>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

// ---- ranges -------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

// ---- tuples -------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---- collections --------------------------------------------------------

/// Length bounds for [`crate::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max_inclusive - self.size.min + 1;
        let len = self.size.min + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

// ---- regex-literal string strategies ------------------------------------

/// `&str` literals act as regex-subset strategies producing `String`s.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// One parsed regex atom plus its repetition bounds.
struct Atom {
    kind: AtomKind,
    min: usize,
    max: usize,
}

enum AtomKind {
    /// A literal character.
    Literal(char),
    /// `.` — any printable character.
    Dot,
    /// A character class, possibly negated.
    Class { chars: Vec<char>, negated: bool },
}

fn any_char(rng: &mut TestRng) -> char {
    // Mostly printable ASCII; sometimes a newline or a multi-byte char,
    // so "never panics on garbage" tests see non-trivial input.
    match rng.below(20) {
        0 => '\n',
        1 => 'é',
        2 => '→',
        _ => (0x20u8 + rng.below(0x5f) as u8) as char,
    }
}

const PRINTABLE: Range<u8> = 0x20..0x7f;

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> AtomKind {
    let mut members: Vec<char> = Vec::new();
    let negated = chars.peek() == Some(&'^') && {
        chars.next();
        true
    };
    let mut pending: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => {
                if let Some(p) = pending {
                    members.push(p);
                }
                return AtomKind::Class {
                    chars: members,
                    negated,
                };
            }
            '\\' => {
                if let Some(p) = pending.take() {
                    members.push(p);
                }
                pending = Some(unescape(chars.next().unwrap_or('\\')));
            }
            '-' => {
                // Range if we have a pending start and a following end.
                match (pending.take(), chars.peek().copied()) {
                    (Some(start), Some(end)) if end != ']' => {
                        chars.next();
                        let end = if end == '\\' {
                            unescape(chars.next().unwrap_or('\\'))
                        } else {
                            end
                        };
                        for code in (start as u32)..=(end as u32) {
                            if let Some(ch) = char::from_u32(code) {
                                members.push(ch);
                            }
                        }
                    }
                    (start, _) => {
                        if let Some(s) = start {
                            members.push(s);
                        }
                        members.push('-');
                    }
                }
            }
            other => {
                if let Some(p) = pending.take() {
                    members.push(p);
                }
                pending = Some(other);
            }
        }
    }
    // Unterminated class: treat accumulated members literally.
    if let Some(p) = pending {
        members.push(p);
    }
    AtomKind::Class {
        chars: members,
        negated,
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        '0' => '\0',
        other => other,
    }
}

fn parse_repetition(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Option<(usize, usize)> {
    if chars.peek() != Some(&'{') {
        return None;
    }
    chars.next();
    let mut min_digits = String::new();
    let mut max_digits = String::new();
    let mut in_max = false;
    for c in chars.by_ref() {
        match c {
            '}' => break,
            ',' => in_max = true,
            d if d.is_ascii_digit() => {
                if in_max {
                    max_digits.push(d);
                } else {
                    min_digits.push(d);
                }
            }
            _ => return None,
        }
    }
    let min: usize = min_digits.parse().unwrap_or(0);
    let max: usize = if in_max {
        max_digits.parse().unwrap_or(min)
    } else {
        min
    };
    Some((min, max.max(min)))
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let kind = match c {
            '[' => parse_class(&mut chars),
            '.' => AtomKind::Dot,
            '\\' => AtomKind::Literal(unescape(chars.next().unwrap_or('\\'))),
            '*' | '?' | '+' if !atoms.is_empty() => {
                // Bare quantifiers on the previous atom (rare; map to 0..=3).
                let prev: &mut Atom = atoms.last_mut().unwrap();
                match c {
                    '*' => {
                        prev.min = 0;
                        prev.max = 3;
                    }
                    '+' => {
                        prev.min = 1;
                        prev.max = 4;
                    }
                    _ => {
                        prev.min = 0;
                        prev.max = 1;
                    }
                }
                continue;
            }
            other => AtomKind::Literal(other),
        };
        let (min, max) = parse_repetition(&mut chars).unwrap_or((1, 1));
        atoms.push(Atom { kind, min, max });
    }
    atoms
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse_pattern(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let span = atom.max - atom.min + 1;
        let count = atom.min + rng.below(span.max(1));
        for _ in 0..count {
            match &atom.kind {
                AtomKind::Literal(c) => out.push(*c),
                AtomKind::Dot => out.push(any_char(rng)),
                AtomKind::Class { chars, negated } => {
                    if *negated {
                        loop {
                            let candidate =
                                (PRINTABLE.start + rng.below(PRINTABLE.len()) as u8) as char;
                            if !chars.contains(&candidate) {
                                out.push(candidate);
                                break;
                            }
                        }
                    } else if chars.is_empty() {
                        out.push(any_char(rng));
                    } else {
                        out.push(chars[rng.below(chars.len())]);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn class_pattern_respects_alphabet_and_length() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[a-c]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn negated_class_excludes_members() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[^\\r\\n]{0,40}".generate(&mut rng);
            assert!(!s.contains('\r') && !s.contains('\n'));
        }
    }

    #[test]
    fn escaped_class_members_and_concatenation() {
        let mut rng = rng();
        let allowed: Vec<char> = "abAB/[]\"*?<>=. ".chars().collect();
        for _ in 0..200 {
            let s = "[abAB/\\[\\]\"*?<>=. ]{1,10}".generate(&mut rng);
            assert!(s.chars().all(|c| allowed.contains(&c)), "{s:?}");
        }
        let s = "[A-Z][a-z]{2,4}".generate(&mut rng);
        assert!(s.len() >= 3 && s.chars().next().unwrap().is_ascii_uppercase());
    }

    #[test]
    fn combinators_compose() {
        let mut rng = rng();
        let strat = (0u64..10, "[ab]{1,2}")
            .prop_map(|(n, s)| (n * 2, s))
            .prop_filter("even", |(n, _)| *n % 2 == 0);
        for _ in 0..50 {
            let (n, s) = strat.generate(&mut rng);
            assert!(n < 20 && n % 2 == 0);
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn union_and_vec() {
        let mut rng = rng();
        let strat = crate::collection::vec(
            crate::prop_oneof![(0u8..3).prop_map(|_| 'x'), (0u8..3).prop_map(|_| 'y')],
            1..6,
        );
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((1..=5).contains(&v.len()));
            assert!(v.iter().all(|c| *c == 'x' || *c == 'y'));
        }
    }
}
