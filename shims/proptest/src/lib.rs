//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! ships a small, API-compatible subset of proptest:
//!
//! - the [`proptest!`] macro (`fn name(arg in strategy, …) { … }`,
//!   optional `#![proptest_config(…)]` header),
//! - [`strategy::Strategy`] with `prop_map` / `prop_filter` / `boxed`,
//! - range, regex-literal, tuple and [`collection::vec`] strategies,
//!   [`any`], [`Just`] and [`prop_oneof!`],
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from real proptest: cases are generated from a seed
//! derived from the test name (fully deterministic across runs), and
//! there is **no shrinking** — a failing case panics with the values
//! printed via the assertion message. Regex strategies support the
//! subset used in this repository: literals, `.`, character classes
//! (ranges, negation, escapes) and `{m}` / `{m,n}` repetition.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The usual proptest imports.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{any, BoxedStrategy, Just, Strategy};
pub use test_runner::ProptestConfig;

/// Defines property tests: each `fn name(arg in strategy, …) body` runs
/// `ProptestConfig::cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strats = ($($strat,)+);
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                $body
            }
        }
    )*};
}

/// One-of strategy over same-valued strategies; optional `weight =>` forms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Asserts a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality of a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality of a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
