//! Test configuration and the deterministic RNG behind generation.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 96 keeps the workspace's large
        // property suites fast while still exercising the space.
        ProptestConfig { cases: 96 }
    }
}

/// Deterministic RNG: seeded from the test name, so failures reproduce.
pub struct TestRng(StdRng);

impl TestRng {
    /// An RNG whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// The next raw word.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
