//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `Bencher::iter` / `iter_batched`, throughput annotation — with a
//! simple wall-clock measurement loop: per sample, run the routine in
//! an adaptively sized batch and record the per-iteration time; report
//! min / median / mean over `sample_size` samples.
//!
//! When the binary is invoked *without* `--bench` (i.e. by `cargo
//! test`, which runs `harness = false` bench targets as plain
//! executables), every benchmark routine is executed exactly once as a
//! smoke test and no timing is reported, keeping the test suite fast.

use std::time::{Duration, Instant};

/// An opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. Ignored by this harness
/// (every batch re-runs setup per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup runs once per iteration.
    PerIteration,
    /// Small input: setup cost amortized over a small batch.
    SmallInput,
    /// Large input: setup cost amortized over a large batch.
    LargeInput,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--bench` under `cargo bench`
        // and without it under `cargo test`.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(700),
            smoke_test: !bench_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Accepts CLI arguments (no-op beyond the `--bench` detection done
    /// at construction).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.smoke_test {
            println!("\n== group: {name}");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let sample_size = self.sample_size;
        let throughput = None;
        self.run_one(&id.into(), sample_size, throughput, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &self,
        id: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            mode: if self.smoke_test {
                Mode::Smoke
            } else {
                Mode::Measure {
                    sample_size,
                    measurement_time: self.measurement_time,
                }
            },
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.smoke_test {
            return;
        }
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean: Duration = samples.iter().sum::<Duration>() / samples.len() as u32;
        let rate = throughput
            .map(|t| match t {
                Throughput::Bytes(b) => {
                    let gib = b as f64 / median.as_secs_f64() / (1 << 30) as f64;
                    format!("  {gib:8.3} GiB/s")
                }
                Throughput::Elements(e) => {
                    let me = e as f64 / median.as_secs_f64() / 1e6;
                    format!("  {me:8.3} Melem/s")
                }
            })
            .unwrap_or_default();
        println!(
            "{id:<40} min {:>12?}  median {:>12?}  mean {:>12?}{rate}",
            min, median, mean
        );
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks one routine within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion
            .run_one(&full, sample_size, self.throughput, f);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

enum Mode {
    Smoke,
    Measure {
        sample_size: usize,
        measurement_time: Duration,
    },
}

/// Runs and times the benchmark routine.
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
            }
            Mode::Measure {
                sample_size,
                measurement_time,
            } => {
                // Warm-up & batch sizing: grow the batch until it runs
                // long enough to time reliably.
                let mut batch = 1u64;
                let per_iter = loop {
                    let start = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= Duration::from_millis(2) || batch >= 1 << 20 {
                        break elapsed / batch as u32;
                    }
                    batch *= 4;
                };
                let per_sample = (measurement_time.as_nanos() / sample_size.max(1) as u128).max(1);
                let iters_per_sample =
                    (per_sample / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
                for _ in 0..sample_size {
                    let start = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(routine());
                    }
                    self.samples.push(start.elapsed() / iters_per_sample as u32);
                }
            }
        }
    }

    /// Times `routine` over inputs built by `setup` (setup not timed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Smoke => {
                black_box(routine(setup()));
            }
            Mode::Measure { sample_size, .. } => {
                // Setup cost forces one-iteration samples; use more
                // samples to compensate.
                for _ in 0..sample_size.max(8) * 4 {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    self.samples.push(start.elapsed());
                }
            }
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(10),
            smoke_test: true,
        };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.bench_function("one", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut c = Criterion {
            sample_size: 5,
            measurement_time: Duration::from_millis(20),
            smoke_test: false,
        };
        c.bench_function("busy", |b| b.iter(|| black_box(7u64).wrapping_mul(3)));
    }
}
