//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply clonable, immutable, sliceable byte buffer:
//! shared ownership via `Arc<[u8]>` (or a borrowed `'static` slice for
//! `from_static`) plus a window. Clones and `slice()` are O(1) and never
//! copy the payload, which is the property the content-component code
//! relies on.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

/// A cheaply clonable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty buffer.
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a `'static` slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// An O(1) sub-view sharing the same backing storage.
    ///
    /// Panics if the range is out of bounds, matching `bytes`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range {begin}..{end} out of bounds of {len}"
        );
        Bytes {
            repr: self.repr.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        let full = match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => &a[..],
        };
        &full[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    /// Renders like `b"ab\xff"`, close to `bytes`' Debug output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_window() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[2, 3]);
    }

    #[test]
    fn equality_and_from_static() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from("hi".to_owned()).len(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        let _ = Bytes::from_static(b"ab").slice(0..3);
    }
}
