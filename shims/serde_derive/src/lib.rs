//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as a marker
//! (nothing serializes through serde at runtime; persistence uses its
//! own wire formats). These derives therefore expand to nothing, which
//! keeps the annotated types compiling without crates.io access.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
