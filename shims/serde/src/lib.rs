//! Offline stand-in for `serde`.
//!
//! The workspace uses serde only to mark types as serializable; no code
//! path serializes through serde at runtime (persistence has bespoke
//! wire formats, and the one "serde" test round-trips through `Debug`).
//! So the traits here are empty markers and the derives are no-ops.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
impl<T> DeserializeOwned for T {}
