//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: `StdRng` (here a
//! xoshiro256** seeded via SplitMix64 — *not* bit-compatible with the
//! real `rand::rngs::StdRng`, but fully deterministic for a given
//! seed, which is all the dataset generator promises), `SeedableRng::
//! seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}`.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG ("Standard" dist).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly; mirrors `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for all RNGs.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seeding, per the xoshiro reference code.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let n = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
