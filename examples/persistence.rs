//! Index persistence: a PDSMS restart without re-scanning the dataspace.
//!
//! The paper's prototype kept the catalog in Apache Derby and the text
//! indexes in Lucene, both disk-backed. This example shows the same
//! lifecycle here: ingest once, save the index bundle, simulate a
//! restart by loading it into a fresh processor, and keep querying.
//!
//! ```sh
//! cargo run --example persistence
//! ```

use std::sync::Arc;
use std::time::Instant;

use imemex::core::prelude::*;
use imemex::index::persist;
use imemex::query::QueryProcessor;
use imemex::system::{FsPlugin, Pdsms, QueryRequest};
use imemex::vfs::{NodeId, VirtualFs};

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let now = Timestamp::from_ymd(2006, 9, 12)?;

    // Session 1: ingest and index a dataspace, then save.
    let fs = Arc::new(VirtualFs::new(now));
    let dir = fs.mkdir_p("/papers", now)?;
    for i in 0..25 {
        fs.create_file(
            dir,
            &format!("paper{i:02}.tex"),
            format!(
                "\\section{{Study {i}}}\nThis paper number {i} discusses \
                 {} at length.",
                if i % 5 == 0 {
                    "database tuning"
                } else {
                    "other topics"
                }
            ),
            now,
        )?;
    }
    let mut system = Pdsms::new();
    system.register_source(Arc::new(FsPlugin::new(Arc::clone(&fs), NodeId::ROOT)));
    let ingest_start = Instant::now();
    system.index_all()?;
    let ingest_time = ingest_start.elapsed();

    let path = std::env::temp_dir().join("imemex-example-indexes.idm");
    persist::save(system.indexes(), &path)?;
    let file_size = std::fs::metadata(&path)?.len();
    println!(
        "session 1: ingested {} views in {:.1} ms; saved indexes ({} bytes) to {}",
        system.store().len(),
        ingest_time.as_secs_f64() * 1e3,
        file_size,
        path.display()
    );
    let answer_before = system
        .run(&QueryRequest::new(r#""database tuning""#))?
        .result
        .rows
        .len();
    drop(system); // the first session ends

    // Session 2: restart — load the indexes, no re-scan.
    let load_start = Instant::now();
    let restored = Arc::new(persist::load(&path)?);
    let load_time = load_start.elapsed();
    let fresh_store = Arc::new(ViewStore::new());
    let processor = QueryProcessor::new(fresh_store, restored);
    let answer_after = processor.execute(r#""database tuning""#)?.rows.len();
    println!(
        "session 2: loaded indexes in {:.1} ms (vs {:.1} ms to re-ingest)",
        load_time.as_secs_f64() * 1e3,
        ingest_time.as_secs_f64() * 1e3,
    );
    println!("  query answers before restart: {answer_before}");
    println!("  query answers after restart:  {answer_after}");
    assert_eq!(answer_before, answer_after);

    // Structural queries work too: the catalog and the group replica
    // travelled with the file.
    let sections = processor.execute(r#"//papers//*[class="latex_section"]"#)?;
    println!(
        "  sections still reachable via the group replica: {}",
        sections.rows.len()
    );
    assert_eq!(sections.rows.len(), 25);

    std::fs::remove_file(&path).ok();
    Ok(())
}
