//! Infinite components: data streams, RSS pseudo-streams, the INBOX
//! message stream (Option 2 of Section 4.4.1) and push-based operators
//! (Section 4.4.2).
//!
//! ```sh
//! cargo run --example streams_and_feeds
//! ```

use std::sync::Arc;

use imemex::core::prelude::*;
use imemex::email::message::EmailMessage;
use imemex::email::ImapServer;
use imemex::streams::engine::KeywordFilter;
use imemex::streams::{GeneratorTupleStream, PushEngine, RssStreamSource, StreamWindow};
use imemex::xml::rss::{Feed, FeedItem, FeedServer};

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let store = Arc::new(ViewStore::new());

    // ---- 1. An infinite tuple stream (class `tupstream`) ----
    let schema = Schema::of(&[("seq", Domain::Integer), ("temp", Domain::Float)]);
    let stream_view = GeneratorTupleStream::new(schema, |n| {
        vec![
            Value::Integer(n as i64),
            Value::Float(20.0 + (n % 10) as f64 * 0.5),
        ]
    })
    .into_stream_view(&store)?;
    println!(
        "tuple stream view {stream_view} conforms to datstream: {}",
        store.conforms_to(stream_view, "datstream")?
    );

    // Infinite group components are managed through a bounded window.
    let window = StreamWindow::new(4);
    let GroupSnapshot::Infinite(source) = store.group(stream_view)? else {
        unreachable!("stream groups are infinite")
    };
    window.pull_n(&store, source.as_ref(), 10)?;
    println!(
        "pulled 10 tuples; window holds the last {} (total observed {})",
        window.len(),
        window.total_observed()
    );

    // ---- 2. RSS: polling a state into a pseudo data stream ----
    let feeds = Arc::new(FeedServer::new());
    let url = "http://feeds.example.org/dbis";
    feeds.publish(url, Feed::new("DBIS group news"));
    feeds.append_item(
        url,
        FeedItem {
            title: "iDM paper accepted at VLDB".into(),
            author: "jens".into(),
            published: Timestamp::from_ymd(2006, 5, 1)?,
            body: "The data model paper was accepted.".into(),
        },
    );
    let rss_view = RssStreamSource::new(Arc::clone(&feeds), url).into_stream_view(&store)?;
    let GroupSnapshot::Infinite(rss_source) = store.group(rss_view)? else {
        unreachable!()
    };
    let first = rss_source.try_next(&store)?.expect("one item published");
    println!(
        "\nRSS item delivered as an xmldoc view: {}",
        store.conforms_to(first, "xmldoc")?
    );
    println!(
        "stream dry until the server changes: {:?}",
        rss_source.try_next(&store)?
    );
    feeds.append_item(
        url,
        FeedItem {
            title: "Demo at VLDB 2005".into(),
            author: "marcos".into(),
            published: Timestamp::from_ymd(2005, 9, 1)?,
            body: "iMeMex demo paper.".into(),
        },
    );
    println!(
        "after a new post, polling delivers again: {:?}",
        rss_source.try_next(&store)?.is_some()
    );

    // ---- 3. Email Option 2: the INBOX as an infinite message stream ----
    let imap = Arc::new(ImapServer::in_process());
    for i in 0..3 {
        imap.append(
            imap.inbox(),
            &EmailMessage {
                subject: format!("status update {i}"),
                from: "team@ethz".into(),
                to: "jens.dittrich@inf.ethz.ch".into(),
                date: Timestamp::from_ymd(2006, 9, 1 + i)?,
                body: if i == 1 {
                    "the new stream operator is ready".into()
                } else {
                    "routine status".into()
                },
                attachments: vec![],
            },
        )?;
    }
    // Push-based protocol: a standing keyword filter sees each message
    // view the moment the stream mints it.
    let engine = PushEngine::attach(Arc::clone(&store));
    let filter = Arc::new(KeywordFilter::new("stream operator"));
    engine.register(Arc::clone(&filter) as _);

    let inbox_stream = imemex::email::convert::InboxStreamSource::new(
        Arc::clone(&imap),
        imap.inbox(),
        true, // consume: delivered messages leave the server
    );
    let mut delivered = 0;
    while let Some(vid) = inbox_stream.try_next(&store)? {
        delivered += 1;
        let _ = vid;
    }
    engine.pump();
    println!(
        "\nINBOX stream delivered {delivered} messages (consumed: server now has {} left)",
        imap.message_count()
    );
    println!(
        "push filter matched {} message(s) containing 'stream operator'",
        filter.matches().len()
    );
    assert_eq!(filter.matches().len(), 1);
    Ok(())
}
