//! Quickstart: build a tiny personal dataspace, index it, and query it
//! with iQL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! This walks the core loop of the iMeMex PDSMS: create a (virtual)
//! filesystem, register it as a data source, let the Resource View
//! Manager ingest + convert + index it, then ask questions that cross
//! the boundary between folder hierarchy and file *content*.

use std::sync::Arc;

use imemex::system::{FsPlugin, Pdsms, QueryRequest};
use imemex::vfs::{NodeId, VirtualFs};
use imemex::Timestamp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let now = Timestamp::from_ymd(2006, 9, 12)?;

    // 1. A small personal filesystem: two projects, three documents.
    let fs = Arc::new(VirtualFs::new(now));
    let pim = fs.mkdir_p("/Projects/PIM", now)?;
    fs.create_file(
        pim,
        "vldb2006.tex",
        "\\documentclass{vldb}\n\
         \\title{iDM: A Unified and Versatile Data Model}\n\
         \\begin{document}\n\
         \\section{Introduction}\nDataspaces, as proposed by Mike Franklin,\n\
         unify personal information management.\n\
         \\section{Data Model}\nA resource view has four components.\n\
         \\end{document}",
        now,
    )?;
    let olap = fs.mkdir_p("/Projects/OLAP", now)?;
    fs.create_file(
        olap,
        "eval.tex",
        "\\section{Evaluation}\nNumbers and graphs.\n\
         \\begin{figure}\\caption{Indexing Time per source}\\label{fig:idx}\\end{figure}",
        now,
    )?;
    fs.create_file(olap, "readme.txt", "Notes about database tuning.", now)?;

    // 2. The PDSMS: register the source and index everything.
    let mut system = Pdsms::new();
    system.register_source(Arc::new(FsPlugin::new(Arc::clone(&fs), NodeId::ROOT)));
    let stats = system.index_all()?;
    for s in &stats {
        println!(
            "indexed source '{}': {} base views, {} derived (XML: {}, LaTeX: {})",
            s.source,
            s.base_views,
            s.derived_views(),
            s.derived_xml,
            s.derived_latex
        );
    }

    // 3. Queries that bridge the inside/outside-file boundary.
    for iql in [
        // keyword search over every content component
        r#""database tuning""#,
        // structural: LaTeX Introduction sections inside project PIM
        r#"//PIM//Introduction[class="latex_section" and "Mike Franklin"]"#,
        // figures with a caption phrase, anywhere under OLAP
        r#"//OLAP//*[class="figure" and "Indexing Time"]"#,
        // attribute predicates over the filesystem schema W_FS
        r#"[size > 100 and lastmodified < yesterday()]"#,
    ] {
        let result = system.run(&QueryRequest::new(iql))?.result;
        println!("\niQL> {iql}");
        println!("  -> {} result(s)", result.rows.len());
        for vid in result.rows.views().iter().take(5) {
            let store = system.store();
            println!(
                "     {} (class {:?})",
                store.name(*vid)?.unwrap_or_else(|| "<unnamed>".into()),
                store.class_name(*vid)?.unwrap_or_else(|| "-".into()),
            );
        }
    }

    // 4. EXPLAIN a plan.
    println!(
        "\nplan for the PIM query:\n{}",
        system.explain(r#"//PIM//Introduction[class="latex_section" and "Mike Franklin"]"#)?
    );
    Ok(())
}
