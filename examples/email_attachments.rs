//! Example 2 from the paper: **files versus email attachments**.
//!
//! "Show me all documents pertaining to project 'OLAP' that have a
//! figure containing the phrase 'Indexing Time' in its label." Half the
//! project lives in a folder on disk, half as attachments to email —
//! iDM abstracts both subsystems into the same graph, so one query
//! covers both.
//!
//! ```sh
//! cargo run --example email_attachments
//! ```

use std::sync::Arc;

use imemex::email::message::{Attachment, EmailMessage};
use imemex::email::ImapServer;
use imemex::system::{FsPlugin, ImapPlugin, Pdsms, QueryRequest};
use imemex::vfs::{NodeId, VirtualFs};
use imemex::Timestamp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let now = Timestamp::from_ymd(2006, 9, 12)?;

    // Big project: a folder on the local disk.
    let fs = Arc::new(VirtualFs::new(now));
    let olap_dir = fs.mkdir_p("/Projects/OLAP", now)?;
    fs.create_file(
        olap_dir,
        "evaluation.tex",
        "\\section{Evaluation}\n\
         \\begin{figure}\\caption{Indexing Time by data source}\\label{fig:a}\\end{figure}\n\
         Numbers discussed in the text.",
        now,
    )?;

    // Small project: attachments exchanged with the team over IMAP.
    let imap = Arc::new(ImapServer::in_process());
    let projects_mbox = imap.create_mailbox(imap.inbox(), "Projects")?;
    let olap_mbox = imap.create_mailbox(projects_mbox, "OLAP")?;
    imap.append(
        olap_mbox,
        &EmailMessage {
            subject: "updated figures".into(),
            from: "marcos@inf.ethz.ch".into(),
            to: "jens.dittrich@inf.ethz.ch".into(),
            date: now,
            body: "Latest plots attached.".into(),
            attachments: vec![Attachment {
                filename: "plots.tex".into(),
                content: "\\begin{figure}\\caption{Indexing Time over scale factors}\
                          \\label{fig:b}\\end{figure}"
                    .into(),
            }],
        },
    )?;
    // A decoy message in another project.
    imap.append(
        projects_mbox,
        &EmailMessage {
            subject: "lecture notes".into(),
            from: "x@y".into(),
            to: "z@w".into(),
            date: now,
            body: "No figures here.".into(),
            attachments: vec![],
        },
    )?;

    let mut system = Pdsms::new();
    system.register_source(Arc::new(FsPlugin::new(Arc::clone(&fs), NodeId::ROOT)));
    system.register_source(Arc::new(ImapPlugin::new(Arc::clone(&imap))));
    for stats in system.index_all()? {
        println!(
            "indexed '{}': {} views total",
            stats.source,
            stats.total_views()
        );
    }

    // ---- Query 2 ----
    let query = r#"//OLAP//*[class="figure" and "Indexing Time"]"#;
    let result = system.run(&QueryRequest::new(query))?.result;
    println!("\nQuery 2: {query}");
    println!("{} result(s):", result.rows.len());
    let store = system.store();
    for vid in result.rows.views() {
        let caption = store
            .tuple(vid)?
            .and_then(|t| t.get("caption").map(ToString::to_string))
            .unwrap_or_default();
        println!(
            "  {} — caption: {caption}",
            store.name(vid)?.unwrap_or_default()
        );
    }
    assert_eq!(
        result.rows.len(),
        2,
        "one figure on disk, one inside an email attachment"
    );
    println!("\nThe boundary between the filesystem and the IMAP server is gone:");
    println!("both figures are ordinary resource views under an 'OLAP' view.");
    Ok(())
}
