//! Example 1 from the paper: **inside versus outside files**.
//!
//! "Show me all LaTeX 'Introduction' sections pertaining to project PIM
//! that contain the phrase 'Mike Franklin'." — a query impossible with
//! 2006-era tools because it bridges the folder hierarchy (*outside*)
//! and the document structure (*inside*). In iDM both sides live in the
//! same resource view graph, so one iQL query answers it.
//!
//! ```sh
//! cargo run --example inside_outside
//! ```

use std::sync::Arc;

use imemex::core::graph;
use imemex::system::{FsPlugin, Pdsms, QueryRequest};
use imemex::vfs::{NodeId, VirtualFs};
use imemex::Timestamp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let now = Timestamp::from_ymd(2006, 9, 12)?;
    let fs = Arc::new(VirtualFs::new(now));

    // The Figure 1 filesystem: Projects/{PIM, OLAP}, a LaTeX paper, a
    // grant document, and a folder link that closes a cycle.
    let projects = fs.mkdir_p("/Projects", now)?;
    let pim = fs.mkdir_p("/Projects/PIM", now)?;
    fs.mkdir_p("/Projects/OLAP", now)?;
    fs.create_link(pim, "All Projects", projects, now)?;
    fs.create_file(
        pim,
        "vldb 2006.tex",
        "\\documentclass{vldb}\n\\title{iDM}\n\\begin{document}\n\
         \\section{Introduction}\nPersonal dataspaces, following Mike Franklin.\n\
         \\subsection{The Problem}\nSee Section~\\ref{sec:prelim}.\n\
         \\section{Preliminaries} \\label{sec:prelim}\nDefinitions.\n\
         \\end{document}",
        now,
    )?;
    fs.create_file(pim, "Grant.doc", "A grant proposal document.", now)?;
    // A decoy: an Introduction that does NOT mention Franklin.
    let olap = fs.resolve("/Projects/OLAP")?;
    fs.create_file(
        olap,
        "olap-paper.tex",
        "\\section{Introduction}\nAbout OLAP indexing only.",
        now,
    )?;

    let mut system = Pdsms::new();
    system.register_source(Arc::new(FsPlugin::new(Arc::clone(&fs), NodeId::ROOT)));
    system.index_all()?;
    let store = system.store();

    // ---- Query 1 ----
    let query = r#"//PIM//Introduction[class="latex_section" and "Mike Franklin"]"#;
    let result = system.run(&QueryRequest::new(query))?.result;
    println!("Query 1: {query}");
    println!("{} result(s):", result.rows.len());
    for vid in result.rows.views() {
        println!(
            "  section '{}' with content: {:?}",
            store.name(vid)?.unwrap_or_default(),
            store.content(vid)?.text_lossy()?
        );
    }
    assert_eq!(result.rows.len(), 1, "only the PIM Introduction matches");

    // Without the PIM constraint, the OLAP decoy's Introduction also
    // matches the *name*, but not the phrase:
    let all_intros = system
        .run(&QueryRequest::new(
            r#"//Introduction[class="latex_section"]"#,
        ))?
        .result;
    println!(
        "\nAll Introduction sections in the dataspace: {}",
        all_intros.rows.len()
    );

    // ---- The graph structure the paper highlights ----
    // The \ref makes 'Preliminaries' reachable from two parents, and the
    // 'All Projects' link closes a cycle in the files&folders graph.
    let projects_view = system.indexes().name.exact("Projects")[0];
    println!(
        "\n'Projects' lies on a cycle: {}",
        graph::is_indirectly_related(store, projects_view, projects_view)?
    );
    let prelim = system.indexes().name.exact("Preliminaries")[0];
    let parents = system.indexes().group.parents(prelim);
    println!(
        "'Preliminaries' has {} incoming edges (document order + \\ref)",
        parents.len()
    );
    assert!(parents.len() >= 2);
    Ok(())
}
