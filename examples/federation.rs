//! A network of iMeMex instances (the paper's Section 8 P2P outlook):
//! laptop, desktop and a home server each run their own dataspace; one
//! iQL query fans out to all of them and merges globally ranked.
//!
//! ```sh
//! cargo run --example federation
//! ```

use std::sync::Arc;

use imemex::system::{Federation, FsPlugin, Pdsms, QueryRequest};
use imemex::vfs::{NodeId, VirtualFs};
use imemex::Timestamp;

fn peer(files: &[(&str, &str)]) -> Result<Pdsms, Box<dyn std::error::Error>> {
    let now = Timestamp::from_ymd(2006, 9, 12)?;
    let fs = Arc::new(VirtualFs::new(now));
    let dir = fs.mkdir_p("/docs", now)?;
    for (name, body) in files {
        fs.create_file(dir, name, body.to_string(), now)?;
    }
    let mut system = Pdsms::new();
    system.register_source(Arc::new(FsPlugin::new(fs, NodeId::ROOT)));
    system.index_all()?;
    Ok(system)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut federation = Federation::new();
    federation.add_peer(
        "laptop",
        peer(&[
            (
                "draft.tex",
                "\\section{Intro}\nnotes on database tuning for the course",
            ),
            ("todo.txt", "buy milk, fix the bike"),
        ])?,
    )?;
    federation.add_peer(
        "desktop",
        peer(&[
            (
                "tuning-guide.tex",
                "\\section{Guide}\ndatabase tuning database tuning database tuning",
            ),
            ("photos-index.txt", "holiday pictures list"),
        ])?,
    )?;
    federation.add_peer(
        "homeserver",
        peer(&[("backup-log.txt", "nightly backups are fine")])?,
    )?;

    println!("peers: {:?}\n", federation.peer_names());

    // The same iQL runs on every peer because every peer speaks iDM.
    let query = r#""database tuning""#;
    println!("federated query: {query}");
    for (peer, count) in federation.count_by_peer(query)? {
        println!("  {peer:<12} {count} result(s)");
    }

    // Global ranking across the federation: the TF-heavy guide on the
    // desktop outranks the laptop's passing mention.
    println!("\nglobally ranked:");
    let ranked = federation.run(&QueryRequest::new(query).ranked())?;
    assert!(ranked.is_complete(), "every peer answered");
    for row in &ranked.rows {
        let name = federation
            .peer(&row.peer)
            .unwrap()
            .store()
            .name(row.vid)?
            .unwrap_or_default();
        println!("  {:>7.3}  {:<12} {}", row.score, row.peer, name);
    }
    assert_eq!(
        ranked.rows.first().map(|r| r.peer.as_str()),
        Some("desktop")
    );

    // Structural queries federate too.
    let sections = federation.run(&QueryRequest::new(r#"//docs//*[class="latex_section"]"#))?;
    println!("\nlatex sections across the network: {}", sections.len());
    Ok(())
}
