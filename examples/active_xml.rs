//! ActiveXML as an iDM use-case (Section 4.3.1): intensional data.
//!
//! An AXML element carries a web service call in its group component;
//! calling the service inserts the result view into the document —
//! exactly the `<dep>`/`GetDepartments()` example from the paper. iDM
//! represents the result's XML as a resource view subgraph, so the
//! intensional data becomes queryable like everything else.
//!
//! ```sh
//! cargo run --example active_xml
//! ```

use std::sync::Arc;

use imemex::core::axml::{build_axml_element, has_result, materialize_result, ServiceRegistry};
use imemex::core::prelude::*;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let store = ViewStore::new();

    // A simulated remote web service.
    let registry = ServiceRegistry::new();
    registry.register(
        "web.server.com/GetDepartments",
        Arc::new(|_args: &str| {
            Ok("<deplist>\
                  <entry><name>Accounting</name></entry>\
                  <entry><name>Research</name></entry>\
                </deplist>"
                .to_owned())
        }),
    );

    // The paper's document:  <dep><sc>web.server.com/GetDepartments()</sc></dep>
    let dep = build_axml_element(&store, "dep", "web.server.com/GetDepartments()")?;
    println!("before the call: has result = {}", has_result(&store, dep)?);
    println!(
        "group = ⟨{} member(s)⟩ (just the service call)",
        store.group(dep)?.finite_members().len()
    );

    // Lazy materialization: the service runs on demand, the result view
    // is inserted into the element's sequence.
    let result = materialize_result(&store, &registry, dep)?;
    println!(
        "\nafter the call: has result = {}, group = ⟨{} members⟩",
        has_result(&store, dep)?,
        store.group(dep)?.finite_members().len()
    );

    // The result's XML becomes an iDM subgraph via the XML converter.
    let (doc, derived) =
        imemex::xml::convert::text_to_views(&store, &store.content(result)?.text_lossy()?)?;
    store.add_group_member(result, doc, true)?;
    println!("converted the service result into {derived} resource views");

    // Now the intensional data is ordinary graph data: find the
    // department names by walking the views.
    let names: Vec<String> = imemex::core::graph::descendants(&store, dep, usize::MAX)?
        .into_iter()
        .filter(|v| store.conforms_to(*v, "xmltext").unwrap_or(false))
        .map(|v| store.content(v).unwrap().text_lossy().unwrap())
        .collect();
    println!("departments found in the dataspace graph: {names:?}");
    assert_eq!(names, vec!["Accounting", "Research"]);

    // Idempotence: a second materialization does not re-call the service.
    let again = materialize_result(&store, &registry, dep)?;
    assert_eq!(again, result);
    println!("\nsecond materialization reused the cached result view {result}");
    Ok(())
}
