//! iQL physical execution: a walker over the plan IR of [`crate::plan`]
//! plus the graph expansion strategies.
//!
//! The paper's processor "fetches the data via index accesses, \[then\]
//! obtains indirectly related resource views by **forward expansion**"
//! (Section 7.2) and names backward/bidirectional expansion \[30\] as the
//! planned remedy for queries like Q8 where forward expansion processes
//! many intermediate results. All three strategies are implemented here
//! and selectable per query, which also powers the expansion-strategy
//! ablation benchmark.
//!
//! The executor holds **no query-shape logic of its own**: every rule
//! decision (which index to read, intersection order, join build side)
//! was made by the planner and is recorded in the [`PlanNode`] tree this
//! module walks. `EXPLAIN` renders the identical tree, so the plan you
//! read is the plan that ran — per-operator counts in
//! [`ExecStats::ops`] make that checkable.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use idm_core::prelude::*;
use idm_index::IndexBundle;

use crate::ast::*;
use crate::budget::{BudgetConsumption, BudgetTracker, QueryBudget, Tick};
use crate::cache::{ExpansionCache, ResultCache};
use crate::par;
use crate::parser::parse;
use crate::plan::{AccessKind, BuildSide, OperatorCounts, Plan, PlanNode, PlanOp};

/// Capacity of the per-processor whole-result cache (entries).
const RESULT_CACHE_CAPACITY: usize = 256;

/// How `//` (and `/`) steps relate candidates to the current context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpansionStrategy {
    /// Expand group edges forward from the context (the paper's
    /// implemented strategy).
    #[default]
    Forward,
    /// Walk reverse group edges from the candidates towards the context.
    Backward,
    /// Choose per step based on frontier sizes (the \[30\]-style hybrid).
    Bidirectional,
}

/// Execution options.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Expansion strategy for path steps.
    pub expansion: ExpansionStrategy,
    /// The clock used by `yesterday()`/`today()`/`now()`.
    pub now: Timestamp,
    /// Worker threads for the parallel executor. `1` (the default) runs
    /// the exact sequential code paths; `N > 1` parallelizes full scans,
    /// frontier expansion, and join builds over `N` scoped threads.
    pub parallelism: usize,
    /// Capacity of the lazy-expansion memo cache (entries, not bytes).
    pub cache_capacity: usize,
    /// Resolve `//`-step group edges through the live store (forcing and
    /// memoizing lazy groups) instead of the group replica. Requires
    /// forward expansion for the forced edges to be seen; reverse edges
    /// always come from the replica.
    pub live_expansion: bool,
    /// Resource limits for each query this processor runs (deadline,
    /// memory/row/node caps, partial-result opt-in). The default is
    /// unlimited, which keeps the governed hot path bit-identical to
    /// ungoverned execution.
    pub budget: QueryBudget,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            expansion: ExpansionStrategy::Forward,
            // A fixed default clock keeps tests and benchmarks
            // deterministic; systems pass the wall clock.
            now: Timestamp::from_ymd(2006, 9, 12).expect("valid date"),
            parallelism: 1,
            cache_capacity: 4096,
            live_expansion: false,
            budget: QueryBudget::none(),
        }
    }
}

/// Execution statistics (the paper discusses Q8's intermediate-result
/// blow-up; these counters expose it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Graph nodes touched during expansions.
    pub nodes_expanded: usize,
    /// Candidate views produced by index accesses before ancestry
    /// filtering.
    pub candidates_examined: usize,
    /// Lazy-expansion cache hits during this query.
    pub cache_hits: u64,
    /// Lazy-expansion cache misses (components forced) during this query.
    pub cache_misses: u64,
    /// Lazy-expansion cache entries evicted during this query.
    pub cache_evictions: u64,
    /// Degraded reads answered from a stale last-known-good cache entry
    /// during this query (substrate down or breaker open).
    pub stale_served: u64,
    /// Guarded substrate calls retried during this query. Zero unless a
    /// [`idm_core::fault::FaultStats`] handle is installed via
    /// [`QueryProcessor::set_fault_stats`].
    pub retries: u64,
    /// Circuit breakers tripped during this query (same handle).
    pub breaker_trips: u64,
    /// Physical operators executed, by kind. Always equal to the plan's
    /// [`Plan::operator_counts`] — the plan/exec agreement invariant.
    pub ops: OperatorCounts,
    /// Whole results served from the [`ResultCache`] (only via
    /// [`QueryProcessor::execute_cached`]).
    pub result_cache_hits: u64,
    /// Whether a partial-mode budget tripped and truncated this result
    /// to a sound subset of the true rows. Always `false` on unbudgeted
    /// and strict-mode successes; partial results are never admitted to
    /// the [`ResultCache`].
    pub partial: bool,
    /// The limit that tripped first, when `partial` (or, for a probe
    /// budget, never — probes only count).
    pub exhausted: Option<idm_core::error::BudgetKind>,
    /// Per-budget consumption counters (rows/nodes/bytes/checkpoints).
    /// All zero for unbudgeted queries — the disabled tracker counts
    /// nothing, keeping unbudgeted `ExecStats` bit-identical across
    /// reruns.
    pub consumed: BudgetConsumption,
}

/// Result rows: plain views, or pairs for joins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResultRows {
    /// Views.
    Views(Vec<Vid>),
    /// `(left, right)` pairs from a join.
    Pairs(Vec<(Vid, Vid)>),
}

impl ResultRows {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        match self {
            ResultRows::Views(v) => v.len(),
            ResultRows::Pairs(p) => p.len(),
        }
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The views of a plain result (left-hand views for pairs).
    pub fn views(&self) -> Vec<Vid> {
        match self {
            ResultRows::Views(v) => v.clone(),
            ResultRows::Pairs(p) => p.iter().map(|(a, _)| *a).collect(),
        }
    }
}

/// A complete query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// The rows.
    pub rows: ResultRows,
    /// Execution statistics.
    pub stats: ExecStats,
}

/// Maps iQL attribute spellings to the `W_FS` attribute names
/// (`lastmodified` in Q3 refers to the `last modified time` attribute).
pub fn resolve_attr(attr: &str) -> String {
    let key: String = attr
        .chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(char::to_lowercase)
        .collect();
    match key.as_str() {
        "lastmodified" | "lastmodifiedtime" | "modified" => "last modified time".to_owned(),
        "created" | "creationtime" | "creation" => "creation time".to_owned(),
        _ => attr.to_owned(),
    }
}

/// The iQL query processor.
pub struct QueryProcessor {
    store: Arc<ViewStore>,
    indexes: Arc<IndexBundle>,
    options: ExecOptions,
    cache: ExpansionCache,
    /// Whole-result cache keyed by plan fingerprint (opt-in via
    /// [`QueryProcessor::execute_cached`]).
    results: ResultCache,
    /// Shared fault counters of the system's source guards, when the
    /// embedding system installs them; lets per-query stats report the
    /// retries and breaker trips its own expansions caused.
    fault_stats: Option<Arc<idm_core::fault::FaultStats>>,
}

impl QueryProcessor {
    /// A processor over a store and its index bundle.
    pub fn new(store: Arc<ViewStore>, indexes: Arc<IndexBundle>) -> Self {
        let options = ExecOptions::default();
        let cache = ExpansionCache::new(&store, options.cache_capacity);
        let results = ResultCache::new(&store, RESULT_CACHE_CAPACITY);
        QueryProcessor {
            store,
            indexes,
            options,
            cache,
            results,
            fault_stats: None,
        }
    }

    /// Installs the shared fault-counter handle of the system's source
    /// guards so query stats can report retries and breaker trips.
    pub fn set_fault_stats(&mut self, stats: Arc<idm_core::fault::FaultStats>) {
        self.fault_stats = Some(stats);
    }

    /// Replaces the execution options. Changing the cache capacity
    /// recreates (and empties) the expansion cache.
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        if options.cache_capacity != self.options.cache_capacity {
            self.cache = ExpansionCache::new(&self.store, options.cache_capacity);
        }
        self.options = options;
        self
    }

    /// The lazy-expansion memo cache (lives as long as the processor, so
    /// repeated queries share warmed entries).
    pub fn expansion_cache(&self) -> &ExpansionCache {
        &self.cache
    }

    /// The current options.
    pub fn options(&self) -> ExecOptions {
        self.options
    }

    /// Sets the expansion strategy.
    pub fn set_expansion(&mut self, strategy: ExpansionStrategy) {
        self.options.expansion = strategy;
    }

    /// Sets the resource budget applied to every subsequent query.
    pub fn set_budget(&mut self, budget: QueryBudget) {
        self.options.budget = budget;
    }

    /// The view store this processor reads from.
    pub fn view_store(&self) -> &Arc<ViewStore> {
        &self.store
    }

    /// The index bundle this processor runs against.
    pub fn index_bundle(&self) -> &Arc<IndexBundle> {
        &self.indexes
    }

    /// Parses, plans and executes an iQL query string.
    pub fn execute(&self, iql: &str) -> Result<QueryResult> {
        let query = parse(iql)?;
        self.execute_ast(&query)
    }

    /// Plans and executes a parsed query.
    pub fn execute_ast(&self, query: &Query) -> Result<QueryResult> {
        let plan = self.plan(query)?;
        self.execute_plan(&plan)
    }

    /// Executes a plan — the same object [`Plan::render`] prints. This
    /// is the only evaluation path; `execute`/`execute_ast` are
    /// parse/plan front-ends to it.
    pub fn execute_plan(&self, plan: &Plan) -> Result<QueryResult> {
        self.execute_plan_with(plan, self.options.budget, None)
    }

    /// [`QueryProcessor::execute_plan`] with an explicit budget and an
    /// optional per-node row capture. When `cap` is given, every plan
    /// node pushes its output rows in post-order (children before
    /// parents, inputs in plan order) — the seed a
    /// [`crate::delta::MaintainedPlan`] is built from. A truncated
    /// (partial) run may capture fewer entries than the plan has nodes;
    /// partial captures are never used.
    pub(crate) fn execute_plan_with(
        &self,
        plan: &Plan,
        budget: QueryBudget,
        cap: Option<&mut Vec<ResultRows>>,
    ) -> Result<QueryResult> {
        self.cache.drain_invalidations();
        let before = self.cache.counters();
        let fault_before = self.fault_stats.as_ref().map(|s| s.snapshot());
        let tracker = BudgetTracker::start(budget);
        let mut stats = ExecStats::default();
        let rows = self.eval_node(&plan.root, &mut stats, &tracker, cap)?;
        stats.partial = tracker.tripped();
        stats.exhausted = tracker.exhaustion();
        stats.consumed = tracker.consumption();
        let after = self.cache.counters();
        stats.cache_hits = after.hits - before.hits;
        stats.cache_misses = after.misses - before.misses;
        stats.cache_evictions = after.evictions - before.evictions;
        stats.stale_served = after.stale_served - before.stale_served;
        if let (Some(stats_handle), Some(before)) = (&self.fault_stats, fault_before) {
            let delta = stats_handle.snapshot().since(before);
            stats.retries = delta.retries;
            stats.breaker_trips = delta.breaker_trips;
        }
        Ok(QueryResult { rows, stats })
    }

    /// Like [`QueryProcessor::execute`], but consults the whole-result
    /// cache first, keyed by the plan's normalized fingerprint. A hit
    /// returns the cached rows without touching the indexes (stats show
    /// `result_cache_hits = 1` and no operator work); a miss executes
    /// the plan and seeds a delta-maintained standing result. Store
    /// changes no longer clear the cache — pending [`ChangeRecord`]s
    /// are applied to each entry on its next lookup
    /// ([`crate::delta`]).
    #[deprecated(
        since = "0.2.0",
        note = "use `QueryProcessor::run` with `QueryRequest::new(iql).cached()`"
    )]
    pub fn execute_cached(&self, iql: &str) -> Result<QueryResult> {
        self.run(&crate::request::QueryRequest::new(iql).cached())
            .map(|response| response.result)
    }

    /// The cached execution path over an already-built plan.
    pub(crate) fn run_cached(&self, plan: &Plan, budget: QueryBudget) -> Result<QueryResult> {
        let fingerprint = plan.fingerprint();
        if let Some(rows) = self.results.lookup(self, fingerprint) {
            let stats = ExecStats {
                result_cache_hits: 1,
                ..ExecStats::default()
            };
            return Ok(QueryResult { rows, stats });
        }
        // Mark the record-log position *before* executing so changes
        // committed mid-execution are replayed onto the seeded entry
        // (delta application is convergent, so replaying a change the
        // execution already saw is harmless).
        let mark = self.results.mark();
        let mut captured = Vec::new();
        let result = match self.execute_plan_with(plan, budget, Some(&mut captured)) {
            Ok(result) => result,
            Err(err) => {
                self.results.release(mark);
                return Err(err);
            }
        };
        // A truncated (partial-budget) result is a subset of the true
        // rows; caching it would serve it as complete. Only full
        // results seed standing state.
        if result.stats.partial {
            self.results.release(mark);
        } else {
            match self.seed_maintained(plan, captured) {
                Some(state) => self.results.admit(fingerprint, state, mark),
                None => self.results.release(mark),
            }
        }
        Ok(result)
    }

    /// The whole-result cache (counters for benchmarks and tests).
    pub fn result_cache(&self) -> &ResultCache {
        &self.results
    }

    /// Worker-thread count for parallel sites (`>= 1`).
    fn threads(&self) -> usize {
        self.options.parallelism.max(1)
    }

    /// Group edges of `vid` for forward expansion: the replica's children
    /// by default, or the live (cache-memoized, lazily forced) group
    /// component under [`ExecOptions::live_expansion`].
    fn children_of(&self, vid: Vid) -> Vec<Vid> {
        if self.options.live_expansion {
            // Degrade to a stale last-known-good expansion when the force
            // fails with the substrate down (counted in stale_served).
            match self.cache.group_with_fallback(&self.store, vid) {
                Ok((snapshot, _stale)) => snapshot.finite_members(),
                // Dangling references are legal in a dataspace; skip them.
                Err(_) => Vec::new(),
            }
        } else {
            self.indexes.group.children(vid)
        }
    }

    // ---- the plan walker ---------------------------------------------

    /// Evaluates one plan node. Every node executes exactly once (no
    /// operator short-circuits), so the per-kind counters in
    /// `stats.ops` always equal [`Plan::operator_counts`] — including
    /// under a partial-mode budget, where nodes past the truncation
    /// point are still visited but do O(1) work and return sound
    /// subsets (empty leaves; combinations of subsets).
    ///
    /// Cooperative cancellation: every node entry is a checkpoint. In
    /// strict mode a tripped budget unwinds from here as
    /// [`IdmError::ResourceExhausted`]; no shard lock or scoped thread
    /// outlives the unwind (store reads release their shard on return,
    /// `par` helpers always join).
    fn eval_node(
        &self,
        node: &PlanNode,
        stats: &mut ExecStats,
        tracker: &BudgetTracker,
        mut cap: Option<&mut Vec<ResultRows>>,
    ) -> Result<ResultRows> {
        tracker.checkpoint(node.op.label())?;
        let rows = match &node.op {
            PlanOp::IndexAccess(access) => {
                stats.ops.index_accesses += 1;
                if tracker.tripped() {
                    return Ok(ResultRows::Views(Vec::new()));
                }
                let vids = self.eval_access(access);
                stats.candidates_examined += vids.len();
                tracker.charge_rows(vids.len(), "index-access")?;
                ResultRows::Views(vids)
            }
            PlanOp::Scan => {
                stats.ops.scans += 1;
                if tracker.tripped() {
                    return Ok(ResultRows::Views(Vec::new()));
                }
                let vids = self.all_vids();
                stats.candidates_examined += vids.len();
                tracker.charge_rows(vids.len(), "scan")?;
                ResultRows::Views(vids)
            }
            PlanOp::Intersect(inputs) => {
                stats.ops.intersects += 1;
                // Inputs arrive in the planner's order (smallest
                // estimate first); intersect left to right. Every leaf
                // list is sorted, so the running intersection stays
                // sorted regardless of the chosen order. All inputs are
                // always evaluated (ops invariant); under truncation
                // each input yields a subset, and an intersection of
                // subsets is a subset of the true intersection.
                let mut iter = inputs.iter();
                let mut acc = match iter.next() {
                    Some(first) => self
                        .eval_node(first, stats, tracker, cap.as_deref_mut())?
                        .views(),
                    None => Vec::new(),
                };
                for input in iter {
                    let set: HashSet<Vid> = self
                        .eval_node(input, stats, tracker, cap.as_deref_mut())?
                        .views()
                        .into_iter()
                        .collect();
                    acc.retain(|v| set.contains(v));
                }
                stats.candidates_examined += acc.len();
                tracker.charge_rows(acc.len(), "intersect")?;
                ResultRows::Views(acc)
            }
            PlanOp::UnionOp(inputs) => {
                stats.ops.unions += 1;
                let mut acc: Vec<Vid> = Vec::new();
                for input in inputs {
                    match self.eval_node(input, stats, tracker, cap.as_deref_mut())? {
                        ResultRows::Views(v) => acc.extend(v),
                        ResultRows::Pairs(_) => {
                            return Err(IdmError::Parse {
                                detail: "iql: union over join results is unsupported".into(),
                            })
                        }
                    }
                }
                acc.sort();
                acc.dedup();
                stats.candidates_examined += acc.len();
                tracker.charge_rows(acc.len(), "union")?;
                ResultRows::Views(acc)
            }
            PlanOp::Complement(exclude) => {
                stats.ops.complements += 1;
                let exclude: HashSet<Vid> = self
                    .eval_node(exclude, stats, tracker, cap.as_deref_mut())?
                    .views()
                    .into_iter()
                    .collect();
                // The one inverting operator: complementing a truncated
                // (subset) input would yield a *superset* of the true
                // result, so once the budget has tripped this returns
                // empty — the only sound subset it can still produce.
                if tracker.tripped() {
                    return Ok(ResultRows::Views(Vec::new()));
                }
                // Full scan over the catalog; chunked across workers when
                // parallelism is enabled (order-preserving either way).
                let vids = par::filter(self.all_vids(), self.threads(), |v| !exclude.contains(v));
                stats.candidates_examined += vids.len();
                tracker.charge_rows(vids.len(), "complement")?;
                ResultRows::Views(vids)
            }
            PlanOp::Relate {
                context,
                candidates,
                axis,
                strategy,
            } => {
                stats.ops.relates += 1;
                let ctx = self
                    .eval_node(context, stats, tracker, cap.as_deref_mut())?
                    .views();
                let cand = self
                    .eval_node(candidates, stats, tracker, cap.as_deref_mut())?
                    .views();
                ResultRows::Views(self.relate(&ctx, cand, *axis, *strategy, stats, tracker)?)
            }
            PlanOp::HashJoin {
                left,
                right,
                left_field,
                right_field,
                build,
                ..
            } => {
                stats.ops.hash_joins += 1;
                let left_rows = self
                    .eval_node(left, stats, tracker, cap.as_deref_mut())?
                    .views();
                let right_rows = self
                    .eval_node(right, stats, tracker, cap.as_deref_mut())?
                    .views();
                self.hash_join(
                    left_rows,
                    right_rows,
                    left_field,
                    right_field,
                    *build,
                    tracker,
                )?
            }
        };
        if let Some(cap) = cap {
            cap.push(rows.clone());
        }
        Ok(rows)
    }

    /// One index posting-list read — the plan's leaf accesses.
    pub(crate) fn eval_access(&self, access: &AccessKind) -> Vec<Vid> {
        match access {
            AccessKind::Name(pattern) => {
                let mut v = self.indexes.name.matching(pattern);
                v.sort();
                v
            }
            AccessKind::Content(phrase) => {
                let mut v = self.indexes.content.phrase_query(phrase);
                v.sort();
                v
            }
            AccessKind::Catalog(class_name) => self.class_members(class_name),
            AccessKind::Tuple { attr, op, value } => {
                let constant = self.literal_value(value);
                self.indexes
                    .tuple
                    .compare(&resolve_attr(attr), *op, &constant)
            }
        }
    }

    pub(crate) fn all_vids(&self) -> Vec<Vid> {
        self.indexes.catalog.vids()
    }

    fn literal_value(&self, literal: &Literal) -> Value {
        match literal {
            Literal::Value(value) => value.clone(),
            Literal::DateFn(f) => Value::Date(f.eval(self.options.now)),
        }
    }

    /// All catalog members of the class or any of its specializations.
    fn class_members(&self, class_name: &str) -> Vec<Vid> {
        let registry = self.store.classes();
        let Some(target) = registry.lookup(class_name) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for class in registry.subclasses(target) {
            out.extend(self.indexes.catalog.by_class(&registry.name(class)));
        }
        out.sort();
        out.dedup();
        out
    }

    // ---- paths --------------------------------------------------------

    /// Filters `candidates` down to those related to some context view
    /// along `axis`. The strategy comes from the plan node; the
    /// `Bidirectional` hybrid is resolved here, at run time, from the
    /// actual frontier sizes (the plan records the *policy*, the
    /// executor the cheap side).
    pub(crate) fn relate(
        &self,
        context: &[Vid],
        candidates: Vec<Vid>,
        axis: Axis,
        strategy: ExpansionStrategy,
        stats: &mut ExecStats,
        tracker: &BudgetTracker,
    ) -> Result<Vec<Vid>> {
        if context.is_empty() || candidates.is_empty() || tracker.tripped() {
            // Empty is always a sound subset; a tripped partial budget
            // lands here from later plan nodes at O(1) cost.
            return Ok(Vec::new());
        }
        let strategy = match strategy {
            ExpansionStrategy::Bidirectional => {
                if context.len() <= candidates.len() {
                    ExpansionStrategy::Forward
                } else {
                    ExpansionStrategy::Backward
                }
            }
            other => other,
        };
        let threads = self.threads();
        match (strategy, axis) {
            (ExpansionStrategy::Forward, Axis::Child) => {
                // Truncation soundness: stopping mid-context leaves
                // `reachable` a subset, and filtering candidates against
                // a subset keeps a subset.
                let mut reachable: HashSet<Vid> = HashSet::new();
                if threads <= 1 {
                    for &vid in context {
                        if tracker.checkpoint("relate")? == Tick::Truncate {
                            break;
                        }
                        let children = self.children_of(vid);
                        stats.nodes_expanded += children.len();
                        tracker.charge_nodes(children.len(), "relate")?;
                        reachable.extend(children);
                    }
                } else {
                    for children in par::try_map_chunks(context, threads, |_, chunk| {
                        let mut out: Vec<Vid> = Vec::new();
                        for &vid in chunk {
                            if tracker.checkpoint("relate")? == Tick::Truncate {
                                break;
                            }
                            let children = self.children_of(vid);
                            tracker.charge_nodes(children.len(), "relate")?;
                            out.extend(children);
                        }
                        Ok::<_, IdmError>(out)
                    })? {
                        stats.nodes_expanded += children.len();
                        reachable.extend(children);
                    }
                }
                Ok(par::filter(candidates, threads, |v| reachable.contains(v)))
            }
            (ExpansionStrategy::Forward, Axis::Descendant) => {
                let reachable = self.multi_source_descendants(context, stats, tracker)?;
                Ok(par::filter(candidates, threads, |v| reachable.contains(v)))
            }
            (ExpansionStrategy::Backward, Axis::Child) => {
                let ctx: HashSet<Vid> = context.iter().copied().collect();
                if threads <= 1 {
                    let mut kept = Vec::new();
                    for v in candidates {
                        if tracker.checkpoint("relate")? == Tick::Truncate {
                            break;
                        }
                        let parents = self.indexes.group.parents(v);
                        stats.nodes_expanded += parents.len();
                        tracker.charge_nodes(parents.len(), "relate")?;
                        if parents.iter().any(|p| ctx.contains(p)) {
                            kept.push(v);
                        }
                    }
                    Ok(kept)
                } else {
                    let chunks = par::try_map_chunks(&candidates, threads, |_, chunk| {
                        let mut kept = Vec::new();
                        let mut expanded = 0usize;
                        for &v in chunk {
                            if tracker.checkpoint("relate")? == Tick::Truncate {
                                break;
                            }
                            let parents = self.indexes.group.parents(v);
                            expanded += parents.len();
                            tracker.charge_nodes(parents.len(), "relate")?;
                            if parents.iter().any(|p| ctx.contains(p)) {
                                kept.push(v);
                            }
                        }
                        Ok::<_, IdmError>((kept, expanded))
                    })?;
                    let mut out = Vec::new();
                    for (kept, expanded) in chunks {
                        stats.nodes_expanded += expanded;
                        out.extend(kept);
                    }
                    Ok(out)
                }
            }
            (ExpansionStrategy::Backward, Axis::Descendant) => {
                let ctx: HashSet<Vid> = context.iter().copied().collect();
                if threads <= 1 {
                    // Positive cache: nodes known to reach the context.
                    let mut reaches_ctx: HashSet<Vid> = HashSet::new();
                    let mut kept = Vec::new();
                    for v in candidates {
                        if tracker.checkpoint("relate")? == Tick::Truncate {
                            break;
                        }
                        if self.reverse_reaches(v, &ctx, &mut reaches_ctx, stats, tracker)? {
                            kept.push(v);
                        }
                    }
                    Ok(kept)
                } else {
                    // Each worker keeps a chunk-local positive cache: the
                    // kept rows are identical to sequential, only
                    // `nodes_expanded` can differ (fewer cross-candidate
                    // cache hits). Chunking is deterministic, so repeated
                    // runs at the same parallelism agree exactly.
                    let chunks = par::try_map_chunks(&candidates, threads, |_, chunk| {
                        let mut local = ExecStats::default();
                        let mut reaches_ctx: HashSet<Vid> = HashSet::new();
                        let mut kept: Vec<Vid> = Vec::new();
                        for &v in chunk {
                            if tracker.checkpoint("relate")? == Tick::Truncate {
                                break;
                            }
                            if self.reverse_reaches(
                                v,
                                &ctx,
                                &mut reaches_ctx,
                                &mut local,
                                tracker,
                            )? {
                                kept.push(v);
                            }
                        }
                        Ok::<_, IdmError>((kept, local.nodes_expanded))
                    })?;
                    let mut out = Vec::new();
                    for (kept, expanded) in chunks {
                        stats.nodes_expanded += expanded;
                        out.extend(kept);
                    }
                    Ok(out)
                }
            }
            (ExpansionStrategy::Bidirectional, _) => unreachable!("resolved above"),
        }
    }

    fn multi_source_descendants(
        &self,
        sources: &[Vid],
        stats: &mut ExecStats,
        tracker: &BudgetTracker,
    ) -> Result<HashSet<Vid>> {
        if self.threads() <= 1 {
            let mut visited: HashSet<Vid> = HashSet::new();
            let mut queue: VecDeque<Vid> = sources.iter().copied().collect();
            while let Some(vid) = queue.pop_front() {
                // One checkpoint per expanded frontier node: a deadline
                // firing mid-BFS (e.g. during a slow lazy force) aborts
                // before the next force. A truncated BFS visits a prefix
                // of the reachable set — a sound subset.
                if tracker.checkpoint("expand")? == Tick::Truncate {
                    break;
                }
                let children = self.children_of(vid);
                tracker.charge_nodes(children.len(), "expand")?;
                for child in children {
                    stats.nodes_expanded += 1;
                    if visited.insert(child) {
                        queue.push_back(child);
                    }
                }
            }
            return Ok(visited);
        }
        // Level-synchronous parallel BFS: every frontier node is expanded
        // by some worker against a read-only view of `visited`; the
        // coordinator merges and dedups between levels. Each node is
        // expanded exactly once, so `nodes_expanded` (edges scanned)
        // matches the sequential walk.
        let threads = self.threads();
        let mut visited: HashSet<Vid> = HashSet::new();
        let mut frontier: Vec<Vid> = sources.to_vec();
        while !frontier.is_empty() {
            if tracker.checkpoint("expand")? == Tick::Truncate {
                break;
            }
            let visited_ref = &visited;
            let chunks = par::try_map_chunks(&frontier, threads, |_, chunk| {
                let mut fresh = Vec::new();
                let mut edges = 0usize;
                for &vid in chunk {
                    if tracker.checkpoint("expand")? == Tick::Truncate {
                        break;
                    }
                    let children = self.children_of(vid);
                    tracker.charge_nodes(children.len(), "expand")?;
                    for child in children {
                        edges += 1;
                        if !visited_ref.contains(&child) {
                            fresh.push(child);
                        }
                    }
                }
                Ok::<_, IdmError>((fresh, edges))
            })?;
            let mut next = Vec::new();
            for (fresh, edges) in chunks {
                stats.nodes_expanded += edges;
                for child in fresh {
                    if visited.insert(child) {
                        next.push(child);
                    }
                }
            }
            frontier = next;
        }
        Ok(visited)
    }

    /// Reverse BFS from `start` towards the context set, with a shared
    /// positive cache across candidates.
    fn reverse_reaches(
        &self,
        start: Vid,
        ctx: &HashSet<Vid>,
        reaches_ctx: &mut HashSet<Vid>,
        stats: &mut ExecStats,
        tracker: &BudgetTracker,
    ) -> Result<bool> {
        let mut visited: HashSet<Vid> = HashSet::new();
        let mut queue: VecDeque<Vid> = [start].into();
        let mut path_nodes: Vec<Vid> = Vec::new();
        let mut found = false;
        'bfs: while let Some(vid) = queue.pop_front() {
            // A truncated search reports "not found", which *drops* the
            // candidate — the kept set stays a subset of the true rows.
            if tracker.checkpoint("relate")? == Tick::Truncate {
                return Ok(false);
            }
            for parent in self.indexes.group.parents(vid) {
                stats.nodes_expanded += 1;
                tracker.charge_nodes(1, "relate")?;
                if ctx.contains(&parent) || reaches_ctx.contains(&parent) {
                    found = true;
                    break 'bfs;
                }
                if visited.insert(parent) {
                    path_nodes.push(parent);
                    queue.push_back(parent);
                }
            }
        }
        if found {
            // Everything visited on this search reaches the context via
            // the found node only if it lies on a path — conservatively
            // cache only the start, which is definitely connected.
            reaches_ctx.insert(start);
        }
        Ok(found)
    }

    // ---- joins ---------------------------------------------------------

    pub(crate) fn field_key(&self, vid: Vid, field: &Field) -> Option<String> {
        match field {
            // Borrow-based store reads: cloning a full catalog entry per
            // probe made the join build/probe loops allocation-bound. The
            // catalog remains the fallback so restored indexes answer
            // joins even when the view store is empty (restart path).
            Field::Name => self
                .store
                .with_name(vid, |n| n.map(str::to_owned))
                .ok()
                .flatten()
                .or_else(|| {
                    let entry = self.indexes.catalog.entry(vid)?;
                    (!entry.name.is_empty()).then_some(entry.name)
                }),
            Field::Class => self
                .store
                .class_name(vid)
                .ok()
                .flatten()
                .or_else(|| self.indexes.catalog.entry(vid)?.class),
            Field::TupleAttr(attr) => self
                .indexes
                .tuple
                .value_of(vid, &resolve_attr(attr))
                .map(|v| v.to_string()),
        }
    }

    /// Hash equi-join. The build side was chosen by the planner from
    /// cardinality estimates and is recorded in the plan node — binding
    /// validation happened at plan time too.
    fn hash_join(
        &self,
        left_rows: Vec<Vid>,
        right_rows: Vec<Vid>,
        left_field: &Field,
        right_field: &Field,
        build: BuildSide,
        tracker: &BudgetTracker,
    ) -> Result<ResultRows> {
        if tracker.tripped() {
            // Joining truncated inputs would be sound (subset × subset),
            // but once tripped there is no point paying for the build.
            return Ok(ResultRows::Pairs(Vec::new()));
        }
        let (build_rows, probe_rows, build_field, probe_field, build_is_left) = match build {
            BuildSide::Left => (&left_rows, &right_rows, left_field, right_field, true),
            BuildSide::Right => (&right_rows, &left_rows, right_field, left_field, false),
        };

        // Hash-table build, chunk-parallel when enabled: workers extract
        // `(key, vid)` pairs and the coordinator merges them in chunk
        // order, so per-key row order equals the sequential build. A
        // build truncated mid-way keys a subset of rows; probing it
        // yields a subset of the true pairs.
        let mut table: HashMap<String, Vec<Vid>> = HashMap::with_capacity(build_rows.len());
        if self.threads() <= 1 {
            for &vid in build_rows {
                if tracker.checkpoint("join-build")? == Tick::Truncate {
                    break;
                }
                tracker.charge_nodes(1, "join-build")?;
                if let Some(key) = self.field_key(vid, build_field) {
                    table.entry(key).or_default().push(vid);
                }
            }
        } else {
            for chunk in par::try_map_chunks(build_rows, self.threads(), |_, chunk| {
                let mut out: Vec<(String, Vid)> = Vec::new();
                for &vid in chunk {
                    if tracker.checkpoint("join-build")? == Tick::Truncate {
                        break;
                    }
                    tracker.charge_nodes(1, "join-build")?;
                    if let Some(key) = self.field_key(vid, build_field) {
                        out.push((key, vid));
                    }
                }
                Ok::<_, IdmError>(out)
            })? {
                for (key, vid) in chunk {
                    table.entry(key).or_default().push(vid);
                }
            }
        }
        let mut pairs = Vec::new();
        for &vid in probe_rows {
            if tracker.checkpoint("join-probe")? == Tick::Truncate {
                break;
            }
            if let Some(key) = self.field_key(vid, probe_field) {
                if let Some(matches) = table.get(&key) {
                    tracker.charge_rows(matches.len(), "join-probe")?;
                    for &m in matches {
                        pairs.push(if build_is_left { (m, vid) } else { (vid, m) });
                    }
                }
            }
        }
        pairs.sort();
        pairs.dedup();
        Ok(ResultRows::Pairs(pairs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_core::class::builtin::names;

    /// A small dataspace shaped like the paper's examples.
    fn dataspace() -> (Arc<ViewStore>, Arc<IndexBundle>) {
        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(IndexBundle::new());

        let fs_tuple = |size: i64, day: u32| {
            TupleComponent::of(vec![
                ("size", Value::Integer(size)),
                (
                    "creation time",
                    Value::Date(Timestamp::from_ymd(2005, 1, 1).unwrap()),
                ),
                (
                    "last modified time",
                    Value::Date(Timestamp::from_ymd(2005, 6, day).unwrap()),
                ),
            ])
        };

        // /papers/vision.tex → section "A Dataspace Vision" → text.
        let vision_text = store
            .build_unnamed()
            .text("a grand vision by Mike Franklin")
            .class_named(names::TEXT)
            .insert();
        let vision_section = store
            .build("A Dataspace Vision")
            .sequence(vec![vision_text])
            .class_named(names::LATEX_SECTION)
            .insert();
        let conclusion_text = store
            .build_unnamed()
            .text("future systems will unify dataspaces")
            .class_named(names::TEXT)
            .insert();
        let conclusions = store
            .build("Conclusions")
            .sequence(vec![conclusion_text])
            .class_named(names::LATEX_SECTION)
            .insert();
        let vision_tex = store
            .build("vision.tex")
            .tuple(fs_tuple(500_000, 1))
            .text("\\section{A Dataspace Vision}")
            .children(vec![vision_section, conclusions])
            .class_named(names::FILE)
            .insert();
        let papers = store
            .build("papers")
            .tuple(fs_tuple(4096, 20))
            .children(vec![vision_tex])
            .class_named(names::FOLDER)
            .insert();

        // An email with a .tex attachment named vision.tex (for Q8-style
        // joins across subsystems).
        let attachment = store
            .build("vision.tex")
            .tuple(fs_tuple(1000, 2))
            .text("\\section{Attached}")
            .class_named(names::ATTACHMENT)
            .insert();
        let email = store
            .build("paper draft")
            .tuple(TupleComponent::of(vec![
                ("from", Value::Text("jens@ethz".into())),
                ("size", Value::Integer(2000)),
            ]))
            .text("please review the attached database tuning draft")
            .children(vec![attachment])
            .class_named(names::EMAILMESSAGE)
            .insert();

        for vid in store.vids() {
            let source = if vid == email || vid == attachment {
                "imap"
            } else {
                "filesystem"
            };
            indexes.index_view(&store, vid, source).unwrap();
        }
        let _ = papers;
        (store, indexes)
    }

    fn processor(strategy: ExpansionStrategy) -> QueryProcessor {
        let (store, indexes) = dataspace();
        let mut p = QueryProcessor::new(store, indexes);
        p.set_expansion(strategy);
        p
    }

    #[test]
    fn phrase_query() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p.execute(r#""Mike Franklin""#).unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn boolean_keywords() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p.execute(r#""database" and "tuning""#).unwrap();
        assert_eq!(r.rows.len(), 1);
        let r = p.execute(r#""database" and "nonexistent""#).unwrap();
        assert!(r.rows.is_empty());
        let r = p.execute(r#""database" or "dataspaces""#).unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn attribute_predicate_with_alias() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p
            .execute("[size > 420000 and lastmodified < @12.06.2005]")
            .unwrap();
        assert_eq!(r.rows.len(), 1, "only vision.tex is big and old");
    }

    #[test]
    fn date_function_against_context_clock() {
        let p = processor(ExpansionStrategy::Forward);
        // options.now defaults to 2006-09-12; everything was modified
        // before yesterday().
        let r = p.execute("[lastmodified < yesterday()]").unwrap();
        assert!(r.rows.len() >= 3);
    }

    #[test]
    fn path_with_class_and_phrase() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p.execute(r#"//papers//*[class="latex_section"]"#).unwrap();
        assert_eq!(r.rows.len(), 2, "both sections under /papers");

        let r = p
            .execute(r#"//papers//*Vision[class="latex_section"]"#)
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn child_step_restricts_to_direct_relation() {
        let p = processor(ExpansionStrategy::Forward);
        // text node is a direct child of the Vision section.
        let r = p.execute(r#"//papers//*Vision/*["Franklin"]"#).unwrap();
        assert_eq!(r.rows.len(), 1);
        // But not a direct child of papers.
        let r = p.execute(r#"//papers/*["Franklin"]"#).unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn all_strategies_agree() {
        let queries = [
            r#"//papers//*[class="latex_section"]"#,
            r#"//papers//*Vision/*["Franklin"]"#,
            r#"//papers//?onclusion*"#,
            r#"//papers//*["systems"]"#,
        ];
        let forward = processor(ExpansionStrategy::Forward);
        let backward = processor(ExpansionStrategy::Backward);
        let bidi = processor(ExpansionStrategy::Bidirectional);
        for q in queries {
            let f = forward.execute(q).unwrap().rows;
            let b = backward.execute(q).unwrap().rows;
            let i = bidi.execute(q).unwrap().rows;
            assert_eq!(f, b, "forward vs backward on {q}");
            assert_eq!(f, i, "forward vs bidirectional on {q}");
        }
    }

    #[test]
    fn union_dedups() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p
            .execute(r#"union( //papers//*["systems"], //papers//?onclusion* )"#)
            .unwrap();
        // The conclusion text matches "systems"; Conclusions matches the
        // name pattern; they are different views.
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn join_across_subsystems_like_q8() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p
            .execute(
                r#"join ( //*[class = "emailmessage"]//*.tex as A, //papers//*.tex as B, A.name = B.name )"#,
            )
            .unwrap();
        let ResultRows::Pairs(pairs) = &r.rows else {
            panic!()
        };
        assert_eq!(pairs.len(), 1, "attachment vision.tex = file vision.tex");
        let (a, b) = pairs[0];
        assert_ne!(a, b);
        assert_eq!(p.store.name(a).unwrap(), p.store.name(b).unwrap());
    }

    #[test]
    fn join_rejects_unknown_binding() {
        let p = processor(ExpansionStrategy::Forward);
        let err = p
            .execute(r#"join( //a as A, //b as B, C.name = B.name )"#)
            .unwrap_err();
        assert!(err.to_string().contains("binding"), "{err}");
    }

    #[test]
    fn join_rejects_ambiguous_condition_referencing_one_binding_twice() {
        // Regression: the old validator's first clause was redundant and
        // `A.name = A.name` slipped through as a cross product of A with
        // every right row sharing a name. It is now a plan-time error.
        let p = processor(ExpansionStrategy::Forward);
        let err = p
            .execute(
                r#"join( //papers//*.tex as A, //*[class="emailmessage"] as B, A.name = A.name )"#,
            )
            .unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
        let err = p
            .execute(r#"join( //a as A, //b as B, B.name = B.name )"#)
            .unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn executed_operators_match_the_plan() {
        let p = processor(ExpansionStrategy::Forward);
        for iql in [
            r#""Mike Franklin""#,
            r#"//papers//*Vision/*["Franklin"]"#,
            r#"union( //papers//*["systems"], //papers//?onclusion* )"#,
            r#"[class="file" and not class="file"]"#,
            r#"join ( //*[class = "emailmessage"]//*.tex as A, //papers//*.tex as B, A.name = B.name )"#,
        ] {
            let plan = p.plan_iql(iql).unwrap();
            let result = p.execute(iql).unwrap();
            assert_eq!(
                result.stats.ops,
                plan.operator_counts(),
                "plan/exec operator divergence on {iql}"
            );
        }
    }

    #[test]
    fn cached_execution_replays_rows_without_index_work() {
        let p = processor(ExpansionStrategy::Forward);
        let cached = |iql: &str| {
            p.run(&crate::request::QueryRequest::new(iql).cached())
                .unwrap()
                .result
        };
        let iql = r#"//papers//*[class="latex_section"]"#;
        let first = cached(iql);
        assert_eq!(first.stats.result_cache_hits, 0);
        assert!(first.stats.ops.total() > 0);
        let second = cached(iql);
        assert_eq!(second.rows, first.rows);
        assert_eq!(second.stats.result_cache_hits, 1);
        assert_eq!(second.stats.ops.total(), 0, "no operators ran");
        // Whitespace differences plan identically → same fingerprint.
        let respaced = cached(r#"//papers//*[ class = "latex_section" ]"#);
        assert_eq!(respaced.stats.result_cache_hits, 1);
        // A store change no longer clears the entry: the pending change
        // record is applied to the standing result on lookup, and the
        // third run still hits (with unchanged rows — the new view does
        // not match the query).
        p.store.build("new view").insert();
        let third = cached(iql);
        assert_eq!(third.stats.result_cache_hits, 1);
        assert_eq!(third.rows, first.rows);
        assert!(p.result_cache().counters().maintained >= 1);
    }

    #[test]
    fn not_complements_catalog() {
        let p = processor(ExpansionStrategy::Forward);
        let all = p.execute(r#"[not class="no-such-class"]"#).unwrap();
        assert_eq!(all.rows.len(), p.indexes.catalog.len());
        let none = p.execute(r#"[class="file" and not class="file"]"#).unwrap();
        assert!(none.rows.is_empty());
    }

    #[test]
    fn class_predicate_includes_subclasses() {
        let p = processor(ExpansionStrategy::Forward);
        // `attachment` specializes `file`: class="file" finds both the
        // filesystem file and the attachment.
        let r = p.execute(r#"[class="file"]"#).unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn stats_reflect_expansion_work() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p.execute(r#"//papers//*"#).unwrap();
        assert!(r.stats.nodes_expanded > 0);
        assert!(r.stats.candidates_examined > 0);
    }

    // ---- resource governance -----------------------------------------

    fn budgeted(strategy: ExpansionStrategy, budget: QueryBudget) -> QueryProcessor {
        let mut p = processor(strategy);
        p.set_budget(budget);
        p
    }

    #[test]
    fn unbudgeted_stats_carry_no_consumption() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p.execute(r#"//papers//*"#).unwrap();
        assert!(!r.stats.partial);
        assert_eq!(r.stats.exhausted, None);
        assert_eq!(
            r.stats.consumed,
            crate::budget::BudgetConsumption::default()
        );
    }

    #[test]
    fn strict_budget_returns_resource_exhausted() {
        let p = budgeted(
            ExpansionStrategy::Forward,
            QueryBudget {
                max_nodes: Some(1),
                ..QueryBudget::default()
            },
        );
        let err = p.execute(r#"//papers//*"#).unwrap_err();
        assert_eq!(err.budget_kind(), Some(idm_core::error::BudgetKind::Nodes));
        assert!(!err.is_retryable());
        assert!(err.is_degradable());
        // The processor stays usable: lifting the budget reruns fine.
        let mut p = p;
        p.set_budget(QueryBudget::none());
        assert!(p.execute(r#"//papers//*"#).is_ok());
    }

    #[test]
    fn partial_budget_returns_sound_subset_and_keeps_ops_invariant() {
        let iql = r#"//papers//*[class="latex_section"]"#;
        let full = processor(ExpansionStrategy::Forward)
            .execute(iql)
            .unwrap()
            .rows
            .views();
        let plan = processor(ExpansionStrategy::Forward).plan_iql(iql).unwrap();
        // Probe once to learn the checkpoint count, then truncate at
        // every possible checkpoint.
        let probe = budgeted(ExpansionStrategy::Forward, QueryBudget::probe());
        let total = probe.execute(iql).unwrap().stats.consumed.checkpoints;
        assert!(total > 0);
        for k in 1..=total {
            let p = budgeted(
                ExpansionStrategy::Forward,
                QueryBudget {
                    cancel_after_checks: Some(k),
                    partial: true,
                    ..QueryBudget::default()
                },
            );
            let r = p.execute(iql).unwrap();
            assert!(r.stats.partial, "k={k} tripped");
            assert_eq!(
                r.stats.exhausted,
                Some(idm_core::error::BudgetKind::Cancelled)
            );
            assert_eq!(
                r.stats.ops,
                plan.operator_counts(),
                "ops invariant holds under truncation at k={k}"
            );
            for vid in r.rows.views() {
                assert!(full.contains(&vid), "k={k}: {vid:?} not in true result");
            }
        }
    }

    #[test]
    fn partial_budget_complement_stays_sound() {
        // Complement inverts its input: a truncated complement must
        // return empty, never a superset. Truncate at every checkpoint
        // and require the result to be a subset of the true rows.
        let iql = r#"[class="file" and not class="file"]"#;
        let probe = budgeted(ExpansionStrategy::Forward, QueryBudget::probe());
        let total = probe.execute(iql).unwrap().stats.consumed.checkpoints;
        for k in 1..=total {
            let p = budgeted(
                ExpansionStrategy::Forward,
                QueryBudget {
                    cancel_after_checks: Some(k),
                    partial: true,
                    ..QueryBudget::default()
                },
            );
            let r = p.execute(iql).unwrap();
            // The true result is empty, so ANY returned row would be a
            // superset violation.
            assert!(r.rows.is_empty(), "k={k} leaked complement rows");
        }
    }

    #[test]
    fn partial_join_rows_are_a_subset() {
        let iql = r#"join ( //*[class = "emailmessage"]//*.tex as A, //papers//*.tex as B, A.name = B.name )"#;
        let full = processor(ExpansionStrategy::Forward).execute(iql).unwrap();
        let ResultRows::Pairs(full_pairs) = &full.rows else {
            panic!()
        };
        let probe = budgeted(ExpansionStrategy::Forward, QueryBudget::probe());
        let total = probe.execute(iql).unwrap().stats.consumed.checkpoints;
        for k in 1..=total {
            let p = budgeted(
                ExpansionStrategy::Forward,
                QueryBudget {
                    cancel_after_checks: Some(k),
                    partial: true,
                    ..QueryBudget::default()
                },
            );
            let r = p.execute(iql).unwrap();
            let ResultRows::Pairs(pairs) = &r.rows else {
                panic!()
            };
            for pair in pairs {
                assert!(full_pairs.contains(pair), "k={k}");
            }
        }
    }

    #[test]
    fn result_cache_never_admits_partial_results() {
        // Regression (satellite): a truncated result cached as complete
        // would be replayed until the next invalidating change event.
        let iql = r#"//papers//*[class="latex_section"]"#;
        let p = processor(ExpansionStrategy::Forward);
        let cached = |budget: QueryBudget| {
            p.run(
                &crate::request::QueryRequest::new(iql)
                    .cached()
                    .budget(budget),
            )
            .unwrap()
            .result
        };
        let truncated = cached(QueryBudget {
            cancel_after_checks: Some(2),
            partial: true,
            ..QueryBudget::default()
        });
        assert!(truncated.stats.partial);
        // Lift the budget: the rerun must MISS the result cache and
        // recompute the full rows, not replay the truncated subset.
        let full = cached(QueryBudget::none());
        assert_eq!(full.stats.result_cache_hits, 0, "partial result was cached");
        assert_eq!(full.rows.len(), 2);
        // The full result IS admitted: third run hits.
        let replay = cached(QueryBudget::none());
        assert_eq!(replay.stats.result_cache_hits, 1);
        assert_eq!(replay.rows, full.rows);
    }

    #[test]
    fn deadline_budget_aborts_promptly_at_any_parallelism() {
        use std::time::{Duration, Instant};
        for parallelism in [1, 4] {
            let (store, indexes) = dataspace();
            let mut p = QueryProcessor::new(store, indexes);
            p = p.with_options(ExecOptions {
                parallelism,
                budget: QueryBudget::with_deadline(Duration::ZERO),
                ..ExecOptions::default()
            });
            let started = Instant::now();
            let err = p.execute(r#"//papers//*"#).unwrap_err();
            assert_eq!(
                err.budget_kind(),
                Some(idm_core::error::BudgetKind::WallClock)
            );
            assert!(
                started.elapsed() < Duration::from_millis(50),
                "parallelism={parallelism}"
            );
            // Shard locks were released on unwind: queries still run.
            p.set_budget(QueryBudget::none());
            assert!(p.execute(r#"//papers//*"#).is_ok());
        }
    }
}
