//! iQL execution: rule-based planning over the index structures plus
//! graph expansion strategies.
//!
//! The paper's processor "fetches the data via index accesses, \[then\]
//! obtains indirectly related resource views by **forward expansion**"
//! (Section 7.2) and names backward/bidirectional expansion \[30\] as the
//! planned remedy for queries like Q8 where forward expansion processes
//! many intermediate results. All three strategies are implemented here
//! and selectable per query, which also powers the expansion-strategy
//! ablation benchmark.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use idm_core::prelude::*;
use idm_index::IndexBundle;

use crate::ast::*;
use crate::cache::ExpansionCache;
use crate::par;
use crate::parser::parse;

/// How `//` (and `/`) steps relate candidates to the current context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpansionStrategy {
    /// Expand group edges forward from the context (the paper's
    /// implemented strategy).
    #[default]
    Forward,
    /// Walk reverse group edges from the candidates towards the context.
    Backward,
    /// Choose per step based on frontier sizes (the \[30\]-style hybrid).
    Bidirectional,
}

/// Execution options.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Expansion strategy for path steps.
    pub expansion: ExpansionStrategy,
    /// The clock used by `yesterday()`/`today()`/`now()`.
    pub now: Timestamp,
    /// Worker threads for the parallel executor. `1` (the default) runs
    /// the exact sequential code paths; `N > 1` parallelizes full scans,
    /// frontier expansion, and join builds over `N` scoped threads.
    pub parallelism: usize,
    /// Capacity of the lazy-expansion memo cache (entries, not bytes).
    pub cache_capacity: usize,
    /// Resolve `//`-step group edges through the live store (forcing and
    /// memoizing lazy groups) instead of the group replica. Requires
    /// forward expansion for the forced edges to be seen; reverse edges
    /// always come from the replica.
    pub live_expansion: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            expansion: ExpansionStrategy::Forward,
            // A fixed default clock keeps tests and benchmarks
            // deterministic; systems pass the wall clock.
            now: Timestamp::from_ymd(2006, 9, 12).expect("valid date"),
            parallelism: 1,
            cache_capacity: 4096,
            live_expansion: false,
        }
    }
}

/// Execution statistics (the paper discusses Q8's intermediate-result
/// blow-up; these counters expose it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Graph nodes touched during expansions.
    pub nodes_expanded: usize,
    /// Candidate views produced by index accesses before ancestry
    /// filtering.
    pub candidates_examined: usize,
    /// Lazy-expansion cache hits during this query.
    pub cache_hits: u64,
    /// Lazy-expansion cache misses (components forced) during this query.
    pub cache_misses: u64,
    /// Lazy-expansion cache entries evicted during this query.
    pub cache_evictions: u64,
    /// Degraded reads answered from a stale last-known-good cache entry
    /// during this query (substrate down or breaker open).
    pub stale_served: u64,
    /// Guarded substrate calls retried during this query. Zero unless a
    /// [`idm_core::fault::FaultStats`] handle is installed via
    /// [`QueryProcessor::set_fault_stats`].
    pub retries: u64,
    /// Circuit breakers tripped during this query (same handle).
    pub breaker_trips: u64,
}

/// Result rows: plain views, or pairs for joins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResultRows {
    /// Views.
    Views(Vec<Vid>),
    /// `(left, right)` pairs from a join.
    Pairs(Vec<(Vid, Vid)>),
}

impl ResultRows {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        match self {
            ResultRows::Views(v) => v.len(),
            ResultRows::Pairs(p) => p.len(),
        }
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The views of a plain result (left-hand views for pairs).
    pub fn views(&self) -> Vec<Vid> {
        match self {
            ResultRows::Views(v) => v.clone(),
            ResultRows::Pairs(p) => p.iter().map(|(a, _)| *a).collect(),
        }
    }
}

/// A complete query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// The rows.
    pub rows: ResultRows,
    /// Execution statistics.
    pub stats: ExecStats,
}

/// Maps iQL attribute spellings to the `W_FS` attribute names
/// (`lastmodified` in Q3 refers to the `last modified time` attribute).
pub fn resolve_attr(attr: &str) -> String {
    let key: String = attr
        .chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(char::to_lowercase)
        .collect();
    match key.as_str() {
        "lastmodified" | "lastmodifiedtime" | "modified" => "last modified time".to_owned(),
        "created" | "creationtime" | "creation" => "creation time".to_owned(),
        _ => attr.to_owned(),
    }
}

/// The iQL query processor.
pub struct QueryProcessor {
    store: Arc<ViewStore>,
    indexes: Arc<IndexBundle>,
    options: ExecOptions,
    cache: ExpansionCache,
    /// Shared fault counters of the system's source guards, when the
    /// embedding system installs them; lets per-query stats report the
    /// retries and breaker trips its own expansions caused.
    fault_stats: Option<Arc<idm_core::fault::FaultStats>>,
}

impl QueryProcessor {
    /// A processor over a store and its index bundle.
    pub fn new(store: Arc<ViewStore>, indexes: Arc<IndexBundle>) -> Self {
        let options = ExecOptions::default();
        let cache = ExpansionCache::new(&store, options.cache_capacity);
        QueryProcessor {
            store,
            indexes,
            options,
            cache,
            fault_stats: None,
        }
    }

    /// Installs the shared fault-counter handle of the system's source
    /// guards so query stats can report retries and breaker trips.
    pub fn set_fault_stats(&mut self, stats: Arc<idm_core::fault::FaultStats>) {
        self.fault_stats = Some(stats);
    }

    /// Replaces the execution options. Changing the cache capacity
    /// recreates (and empties) the expansion cache.
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        if options.cache_capacity != self.options.cache_capacity {
            self.cache = ExpansionCache::new(&self.store, options.cache_capacity);
        }
        self.options = options;
        self
    }

    /// The lazy-expansion memo cache (lives as long as the processor, so
    /// repeated queries share warmed entries).
    pub fn expansion_cache(&self) -> &ExpansionCache {
        &self.cache
    }

    /// The current options.
    pub fn options(&self) -> ExecOptions {
        self.options
    }

    /// Sets the expansion strategy.
    pub fn set_expansion(&mut self, strategy: ExpansionStrategy) {
        self.options.expansion = strategy;
    }

    /// The view store this processor reads from.
    pub fn view_store(&self) -> &Arc<ViewStore> {
        &self.store
    }

    /// The index bundle this processor runs against.
    pub fn index_bundle(&self) -> &Arc<IndexBundle> {
        &self.indexes
    }

    /// Parses and executes an iQL query string.
    pub fn execute(&self, iql: &str) -> Result<QueryResult> {
        let query = parse(iql)?;
        self.execute_ast(&query)
    }

    /// Executes a parsed query.
    pub fn execute_ast(&self, query: &Query) -> Result<QueryResult> {
        self.cache.drain_invalidations();
        let before = self.cache.counters();
        let fault_before = self.fault_stats.as_ref().map(|s| s.snapshot());
        let mut stats = ExecStats::default();
        let rows = self.eval_query(query, &mut stats)?;
        let after = self.cache.counters();
        stats.cache_hits = after.hits - before.hits;
        stats.cache_misses = after.misses - before.misses;
        stats.cache_evictions = after.evictions - before.evictions;
        stats.stale_served = after.stale_served - before.stale_served;
        if let (Some(stats_handle), Some(before)) = (&self.fault_stats, fault_before) {
            let delta = stats_handle.snapshot().since(before);
            stats.retries = delta.retries;
            stats.breaker_trips = delta.breaker_trips;
        }
        Ok(QueryResult { rows, stats })
    }

    /// Worker-thread count for parallel sites (`>= 1`).
    fn threads(&self) -> usize {
        self.options.parallelism.max(1)
    }

    /// Group edges of `vid` for forward expansion: the replica's children
    /// by default, or the live (cache-memoized, lazily forced) group
    /// component under [`ExecOptions::live_expansion`].
    fn children_of(&self, vid: Vid) -> Vec<Vid> {
        if self.options.live_expansion {
            // Degrade to a stale last-known-good expansion when the force
            // fails with the substrate down (counted in stale_served).
            match self.cache.group_with_fallback(&self.store, vid) {
                Ok((snapshot, _stale)) => snapshot.finite_members(),
                // Dangling references are legal in a dataspace; skip them.
                Err(_) => Vec::new(),
            }
        } else {
            self.indexes.group.children(vid)
        }
    }

    fn eval_query(&self, query: &Query, stats: &mut ExecStats) -> Result<ResultRows> {
        match query {
            Query::Filter(pred) => {
                let vids = self.eval_pred(pred, stats)?;
                Ok(ResultRows::Views(vids))
            }
            Query::Path(path) => Ok(ResultRows::Views(self.eval_path(path, stats)?)),
            Query::Union(members) => {
                let mut acc: Vec<Vid> = Vec::new();
                for member in members {
                    match self.eval_query(member, stats)? {
                        ResultRows::Views(v) => acc.extend(v),
                        ResultRows::Pairs(_) => {
                            return Err(IdmError::Parse {
                                detail: "iql: union over join results is unsupported".into(),
                            })
                        }
                    }
                }
                acc.sort();
                acc.dedup();
                Ok(ResultRows::Views(acc))
            }
            Query::Join(join) => self.eval_join(join, stats),
        }
    }

    // ---- predicates --------------------------------------------------

    fn all_vids(&self) -> Vec<Vid> {
        self.indexes.catalog.vids()
    }

    fn eval_pred(&self, pred: &Pred, stats: &mut ExecStats) -> Result<Vec<Vid>> {
        let vids = match pred {
            Pred::Phrase(phrase) => {
                let mut v = self.indexes.content.phrase_query(phrase);
                v.sort();
                v
            }
            Pred::Class(class_name) => self.class_members(class_name),
            Pred::Cmp { attr, op, value } => {
                let constant = self.literal_value(value);
                self.indexes
                    .tuple
                    .compare(&resolve_attr(attr), *op, &constant)
            }
            Pred::And(members) => {
                let mut lists = Vec::with_capacity(members.len());
                for member in members {
                    lists.push(self.eval_pred(member, stats)?);
                }
                // Rule-based ordering: intersect smallest-first.
                lists.sort_by_key(Vec::len);
                let mut iter = lists.into_iter();
                let mut acc = iter.next().unwrap_or_default();
                for list in iter {
                    let set: HashSet<Vid> = list.into_iter().collect();
                    acc.retain(|v| set.contains(v));
                }
                acc
            }
            Pred::Or(members) => {
                let mut acc = Vec::new();
                for member in members {
                    acc.extend(self.eval_pred(member, stats)?);
                }
                acc.sort();
                acc.dedup();
                acc
            }
            Pred::Not(inner) => {
                let exclude: HashSet<Vid> = self.eval_pred(inner, stats)?.into_iter().collect();
                // Full scan over the catalog; chunked across workers when
                // parallelism is enabled (order-preserving either way).
                par::filter(self.all_vids(), self.threads(), |v| !exclude.contains(v))
            }
        };
        stats.candidates_examined += vids.len();
        Ok(vids)
    }

    fn literal_value(&self, literal: &Literal) -> Value {
        match literal {
            Literal::Value(value) => value.clone(),
            Literal::DateFn(f) => Value::Date(f.eval(self.options.now)),
        }
    }

    /// All catalog members of the class or any of its specializations.
    fn class_members(&self, class_name: &str) -> Vec<Vid> {
        let registry = self.store.classes();
        let Some(target) = registry.lookup(class_name) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for class in registry.subclasses(target) {
            out.extend(self.indexes.catalog.by_class(&registry.name(class)));
        }
        out.sort();
        out.dedup();
        out
    }

    // ---- paths --------------------------------------------------------

    fn step_candidates(&self, step: &Step, stats: &mut ExecStats) -> Result<Vec<Vid>> {
        let by_name = if step.name.matches_all() {
            None
        } else {
            let mut v = self.indexes.name.matching(&step.name);
            v.sort();
            Some(v)
        };
        let by_pred = match &step.pred {
            Some(pred) => Some(self.eval_pred(pred, stats)?),
            None => None,
        };
        let candidates = match (by_name, by_pred) {
            (Some(a), Some(b)) => {
                let set: HashSet<Vid> = b.into_iter().collect();
                a.into_iter().filter(|v| set.contains(v)).collect()
            }
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => self.all_vids(),
        };
        stats.candidates_examined += candidates.len();
        Ok(candidates)
    }

    fn eval_path(&self, path: &PathExpr, stats: &mut ExecStats) -> Result<Vec<Vid>> {
        let mut context: Option<Vec<Vid>> = None;
        for step in &path.steps {
            let candidates = self.step_candidates(step, stats)?;
            context = Some(match context {
                // The first step has no ancestry constraint: `//X`
                // selects every view matching X anywhere in the graph.
                None => candidates,
                Some(ctx) => self.relate(&ctx, candidates, step.axis, stats),
            });
        }
        Ok(context.unwrap_or_default())
    }

    /// Filters `candidates` down to those related to some context view
    /// along `axis`, using the configured expansion strategy.
    fn relate(
        &self,
        context: &[Vid],
        candidates: Vec<Vid>,
        axis: Axis,
        stats: &mut ExecStats,
    ) -> Vec<Vid> {
        if context.is_empty() || candidates.is_empty() {
            return Vec::new();
        }
        let strategy = match self.options.expansion {
            ExpansionStrategy::Bidirectional => {
                if context.len() <= candidates.len() {
                    ExpansionStrategy::Forward
                } else {
                    ExpansionStrategy::Backward
                }
            }
            other => other,
        };
        let threads = self.threads();
        match (strategy, axis) {
            (ExpansionStrategy::Forward, Axis::Child) => {
                let mut reachable: HashSet<Vid> = HashSet::new();
                if threads <= 1 {
                    for &vid in context {
                        let children = self.children_of(vid);
                        stats.nodes_expanded += children.len();
                        reachable.extend(children);
                    }
                } else {
                    for children in par::map_chunks(context, threads, |_, chunk| {
                        chunk
                            .iter()
                            .flat_map(|&vid| self.children_of(vid))
                            .collect::<Vec<Vid>>()
                    }) {
                        stats.nodes_expanded += children.len();
                        reachable.extend(children);
                    }
                }
                par::filter(candidates, threads, |v| reachable.contains(v))
            }
            (ExpansionStrategy::Forward, Axis::Descendant) => {
                let reachable = self.multi_source_descendants(context, stats);
                par::filter(candidates, threads, |v| reachable.contains(v))
            }
            (ExpansionStrategy::Backward, Axis::Child) => {
                let ctx: HashSet<Vid> = context.iter().copied().collect();
                if threads <= 1 {
                    candidates
                        .into_iter()
                        .filter(|v| {
                            let parents = self.indexes.group.parents(*v);
                            stats.nodes_expanded += parents.len();
                            parents.iter().any(|p| ctx.contains(p))
                        })
                        .collect()
                } else {
                    let chunks = par::map_chunks(&candidates, threads, |_, chunk| {
                        let mut kept = Vec::new();
                        let mut expanded = 0usize;
                        for &v in chunk {
                            let parents = self.indexes.group.parents(v);
                            expanded += parents.len();
                            if parents.iter().any(|p| ctx.contains(p)) {
                                kept.push(v);
                            }
                        }
                        (kept, expanded)
                    });
                    let mut out = Vec::new();
                    for (kept, expanded) in chunks {
                        stats.nodes_expanded += expanded;
                        out.extend(kept);
                    }
                    out
                }
            }
            (ExpansionStrategy::Backward, Axis::Descendant) => {
                let ctx: HashSet<Vid> = context.iter().copied().collect();
                if threads <= 1 {
                    // Positive cache: nodes known to reach the context.
                    let mut reaches_ctx: HashSet<Vid> = HashSet::new();
                    candidates
                        .into_iter()
                        .filter(|v| self.reverse_reaches(*v, &ctx, &mut reaches_ctx, stats))
                        .collect()
                } else {
                    // Each worker keeps a chunk-local positive cache: the
                    // kept rows are identical to sequential, only
                    // `nodes_expanded` can differ (fewer cross-candidate
                    // cache hits). Chunking is deterministic, so repeated
                    // runs at the same parallelism agree exactly.
                    let chunks = par::map_chunks(&candidates, threads, |_, chunk| {
                        let mut local = ExecStats::default();
                        let mut reaches_ctx: HashSet<Vid> = HashSet::new();
                        let kept: Vec<Vid> = chunk
                            .iter()
                            .copied()
                            .filter(|v| {
                                self.reverse_reaches(*v, &ctx, &mut reaches_ctx, &mut local)
                            })
                            .collect();
                        (kept, local.nodes_expanded)
                    });
                    let mut out = Vec::new();
                    for (kept, expanded) in chunks {
                        stats.nodes_expanded += expanded;
                        out.extend(kept);
                    }
                    out
                }
            }
            (ExpansionStrategy::Bidirectional, _) => unreachable!("resolved above"),
        }
    }

    fn multi_source_descendants(&self, sources: &[Vid], stats: &mut ExecStats) -> HashSet<Vid> {
        if self.threads() <= 1 {
            let mut visited: HashSet<Vid> = HashSet::new();
            let mut queue: VecDeque<Vid> = sources.iter().copied().collect();
            while let Some(vid) = queue.pop_front() {
                for child in self.children_of(vid) {
                    stats.nodes_expanded += 1;
                    if visited.insert(child) {
                        queue.push_back(child);
                    }
                }
            }
            return visited;
        }
        // Level-synchronous parallel BFS: every frontier node is expanded
        // by some worker against a read-only view of `visited`; the
        // coordinator merges and dedups between levels. Each node is
        // expanded exactly once, so `nodes_expanded` (edges scanned)
        // matches the sequential walk.
        let threads = self.threads();
        let mut visited: HashSet<Vid> = HashSet::new();
        let mut frontier: Vec<Vid> = sources.to_vec();
        while !frontier.is_empty() {
            let visited_ref = &visited;
            let chunks = par::map_chunks(&frontier, threads, |_, chunk| {
                let mut fresh = Vec::new();
                let mut edges = 0usize;
                for &vid in chunk {
                    for child in self.children_of(vid) {
                        edges += 1;
                        if !visited_ref.contains(&child) {
                            fresh.push(child);
                        }
                    }
                }
                (fresh, edges)
            });
            let mut next = Vec::new();
            for (fresh, edges) in chunks {
                stats.nodes_expanded += edges;
                for child in fresh {
                    if visited.insert(child) {
                        next.push(child);
                    }
                }
            }
            frontier = next;
        }
        visited
    }

    /// Reverse BFS from `start` towards the context set, with a shared
    /// positive cache across candidates.
    fn reverse_reaches(
        &self,
        start: Vid,
        ctx: &HashSet<Vid>,
        reaches_ctx: &mut HashSet<Vid>,
        stats: &mut ExecStats,
    ) -> bool {
        let mut visited: HashSet<Vid> = HashSet::new();
        let mut queue: VecDeque<Vid> = [start].into();
        let mut path_nodes: Vec<Vid> = Vec::new();
        let mut found = false;
        'bfs: while let Some(vid) = queue.pop_front() {
            for parent in self.indexes.group.parents(vid) {
                stats.nodes_expanded += 1;
                if ctx.contains(&parent) || reaches_ctx.contains(&parent) {
                    found = true;
                    break 'bfs;
                }
                if visited.insert(parent) {
                    path_nodes.push(parent);
                    queue.push_back(parent);
                }
            }
        }
        if found {
            // Everything visited on this search reaches the context via
            // the found node only if it lies on a path — conservatively
            // cache only the start, which is definitely connected.
            reaches_ctx.insert(start);
        }
        found
    }

    // ---- joins ---------------------------------------------------------

    fn field_key(&self, vid: Vid, field: &Field) -> Option<String> {
        match field {
            // Borrow-based store reads: cloning a full catalog entry per
            // probe made the join build/probe loops allocation-bound. The
            // catalog remains the fallback so restored indexes answer
            // joins even when the view store is empty (restart path).
            Field::Name => self
                .store
                .with_name(vid, |n| n.map(str::to_owned))
                .ok()
                .flatten()
                .or_else(|| {
                    let entry = self.indexes.catalog.entry(vid)?;
                    (!entry.name.is_empty()).then_some(entry.name)
                }),
            Field::Class => self
                .store
                .class_name(vid)
                .ok()
                .flatten()
                .or_else(|| self.indexes.catalog.entry(vid)?.class),
            Field::TupleAttr(attr) => self
                .indexes
                .tuple
                .value_of(vid, &resolve_attr(attr))
                .map(|v| v.to_string()),
        }
    }

    fn eval_join(&self, join: &JoinExpr, stats: &mut ExecStats) -> Result<ResultRows> {
        // Validate binding references.
        for (field_ref, expected) in [
            (&join.condition.left, &join.left_binding),
            (&join.condition.right, &join.right_binding),
        ] {
            if &field_ref.binding != expected
                && field_ref.binding != join.left_binding
                && field_ref.binding != join.right_binding
            {
                return Err(IdmError::Parse {
                    detail: format!(
                        "iql: unknown join binding '{}' (have '{}' and '{}')",
                        field_ref.binding, join.left_binding, join.right_binding
                    ),
                });
            }
        }
        let left_rows = self.eval_query(&join.left, stats)?.views();
        let right_rows = self.eval_query(&join.right, stats)?.views();

        // Orient the condition fields to their sides.
        let (left_field, right_field) = if join.condition.left.binding == join.left_binding {
            (&join.condition.left.field, &join.condition.right.field)
        } else {
            (&join.condition.right.field, &join.condition.left.field)
        };

        // Hash join: build on the smaller input.
        let (build_rows, probe_rows, build_field, probe_field, build_is_left) =
            if left_rows.len() <= right_rows.len() {
                (&left_rows, &right_rows, left_field, right_field, true)
            } else {
                (&right_rows, &left_rows, right_field, left_field, false)
            };

        // Hash-table build, chunk-parallel when enabled: workers extract
        // `(key, vid)` pairs and the coordinator merges them in chunk
        // order, so per-key row order equals the sequential build.
        let mut table: HashMap<String, Vec<Vid>> = HashMap::with_capacity(build_rows.len());
        if self.threads() <= 1 {
            for &vid in build_rows {
                if let Some(key) = self.field_key(vid, build_field) {
                    table.entry(key).or_default().push(vid);
                }
            }
        } else {
            for chunk in par::map_chunks(build_rows, self.threads(), |_, chunk| {
                chunk
                    .iter()
                    .filter_map(|&vid| self.field_key(vid, build_field).map(|k| (k, vid)))
                    .collect::<Vec<(String, Vid)>>()
            }) {
                for (key, vid) in chunk {
                    table.entry(key).or_default().push(vid);
                }
            }
        }
        let mut pairs = Vec::new();
        for &vid in probe_rows {
            if let Some(key) = self.field_key(vid, probe_field) {
                if let Some(matches) = table.get(&key) {
                    for &m in matches {
                        pairs.push(if build_is_left { (m, vid) } else { (vid, m) });
                    }
                }
            }
        }
        pairs.sort();
        pairs.dedup();
        Ok(ResultRows::Pairs(pairs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_core::class::builtin::names;

    /// A small dataspace shaped like the paper's examples.
    fn dataspace() -> (Arc<ViewStore>, Arc<IndexBundle>) {
        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(IndexBundle::new());

        let fs_tuple = |size: i64, day: u32| {
            TupleComponent::of(vec![
                ("size", Value::Integer(size)),
                (
                    "creation time",
                    Value::Date(Timestamp::from_ymd(2005, 1, 1).unwrap()),
                ),
                (
                    "last modified time",
                    Value::Date(Timestamp::from_ymd(2005, 6, day).unwrap()),
                ),
            ])
        };

        // /papers/vision.tex → section "A Dataspace Vision" → text.
        let vision_text = store
            .build_unnamed()
            .text("a grand vision by Mike Franklin")
            .class_named(names::TEXT)
            .insert();
        let vision_section = store
            .build("A Dataspace Vision")
            .sequence(vec![vision_text])
            .class_named(names::LATEX_SECTION)
            .insert();
        let conclusion_text = store
            .build_unnamed()
            .text("future systems will unify dataspaces")
            .class_named(names::TEXT)
            .insert();
        let conclusions = store
            .build("Conclusions")
            .sequence(vec![conclusion_text])
            .class_named(names::LATEX_SECTION)
            .insert();
        let vision_tex = store
            .build("vision.tex")
            .tuple(fs_tuple(500_000, 1))
            .text("\\section{A Dataspace Vision}")
            .children(vec![vision_section, conclusions])
            .class_named(names::FILE)
            .insert();
        let papers = store
            .build("papers")
            .tuple(fs_tuple(4096, 20))
            .children(vec![vision_tex])
            .class_named(names::FOLDER)
            .insert();

        // An email with a .tex attachment named vision.tex (for Q8-style
        // joins across subsystems).
        let attachment = store
            .build("vision.tex")
            .tuple(fs_tuple(1000, 2))
            .text("\\section{Attached}")
            .class_named(names::ATTACHMENT)
            .insert();
        let email = store
            .build("paper draft")
            .tuple(TupleComponent::of(vec![
                ("from", Value::Text("jens@ethz".into())),
                ("size", Value::Integer(2000)),
            ]))
            .text("please review the attached database tuning draft")
            .children(vec![attachment])
            .class_named(names::EMAILMESSAGE)
            .insert();

        for vid in store.vids() {
            let source = if vid == email || vid == attachment {
                "imap"
            } else {
                "filesystem"
            };
            indexes.index_view(&store, vid, source).unwrap();
        }
        let _ = papers;
        (store, indexes)
    }

    fn processor(strategy: ExpansionStrategy) -> QueryProcessor {
        let (store, indexes) = dataspace();
        let mut p = QueryProcessor::new(store, indexes);
        p.set_expansion(strategy);
        p
    }

    #[test]
    fn phrase_query() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p.execute(r#""Mike Franklin""#).unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn boolean_keywords() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p.execute(r#""database" and "tuning""#).unwrap();
        assert_eq!(r.rows.len(), 1);
        let r = p.execute(r#""database" and "nonexistent""#).unwrap();
        assert!(r.rows.is_empty());
        let r = p.execute(r#""database" or "dataspaces""#).unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn attribute_predicate_with_alias() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p
            .execute("[size > 420000 and lastmodified < @12.06.2005]")
            .unwrap();
        assert_eq!(r.rows.len(), 1, "only vision.tex is big and old");
    }

    #[test]
    fn date_function_against_context_clock() {
        let p = processor(ExpansionStrategy::Forward);
        // options.now defaults to 2006-09-12; everything was modified
        // before yesterday().
        let r = p.execute("[lastmodified < yesterday()]").unwrap();
        assert!(r.rows.len() >= 3);
    }

    #[test]
    fn path_with_class_and_phrase() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p.execute(r#"//papers//*[class="latex_section"]"#).unwrap();
        assert_eq!(r.rows.len(), 2, "both sections under /papers");

        let r = p
            .execute(r#"//papers//*Vision[class="latex_section"]"#)
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn child_step_restricts_to_direct_relation() {
        let p = processor(ExpansionStrategy::Forward);
        // text node is a direct child of the Vision section.
        let r = p.execute(r#"//papers//*Vision/*["Franklin"]"#).unwrap();
        assert_eq!(r.rows.len(), 1);
        // But not a direct child of papers.
        let r = p.execute(r#"//papers/*["Franklin"]"#).unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn all_strategies_agree() {
        let queries = [
            r#"//papers//*[class="latex_section"]"#,
            r#"//papers//*Vision/*["Franklin"]"#,
            r#"//papers//?onclusion*"#,
            r#"//papers//*["systems"]"#,
        ];
        let forward = processor(ExpansionStrategy::Forward);
        let backward = processor(ExpansionStrategy::Backward);
        let bidi = processor(ExpansionStrategy::Bidirectional);
        for q in queries {
            let f = forward.execute(q).unwrap().rows;
            let b = backward.execute(q).unwrap().rows;
            let i = bidi.execute(q).unwrap().rows;
            assert_eq!(f, b, "forward vs backward on {q}");
            assert_eq!(f, i, "forward vs bidirectional on {q}");
        }
    }

    #[test]
    fn union_dedups() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p
            .execute(r#"union( //papers//*["systems"], //papers//?onclusion* )"#)
            .unwrap();
        // The conclusion text matches "systems"; Conclusions matches the
        // name pattern; they are different views.
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn join_across_subsystems_like_q8() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p
            .execute(
                r#"join ( //*[class = "emailmessage"]//*.tex as A, //papers//*.tex as B, A.name = B.name )"#,
            )
            .unwrap();
        let ResultRows::Pairs(pairs) = &r.rows else {
            panic!()
        };
        assert_eq!(pairs.len(), 1, "attachment vision.tex = file vision.tex");
        let (a, b) = pairs[0];
        assert_ne!(a, b);
        assert_eq!(p.store.name(a).unwrap(), p.store.name(b).unwrap());
    }

    #[test]
    fn join_rejects_unknown_binding() {
        let p = processor(ExpansionStrategy::Forward);
        let err = p
            .execute(r#"join( //a as A, //b as B, C.name = B.name )"#)
            .unwrap_err();
        assert!(err.to_string().contains("binding"), "{err}");
    }

    #[test]
    fn not_complements_catalog() {
        let p = processor(ExpansionStrategy::Forward);
        let all = p.execute(r#"[not class="no-such-class"]"#).unwrap();
        assert_eq!(all.rows.len(), p.indexes.catalog.len());
        let none = p.execute(r#"[class="file" and not class="file"]"#).unwrap();
        assert!(none.rows.is_empty());
    }

    #[test]
    fn class_predicate_includes_subclasses() {
        let p = processor(ExpansionStrategy::Forward);
        // `attachment` specializes `file`: class="file" finds both the
        // filesystem file and the attachment.
        let r = p.execute(r#"[class="file"]"#).unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn stats_reflect_expansion_work() {
        let p = processor(ExpansionStrategy::Forward);
        let r = p.execute(r#"//papers//*"#).unwrap();
        assert!(r.stats.nodes_expanded > 0);
        assert!(r.stats.candidates_examined > 0);
    }
}
