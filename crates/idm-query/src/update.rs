//! iQL update statements.
//!
//! Section 5.1: "in contrast to NEXI, however, iQL will include
//! features important for a PDSMS, such as support for updates." This
//! module implements that extension:
//!
//! ```text
//! update <query> set name = "new name"
//! update <query> set <attr> = <literal>     -- tuple component attribute
//! update <query> set class = "classname"
//! delete <query>
//! ```
//!
//! The target `<query>` is any read query; updates apply to every
//! result view and write through to the store **and** the index bundle,
//! so subsequent queries observe the change immediately.

use idm_core::prelude::*;

use crate::ast::Query;
use crate::exec::{resolve_attr, QueryProcessor};
use crate::lexer::{lex, Token};
use crate::parser::parse;

/// A parsed update statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStatement {
    /// The views to update.
    pub target: Query,
    /// What to do to them.
    pub action: UpdateAction,
}

/// The supported update actions.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateAction {
    /// Replace the name component (`set name = "…"`).
    SetName(String),
    /// Set (or add) one tuple component attribute (`set size = 42`).
    SetAttr {
        /// Attribute name (aliases resolved like in predicates).
        attr: String,
        /// The new value.
        value: Value,
    },
    /// Re-classify the view (`set class = "file"`).
    SetClass(String),
    /// Remove the views (and their index entries).
    Delete,
}

/// What an update did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Views the target query matched.
    pub matched: usize,
    /// Views actually modified/removed.
    pub applied: usize,
}

/// Parses an update statement (`update … set …` or `delete …`).
pub fn parse_update(input: &str) -> Result<UpdateStatement> {
    let trimmed = input.trim_start();
    let lower = trimmed.to_ascii_lowercase();
    if let Some(rest) = lower
        .strip_prefix("delete")
        .and_then(|r| r.starts_with([' ', '/', '[', '"']).then_some(r))
    {
        let offset = trimmed.len() - rest.len();
        let target = parse(trimmed[offset..].trim())?;
        return Ok(UpdateStatement {
            target,
            action: UpdateAction::Delete,
        });
    }
    let Some(rest) = lower.strip_prefix("update") else {
        return Err(IdmError::Parse {
            detail: "iql: expected 'update …' or 'delete …'".into(),
        });
    };
    if !rest.starts_with([' ', '/', '[', '"']) {
        return Err(IdmError::Parse {
            detail: "iql: expected 'update …' or 'delete …'".into(),
        });
    }
    // Split at the LAST top-level " set " (query text cannot contain the
    // bare keyword outside strings; find it via the lexer).
    let body = &trimmed[trimmed.len() - rest.len()..];
    let set_pos = find_set_keyword(body)?;
    let target = parse(body[..set_pos].trim())?;
    let assignment = body[set_pos + 3..].trim();
    let action = parse_assignment(assignment)?;
    Ok(UpdateStatement { target, action })
}

/// Finds the byte offset of the `set` keyword at the top level of the
/// statement body (not inside a quoted phrase).
fn find_set_keyword(body: &str) -> Result<usize> {
    let bytes = body.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_string = !in_string,
            b's' | b'S' if !in_string => {
                let end = i + 3;
                if end <= bytes.len()
                    && body[i..end].eq_ignore_ascii_case("set")
                    && i > 0
                    && bytes[i - 1].is_ascii_whitespace()
                    && (end == bytes.len() || bytes[end].is_ascii_whitespace())
                {
                    return Ok(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    Err(IdmError::Parse {
        detail: "iql: update statement misses 'set'".into(),
    })
}

fn parse_assignment(text: &str) -> Result<UpdateAction> {
    let tokens = lex(text)?;
    let (attr, value_tokens) = match tokens.split_first() {
        Some((Token::Word(attr), [Token::Eq, rest @ ..])) => (attr.clone(), rest),
        _ => {
            return Err(IdmError::Parse {
                detail: format!("iql: expected '<attr> = <literal>' after set, got '{text}'"),
            })
        }
    };
    let value = match value_tokens {
        [Token::Phrase(s)] => Value::Text(s.clone()),
        [Token::Date(t)] => Value::Date(*t),
        [Token::Word(w)] => {
            if let Ok(i) = w.parse::<i64>() {
                Value::Integer(i)
            } else if let Ok(f) = w.parse::<f64>() {
                Value::Float(f)
            } else if w.eq_ignore_ascii_case("true") || w.eq_ignore_ascii_case("false") {
                Value::Boolean(w.eq_ignore_ascii_case("true"))
            } else {
                Value::Text(w.clone())
            }
        }
        _ => {
            return Err(IdmError::Parse {
                detail: format!("iql: expected one literal after '=', got '{text}'"),
            })
        }
    };
    Ok(match attr.to_ascii_lowercase().as_str() {
        "name" => match value {
            Value::Text(name) => UpdateAction::SetName(name),
            other => {
                return Err(IdmError::Parse {
                    detail: format!("iql: name must be a string, got {other}"),
                })
            }
        },
        "class" => match value {
            Value::Text(class) => UpdateAction::SetClass(class),
            other => {
                return Err(IdmError::Parse {
                    detail: format!("iql: class must be a string, got {other}"),
                })
            }
        },
        _ => UpdateAction::SetAttr { attr, value },
    })
}

impl QueryProcessor {
    /// Parses and applies an update statement; returns what happened.
    pub fn execute_update(&self, iql: &str) -> Result<UpdateOutcome> {
        let statement = parse_update(iql)?;
        self.apply_update(&statement)
    }

    /// Applies a parsed update statement. The target query runs through
    /// the same plan pipeline as reads — `explain` on the target shows
    /// exactly how the update located its victims.
    pub fn apply_update(&self, statement: &UpdateStatement) -> Result<UpdateOutcome> {
        let plan = self.plan(&statement.target)?;
        let targets = self.execute_plan(&plan)?.rows.views();
        let mut outcome = UpdateOutcome {
            matched: targets.len(),
            applied: 0,
        };
        let store = self.view_store();
        let indexes = self.index_bundle();
        for vid in targets {
            match &statement.action {
                UpdateAction::SetName(name) => {
                    store.set_name(vid, Some(name.clone()))?;
                }
                UpdateAction::SetAttr { attr, value } => {
                    let attr = resolve_attr(attr);
                    let old = store.tuple(vid)?;
                    let mut pairs: Vec<(String, Value)> = old
                        .map(|t| t.iter().map(|(a, v)| (a.name.clone(), v.clone())).collect())
                        .unwrap_or_default();
                    match pairs.iter_mut().find(|(a, _)| *a == attr) {
                        Some(pair) => pair.1 = value.clone(),
                        None => pairs.push((attr.clone(), value.clone())),
                    }
                    let tuple = TupleComponent::of(
                        pairs.iter().map(|(a, v)| (a.as_str(), v.clone())).collect(),
                    );
                    store.set_tuple(vid, Some(tuple))?;
                }
                UpdateAction::SetClass(class) => {
                    let class_id = store.classes().require(class)?;
                    store.set_class(vid, Some(class_id))?;
                }
                UpdateAction::Delete => {
                    indexes.remove_view(vid);
                    if store.contains(vid) {
                        store.remove(vid)?;
                    }
                    outcome.applied += 1;
                    continue;
                }
            }
            // Write-through: refresh every index entry for the view.
            let source = indexes
                .catalog
                .entry(vid)
                .map(|e| e.source)
                .unwrap_or_else(|| "updated".to_owned());
            indexes.remove_view(vid);
            indexes.index_view(store, vid, &source)?;
            outcome.applied += 1;
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_index::IndexBundle;
    use std::sync::Arc;

    fn space() -> QueryProcessor {
        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(IndexBundle::new());
        store
            .build("draft.tex")
            .tuple(TupleComponent::of(vec![("size", Value::Integer(10))]))
            .text("early draft about dataspaces")
            .class_named("file")
            .insert();
        store
            .build("final.tex")
            .tuple(TupleComponent::of(vec![("size", Value::Integer(99))]))
            .text("camera ready")
            .class_named("file")
            .insert();
        for vid in store.vids() {
            indexes.index_view(&store, vid, "filesystem").unwrap();
        }
        QueryProcessor::new(store, indexes)
    }

    #[test]
    fn parse_shapes() {
        let s = parse_update(r#"update //draft.tex set name = "renamed.tex""#).unwrap();
        assert_eq!(s.action, UpdateAction::SetName("renamed.tex".into()));
        let s = parse_update(r#"update //a set size = 42"#).unwrap();
        assert_eq!(
            s.action,
            UpdateAction::SetAttr {
                attr: "size".into(),
                value: Value::Integer(42)
            }
        );
        let s = parse_update(r#"update //a set class = "folder""#).unwrap();
        assert_eq!(s.action, UpdateAction::SetClass("folder".into()));
        let s = parse_update(r#"delete //a["x"]"#).unwrap();
        assert_eq!(s.action, UpdateAction::Delete);

        assert!(parse_update("select nothing").is_err());
        assert!(parse_update("update //a").is_err());
        assert!(parse_update("update //a set").is_err());
        assert!(parse_update(r#"update //a set name = 42"#).is_err());
        // 'set' inside a phrase is not the keyword.
        assert!(parse_update(r#"update //a[" set "]"#).is_err());
    }

    #[test]
    fn rename_writes_through_to_indexes() {
        let p = space();
        let outcome = p
            .execute_update(r#"update //draft.tex set name = "renamed.tex""#)
            .unwrap();
        assert_eq!(
            outcome,
            UpdateOutcome {
                matched: 1,
                applied: 1
            }
        );
        assert_eq!(p.execute("//draft.tex").unwrap().rows.len(), 0);
        assert_eq!(p.execute("//renamed.tex").unwrap().rows.len(), 1);
        // Content search still finds it.
        assert_eq!(p.execute(r#""early draft""#).unwrap().rows.len(), 1);
    }

    #[test]
    fn attribute_updates_are_queryable() {
        let p = space();
        p.execute_update("update //draft.tex set size = 500000")
            .unwrap();
        assert_eq!(p.execute("[size > 420000]").unwrap().rows.len(), 1);
        // Adding a brand-new attribute works too (per-tuple schemas!).
        p.execute_update(r#"update //draft.tex set project = "PIM""#)
            .unwrap();
        assert_eq!(p.execute(r#"[project = "PIM"]"#).unwrap().rows.len(), 1);
    }

    #[test]
    fn class_updates_respect_registry() {
        let p = space();
        p.execute_update(r#"update //final.tex set class = "latexfile""#)
            .unwrap();
        assert_eq!(p.execute(r#"[class = "latexfile"]"#).unwrap().rows.len(), 1);
        // Still a file by specialization.
        assert_eq!(p.execute(r#"[class = "file"]"#).unwrap().rows.len(), 2);
        assert!(p
            .execute_update(r#"update //final.tex set class = "no-such""#)
            .is_err());
    }

    #[test]
    fn delete_removes_everywhere() {
        let p = space();
        let outcome = p.execute_update(r#"delete //*["camera ready"]"#).unwrap();
        assert_eq!(outcome.applied, 1);
        assert_eq!(p.execute("//final.tex").unwrap().rows.len(), 0);
        assert_eq!(p.execute(r#""camera ready""#).unwrap().rows.len(), 0);
        assert_eq!(p.index_bundle().catalog.len(), p.view_store().len());
    }

    #[test]
    fn zero_match_updates_are_noops() {
        let p = space();
        let outcome = p
            .execute_update(r#"update //ghost.tex set name = "x""#)
            .unwrap();
        assert_eq!(outcome, UpdateOutcome::default());
    }
}
