//! # idm-query — iQL, the iMeMex Query Language (Section 5.1)
//!
//! iQL is an end-user language extending IR keyword search with path
//! expressions and attribute predicates over the resource view graph.
//! The evaluation queries of Table 4 all run through this crate:
//!
//! ```text
//! Q1  "database"
//! Q2  "database tuning"
//! Q3  [size > 420000 and lastmodified < @12.06.2005]
//! Q4  //papers//*Vision/*["Franklin"]
//! Q5  //VLDB200?//?onclusion*/*["systems"]
//! Q6  union( //VLDB2005//*["documents"], //VLDB2006//*["documents"])
//! Q7  join( //VLDB2006//*[class="texref"] as A,
//!           //VLDB2006//*[class="environment"]//figure* as B,
//!           A.name=B.tuple.label)
//! Q8  join ( //*[class = "emailmessage"]//*.tex as A,
//!            //papers//*.tex as B, A.name = B.name )
//! ```
//!
//! Pipeline: [`lexer`] → [`parser`] → AST → [`plan`] (a typed logical
//! operator tree, rewritten under [`cost`] estimates) →
//! [`exec::QueryProcessor`] walking that same plan against the
//! [`idm_index::IndexBundle`]. `EXPLAIN`
//! ([`exec::QueryProcessor::explain`]) renders the identical plan
//! object the executor runs, and [`plan::Plan::fingerprint`] keys the
//! whole-result cache. Path steps relate to their context via forward,
//! backward or bidirectional expansion ([`exec::ExpansionStrategy`]) —
//! forward is what the paper's prototype shipped; the others are its
//! stated future work, included here for the ablation benchmarks.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod ast;
pub mod budget;
pub mod cache;
pub mod cost;
pub mod delta;
pub mod exec;
pub mod lexer;
pub mod par;
pub mod parser;
pub mod plan;
pub mod rank;
pub mod request;
pub mod update;

pub use ast::Query;
pub use budget::{BudgetConsumption, BudgetTracker, QueryBudget, Tick};
pub use cache::{CacheCounters, ExpansionCache, ResultCache, ResultCacheCounters};
pub use cost::{explain_with_estimates, Estimate};
pub use delta::{DeltaStats, MaintainedPlan, ResultDelta};
pub use exec::{
    ExecOptions, ExecStats, ExpansionStrategy, QueryProcessor, QueryResult, ResultRows,
};
pub use parser::parse;
pub use plan::{AccessKind, BuildSide, OperatorCounts, Plan, PlanNode, PlanOp};
pub use rank::{RankWeights, RankedResult};
pub use request::{QueryRequest, QueryResponse};
pub use update::{parse_update, UpdateAction, UpdateOutcome, UpdateStatement};
