//! The unified query entry point: [`QueryRequest`] → [`QueryResponse`].
//!
//! The processor and system layers historically grew one method per
//! execution mode — `execute` / `execute_cached` / `execute_ranked` on
//! [`QueryProcessor`], `query` / `query_budgeted` / `query_explained`
//! on the system facade — each combining the same four orthogonal
//! switches (budget, explain, ranking, result caching) in a different
//! hard-coded way. [`QueryRequest`] is the product type those methods
//! were projections of: one builder carrying all the switches, one
//! [`QueryProcessor::run`] that plans **once** and feeds every
//! requested view of the execution from that single plan object. The
//! legacy methods survive as thin `#[deprecated]` wrappers, so the
//! migration is mechanical and the old spellings stay byte-compatible.
//!
//! ```
//! # use idm_core::prelude::*;
//! # use idm_index::IndexBundle;
//! # use idm_query::{QueryProcessor, QueryRequest};
//! # use std::sync::Arc;
//! # let store = Arc::new(ViewStore::new());
//! # let indexes = Arc::new(IndexBundle::new());
//! # let vid = store.build("a.txt").text("database notes").insert();
//! # indexes.index_view(&store, vid, "fs").unwrap();
//! # let processor = QueryProcessor::new(store, indexes);
//! let response = processor
//!     .run(&QueryRequest::new(r#""database""#).explain().ranked())
//!     .unwrap();
//! assert_eq!(response.result.rows.len(), 1);
//! assert!(response.explain.unwrap().contains("ContentIndex"));
//! assert_eq!(response.ranked.unwrap().len(), 1);
//! ```

use idm_core::prelude::*;

use crate::budget::QueryBudget;
use crate::exec::{ExecStats, QueryProcessor, QueryResult};
use crate::rank::{RankWeights, RankedResult};

/// A declarative description of one query execution: the iQL text plus
/// the orthogonal switches the legacy method zoo used to hard-wire.
///
/// Build with [`QueryRequest::new`] and chain the switches; every
/// combination is valid (e.g. `.cached().ranked().explain()` ranks the
/// rows a cache hit returned and still renders the plan).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    iql: String,
    budget: Option<QueryBudget>,
    explain: bool,
    ranked: Option<RankWeights>,
    cached: bool,
    subscribe: bool,
}

impl QueryRequest {
    /// A request for `iql` with every switch off: plan and execute,
    /// inheriting the processor's configured budget.
    pub fn new(iql: impl Into<String>) -> Self {
        QueryRequest {
            iql: iql.into(),
            budget: None,
            explain: false,
            ranked: None,
            cached: false,
            subscribe: false,
        }
    }

    /// Bounds the execution by `budget` (deadline, memory/row/node
    /// caps, partial-result opt-in), overriding the processor default.
    pub fn budget(mut self, budget: QueryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Also renders the executed plan into [`QueryResponse::explain`].
    /// The render and the execution share one plan object — they
    /// cannot diverge.
    pub fn explain(mut self) -> Self {
        self.explain = true;
        self
    }

    /// Also ranks the result rows by relevance (TF–IDF with
    /// component-aware bonuses) into [`QueryResponse::ranked`].
    pub fn ranked(mut self) -> Self {
        self.ranked = Some(RankWeights::default());
        self
    }

    /// [`QueryRequest::ranked`] with explicit weights.
    pub fn ranked_with(mut self, weights: RankWeights) -> Self {
        self.ranked = Some(weights);
        self
    }

    /// Routes through the whole-result cache: a fingerprint hit serves
    /// the delta-maintained standing rows; a miss executes and seeds a
    /// standing result (never from a partial execution).
    pub fn cached(mut self) -> Self {
        self.cached = true;
        self
    }

    /// Marks the request as a standing subscription. The flag is
    /// carried for the system layer (`Pdsms::subscribe`), which turns
    /// the request into a live query pushing [`crate::delta::ResultDelta`]
    /// batches; [`QueryProcessor::run`] itself ignores it.
    pub fn subscribe(mut self) -> Self {
        self.subscribe = true;
        self
    }

    /// The iQL text.
    pub fn iql(&self) -> &str {
        &self.iql
    }

    /// The explicit budget, if one was set.
    pub fn requested_budget(&self) -> Option<QueryBudget> {
        self.budget
    }

    /// Whether a plan render was requested.
    pub fn wants_explain(&self) -> bool {
        self.explain
    }

    /// The ranking weights, if ranking was requested.
    pub fn wants_ranked(&self) -> Option<RankWeights> {
        self.ranked
    }

    /// Whether the cached path was requested.
    pub fn wants_cached(&self) -> bool {
        self.cached
    }

    /// Whether this request is meant as a standing subscription.
    pub fn wants_subscribe(&self) -> bool {
        self.subscribe
    }
}

/// Everything one [`QueryProcessor::run`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The rows and execution statistics.
    pub result: QueryResult,
    /// The rendered plan, when [`QueryRequest::explain`] was set.
    pub explain: Option<String>,
    /// Scored rows (most relevant first), when [`QueryRequest::ranked`]
    /// was set.
    pub ranked: Option<Vec<RankedResult>>,
    /// A copy of `result.stats`, hoisted for callers that only read
    /// counters.
    pub stats: ExecStats,
}

impl QueryProcessor {
    /// Plans `request.iql()` once and serves every requested view of
    /// the execution from that single plan: rows (plain or through the
    /// result cache), the rendered plan, and ranked rows — without
    /// re-parsing, re-planning or re-executing for any of them.
    pub fn run(&self, request: &QueryRequest) -> Result<QueryResponse> {
        let plan = self.plan_iql(request.iql())?;
        let budget = request.requested_budget().unwrap_or(self.options().budget);
        let result = if request.wants_cached() {
            self.run_cached(&plan, budget)?
        } else {
            self.execute_plan_with(&plan, budget, None)?
        };
        let ranked = request
            .wants_ranked()
            .map(|weights| self.rank_rows(&plan, &result.rows, weights));
        let explain = request.wants_explain().then(|| plan.render());
        let stats = result.stats;
        Ok(QueryResponse {
            result,
            explain,
            ranked,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_index::IndexBundle;
    use std::sync::Arc;

    fn processor() -> QueryProcessor {
        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(IndexBundle::new());
        let a = store.build("a.txt").text("database tuning notes").insert();
        let b = store.build("b.txt").text("database lectures").insert();
        store.build("notes").children(vec![a, b]).insert();
        for vid in store.vids() {
            indexes.index_view(&store, vid, "fs").unwrap();
        }
        QueryProcessor::new(store, indexes)
    }

    #[test]
    fn plain_request_matches_execute() {
        let p = processor();
        let response = p.run(&QueryRequest::new(r#""database""#)).unwrap();
        let direct = p.execute(r#""database""#).unwrap();
        assert_eq!(response.result, direct);
        assert_eq!(response.stats, direct.stats);
        assert!(response.explain.is_none());
        assert!(response.ranked.is_none());
    }

    #[test]
    fn switches_compose_on_one_plan() {
        let p = processor();
        let response = p
            .run(&QueryRequest::new(r#""database""#).explain().ranked())
            .unwrap();
        assert_eq!(response.result.rows.len(), 2);
        let explain = response.explain.expect("plan rendered");
        assert_eq!(explain, p.explain(r#""database""#).unwrap());
        let ranked = response.ranked.expect("rows ranked");
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].score >= ranked[1].score);
        // Same scores as the dedicated ranked path.
        assert_eq!(ranked, p.execute_ranked(r#""database""#).unwrap());
    }

    #[test]
    fn budget_switch_overrides_processor_default() {
        let budget = QueryBudget {
            cancel_after_checks: Some(1),
            partial: true,
            ..QueryBudget::default()
        };
        let p = processor();
        let response = p
            .run(&QueryRequest::new(r#""database""#).budget(budget))
            .unwrap();
        assert!(response.stats.partial, "tiny budget trips");
        // The processor's own default budget is untouched.
        assert!(
            !p.run(&QueryRequest::new(r#""database""#))
                .unwrap()
                .stats
                .partial
        );
    }

    #[test]
    fn cached_switch_routes_through_result_cache() {
        let p = processor();
        let request = QueryRequest::new(r#""database""#).cached();
        let first = p.run(&request).unwrap();
        assert_eq!(first.stats.result_cache_hits, 0);
        let second = p.run(&request).unwrap();
        assert_eq!(second.stats.result_cache_hits, 1);
        assert_eq!(second.result.rows, first.result.rows);
    }

    #[test]
    fn subscribe_flag_is_carried_not_executed() {
        let request = QueryRequest::new("//notes").subscribe();
        assert!(request.wants_subscribe());
        let p = processor();
        // run() treats it as a plain execution.
        assert_eq!(p.run(&request).unwrap().result.rows.len(), 1);
    }
}
