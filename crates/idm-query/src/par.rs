//! Minimal fork-join helpers over `std::thread::scope`.
//!
//! The executor's hot loops (full scans, frontier expansion, join builds)
//! are embarrassingly parallel over slices. A work-stealing pool is
//! overkill for that shape — contiguous chunking keeps every worker's
//! output in input order, which is what lets parallel execution return
//! identically-ordered results to sequential execution. (The build
//! environment has no crates.io access, so this replaces `rayon` for the
//! handful of patterns the executor needs.)

/// The default worker count: the machine's available parallelism.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `items` into at most `threads` contiguous chunks, maps each chunk
/// on its own scoped thread, and returns the chunk results in input order.
///
/// With `threads <= 1`, or when the input is too small to be worth forking
/// for, the map runs on the calling thread. `f` receives `(chunk_index,
/// chunk)`.
pub fn map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    // Forking has a fixed cost (~10µs/thread); tiny inputs stay sequential.
    const MIN_ITEMS_PER_THREAD: usize = 64;
    let threads = threads
        .min(items.len() / MIN_ITEMS_PER_THREAD.max(1))
        .max(1);
    if threads <= 1 {
        return if items.is_empty() {
            Vec::new()
        } else {
            vec![f(0, items)]
        };
    }
    let chunk_len = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(i, chunk)| scope.spawn(move || f(i, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Fallible [`map_chunks`]: maps each contiguous chunk on its own scoped
/// thread and propagates the first `Err` in *chunk order* (deterministic
/// regardless of which worker tripped first in wall-clock time). All
/// workers are always joined before returning — a budget checkpoint
/// erroring inside one chunk never leaks a scoped thread; siblings see
/// the shared cancel token and bail at their next checkpoint.
pub fn try_map_chunks<T, R, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &[T]) -> Result<R, E> + Sync,
{
    const MIN_ITEMS_PER_THREAD: usize = 64;
    let threads = threads
        .min(items.len() / MIN_ITEMS_PER_THREAD.max(1))
        .max(1);
    if threads <= 1 {
        return if items.is_empty() {
            Ok(Vec::new())
        } else {
            Ok(vec![f(0, items)?])
        };
    }
    let chunk_len = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(i, chunk)| scope.spawn(move || f(i, chunk)))
            .collect();
        // Collect every result first so all workers join even when an
        // early chunk failed, then surface the first error in order.
        let results: Vec<Result<R, E>> = handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect();
        results.into_iter().collect()
    })
}

/// Order-preserving parallel filter: keeps the items `keep` accepts, in
/// input order, evaluating `keep` across `threads` workers.
pub fn filter<T, F>(items: Vec<T>, threads: usize, keep: F) -> Vec<T>
where
    T: Send + Sync + Copy,
    F: Fn(&T) -> bool + Sync,
{
    if threads <= 1 {
        return items.into_iter().filter(|v| keep(v)).collect();
    }
    let chunks = map_chunks(&items, threads, |_, chunk| {
        chunk
            .iter()
            .copied()
            .filter(|v| keep(v))
            .collect::<Vec<T>>()
    });
    let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_chunks_preserves_order() {
        let items: Vec<usize> = (0..10_000).collect();
        for threads in [1, 2, 3, 8] {
            let chunks = map_chunks(&items, threads, |_, c| c.to_vec());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, items, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_small_input_stays_sequential() {
        let used = AtomicUsize::new(0);
        let out = map_chunks(&[1, 2, 3], 8, |i, c| {
            used.fetch_add(1, Ordering::SeqCst);
            (i, c.len())
        });
        assert_eq!(out, vec![(0, 3)]);
        assert_eq!(used.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn map_chunks_empty_input() {
        let out: Vec<usize> = map_chunks(&[] as &[u8], 4, |_, c| c.len());
        assert!(out.is_empty());
    }

    #[test]
    fn filter_matches_sequential_for_all_thread_counts() {
        let items: Vec<u64> = (0..5_000).collect();
        let expect: Vec<u64> = items.iter().copied().filter(|v| v % 7 == 0).collect();
        for threads in [1, 2, 4, 16] {
            assert_eq!(filter(items.clone(), threads, |v| v % 7 == 0), expect);
        }
    }

    #[test]
    fn try_map_chunks_propagates_first_error_in_chunk_order() {
        let items: Vec<usize> = (0..10_000).collect();
        for threads in [1, 2, 4, 8] {
            // Chunks past the first fail with their chunk index; the
            // error surfaced must be the lowest failing index even if a
            // later worker finishes first.
            let out = try_map_chunks(
                &items,
                threads,
                |i, c| {
                    if i >= 1 {
                        Err(i)
                    } else {
                        Ok(c.len())
                    }
                },
            );
            if threads == 1 {
                assert!(out.is_ok(), "single chunk never reaches index 1");
            } else {
                assert_eq!(out, Err(1), "threads={threads}");
            }
        }
    }

    #[test]
    fn try_map_chunks_ok_matches_map_chunks() {
        let items: Vec<usize> = (0..5_000).collect();
        for threads in [1, 2, 4] {
            let ok: Result<Vec<Vec<usize>>, ()> =
                try_map_chunks(&items, threads, |_, c| Ok(c.to_vec()));
            let flat: Vec<usize> = ok.expect("no errors").into_iter().flatten().collect();
            assert_eq!(flat, items, "threads={threads}");
        }
    }

    #[test]
    fn try_map_chunks_joins_all_workers_on_error() {
        let completed = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1_000).collect();
        let out = try_map_chunks(&items, 4, |i, _| {
            completed.fetch_add(1, Ordering::SeqCst);
            if i == 0 {
                Err("boom")
            } else {
                Ok(())
            }
        });
        assert_eq!(out, Err("boom"));
        // Every spawned worker ran to completion and was joined.
        assert_eq!(completed.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn workers_actually_fork() {
        let ids = std::sync::Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..1_000).collect();
        map_chunks(&items, 4, |_, c| {
            ids.lock().unwrap().insert(std::thread::current().id());
            c.len()
        });
        assert!(ids.lock().unwrap().len() > 1, "expected multiple workers");
    }
}
