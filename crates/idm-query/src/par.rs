//! Minimal fork-join helpers over `std::thread::scope`.
//!
//! The executor's hot loops (full scans, frontier expansion, join builds)
//! are embarrassingly parallel over slices. A work-stealing pool is
//! overkill for that shape — contiguous chunking keeps every worker's
//! output in input order, which is what lets parallel execution return
//! identically-ordered results to sequential execution. (The build
//! environment has no crates.io access, so this replaces `rayon` for the
//! handful of patterns the executor needs.)

/// The default worker count: the machine's available parallelism.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `items` into at most `threads` contiguous chunks, maps each chunk
/// on its own scoped thread, and returns the chunk results in input order.
///
/// With `threads <= 1`, or when the input is too small to be worth forking
/// for, the map runs on the calling thread. `f` receives `(chunk_index,
/// chunk)`.
pub fn map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    // Forking has a fixed cost (~10µs/thread); tiny inputs stay sequential.
    const MIN_ITEMS_PER_THREAD: usize = 64;
    let threads = threads
        .min(items.len() / MIN_ITEMS_PER_THREAD.max(1))
        .max(1);
    if threads <= 1 {
        return if items.is_empty() {
            Vec::new()
        } else {
            vec![f(0, items)]
        };
    }
    let chunk_len = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(i, chunk)| scope.spawn(move || f(i, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Order-preserving parallel filter: keeps the items `keep` accepts, in
/// input order, evaluating `keep` across `threads` workers.
pub fn filter<T, F>(items: Vec<T>, threads: usize, keep: F) -> Vec<T>
where
    T: Send + Sync + Copy,
    F: Fn(&T) -> bool + Sync,
{
    if threads <= 1 {
        return items.into_iter().filter(|v| keep(v)).collect();
    }
    let chunks = map_chunks(&items, threads, |_, chunk| {
        chunk
            .iter()
            .copied()
            .filter(|v| keep(v))
            .collect::<Vec<T>>()
    });
    let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_chunks_preserves_order() {
        let items: Vec<usize> = (0..10_000).collect();
        for threads in [1, 2, 3, 8] {
            let chunks = map_chunks(&items, threads, |_, c| c.to_vec());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, items, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_small_input_stays_sequential() {
        let used = AtomicUsize::new(0);
        let out = map_chunks(&[1, 2, 3], 8, |i, c| {
            used.fetch_add(1, Ordering::SeqCst);
            (i, c.len())
        });
        assert_eq!(out, vec![(0, 3)]);
        assert_eq!(used.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn map_chunks_empty_input() {
        let out: Vec<usize> = map_chunks(&[] as &[u8], 4, |_, c| c.len());
        assert!(out.is_empty());
    }

    #[test]
    fn filter_matches_sequential_for_all_thread_counts() {
        let items: Vec<u64> = (0..5_000).collect();
        let expect: Vec<u64> = items.iter().copied().filter(|v| v % 7 == 0).collect();
        for threads in [1, 2, 4, 16] {
            assert_eq!(filter(items.clone(), threads, |v| v % 7 == 0), expect);
        }
    }

    #[test]
    fn workers_actually_fork() {
        let ids = std::sync::Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..1_000).collect();
        map_chunks(&items, 4, |_, c| {
            ids.lock().unwrap().insert(std::thread::current().id());
            c.len()
        });
        assert!(ids.lock().unwrap().len() > 1, "expected multiple workers");
    }
}
