//! The iQL plan IR: one typed operator tree shared by the optimizer,
//! the executor and `EXPLAIN`.
//!
//! The paper's query processor is rule-based (Section 5.1; cost-based
//! optimization is named as future work). Earlier revisions of this
//! crate applied those rules twice — once inline in the executor and
//! once as prose in `EXPLAIN` — which let the two drift. This module
//! replaces both with a single pipeline:
//!
//! ```text
//! AST ──plan()──▶ logical plan (PlanNode tree, cost-annotated)
//!                 │  rewrites driven by `cost.rs` estimates:
//!                 │   · conjuncts intersect smallest-estimate first
//!                 │   · hash joins build on the smaller-estimate side
//!                 │   · index access vs. full catalog scan per step
//!                 ▼
//!          physical execution (exec.rs walks the same tree)
//!          EXPLAIN            (render() prints the same tree)
//! ```
//!
//! [`Plan::fingerprint`] hashes the normalized structure (operators,
//! accesses, decisions — not the volatile estimates) into a stable key
//! used by the [`crate::cache::ResultCache`] and by the
//! planner-determinism guard in `idm-bench`.

use idm_core::prelude::{IdmError, Result};
use idm_index::name::NamePattern;
use idm_index::tuple::CompareOp;

use crate::ast::*;
use crate::cost::Estimate;
use crate::exec::{ExpansionStrategy, QueryProcessor};
use crate::parser::parse;

/// Which index a leaf access reads, with its argument.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessKind {
    /// Name index lookup (exact or wildcard pattern).
    Name(NamePattern),
    /// Content (full-text) index phrase lookup.
    Content(String),
    /// Tuple index comparison against a literal.
    Tuple {
        /// Attribute name as written (aliases resolved at execution).
        attr: String,
        /// Comparison operator.
        op: CompareOp,
        /// Right-hand literal (date functions evaluated at execution).
        value: Literal,
    },
    /// Catalog lookup of a class and its specializations.
    Catalog(String),
}

/// Which join input the hash table is built on (a plan-time decision
/// driven by cardinality estimates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildSide {
    /// Build on the left input, probe with the right.
    Left,
    /// Build on the right input, probe with the left.
    Right,
}

/// A logical/physical plan operator. The executor walks this tree; the
/// renderer prints it; there is no second interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Leaf: read one posting list from an index.
    IndexAccess(AccessKind),
    /// Leaf: enumerate the whole catalog (no usable index).
    Scan,
    /// Intersect the inputs, in plan order (smallest estimate first).
    Intersect(Vec<PlanNode>),
    /// Union the inputs and deduplicate.
    UnionOp(Vec<PlanNode>),
    /// Complement of the input against the catalog.
    Complement(Box<PlanNode>),
    /// Keep the candidates related to some context view along `axis`,
    /// using `strategy` to expand group edges.
    Relate {
        /// Produces the context views (the previous path steps).
        context: Box<PlanNode>,
        /// Produces the candidate views of this step.
        candidates: Box<PlanNode>,
        /// `/` (direct) or `//` (indirect) relatedness.
        axis: Axis,
        /// Forward, backward, or size-adaptive bidirectional expansion.
        strategy: ExpansionStrategy,
    },
    /// Hash equi-join of two inputs on component fields.
    HashJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Left binding name (for rendering).
        left_binding: String,
        /// Right binding name (for rendering).
        right_binding: String,
        /// Key field of the left input.
        left_field: Field,
        /// Key field of the right input.
        right_field: Field,
        /// Which side the hash table is built on (cost-chosen).
        build: BuildSide,
    },
}

impl PlanOp {
    /// Short operator name — the `phase` a budget checkpoint reports in
    /// [`idm_core::error::IdmError::ResourceExhausted`], so exhaustion
    /// errors say which operator the query was in when it tripped.
    pub fn label(&self) -> &'static str {
        match self {
            PlanOp::IndexAccess(_) => "index-access",
            PlanOp::Scan => "scan",
            PlanOp::Intersect(_) => "intersect",
            PlanOp::UnionOp(_) => "union",
            PlanOp::Complement(_) => "complement",
            PlanOp::Relate { .. } => "relate",
            PlanOp::HashJoin { .. } => "hash-join",
        }
    }
}

/// One plan node: an operator plus its cardinality estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// The operator.
    pub op: PlanOp,
    /// Estimated output cardinality (from `cost.rs`, at plan time).
    pub est: Estimate,
}

/// A complete, executable query plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The root operator.
    pub root: PlanNode,
}

/// Per-operator counts — of nodes in a plan, or of operators actually
/// executed (folded into [`crate::exec::ExecStats::ops`]). The
/// plan/exec agreement suite asserts the two are equal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorCounts {
    /// Index posting-list reads.
    pub index_accesses: usize,
    /// Full catalog scans.
    pub scans: usize,
    /// Intersections.
    pub intersects: usize,
    /// Unions.
    pub unions: usize,
    /// Complements against the catalog.
    pub complements: usize,
    /// Path-step relate (expansion) operators.
    pub relates: usize,
    /// Hash joins.
    pub hash_joins: usize,
}

impl OperatorCounts {
    /// Total operators.
    pub fn total(&self) -> usize {
        self.index_accesses
            + self.scans
            + self.intersects
            + self.unions
            + self.complements
            + self.relates
            + self.hash_joins
    }
}

impl Plan {
    /// Counts the operators in the plan tree.
    pub fn operator_counts(&self) -> OperatorCounts {
        let mut counts = OperatorCounts::default();
        count_ops(&self.root, &mut counts);
        counts
    }

    /// Renders the plan as indented text (the `EXPLAIN` output). This
    /// prints the *same* tree the executor walks.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_node(&self.root, 0, false, &mut out);
        out
    }

    /// [`Plan::render`] with per-node cardinality estimates — the
    /// "EXPLAIN (with estimates)" a cost-based optimizer starts from.
    pub fn render_with_estimates(&self) -> String {
        let mut out = String::new();
        render_node(&self.root, 0, true, &mut out);
        out
    }

    /// A stable 64-bit fingerprint of the normalized plan structure
    /// (operators, accesses and rewrite decisions; estimates excluded).
    /// Same query + same catalog statistics ⇒ identical fingerprint,
    /// which is what lets result caches key on it.
    pub fn fingerprint(&self) -> u64 {
        let mut canonical = String::new();
        canonicalize(&self.root, &mut canonical);
        fnv1a(canonical.as_bytes())
    }
}

fn count_ops(node: &PlanNode, counts: &mut OperatorCounts) {
    match &node.op {
        PlanOp::IndexAccess(_) => counts.index_accesses += 1,
        PlanOp::Scan => counts.scans += 1,
        PlanOp::Intersect(inputs) => {
            counts.intersects += 1;
            for input in inputs {
                count_ops(input, counts);
            }
        }
        PlanOp::UnionOp(inputs) => {
            counts.unions += 1;
            for input in inputs {
                count_ops(input, counts);
            }
        }
        PlanOp::Complement(exclude) => {
            counts.complements += 1;
            count_ops(exclude, counts);
        }
        PlanOp::Relate {
            context,
            candidates,
            ..
        } => {
            counts.relates += 1;
            count_ops(context, counts);
            count_ops(candidates, counts);
        }
        PlanOp::HashJoin { left, right, .. } => {
            counts.hash_joins += 1;
            count_ops(left, counts);
            count_ops(right, counts);
        }
    }
}

/// FNV-1a, 64-bit: deterministic across runs, processes and platforms
/// (unlike the std hasher, whose keys are unspecified).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn canonicalize(node: &PlanNode, out: &mut String) {
    match &node.op {
        PlanOp::IndexAccess(access) => match access {
            AccessKind::Name(pattern) => {
                out.push_str("ia:name:");
                out.push_str(pattern.as_str());
            }
            AccessKind::Content(phrase) => {
                out.push_str("ia:content:");
                out.push_str(phrase);
            }
            AccessKind::Tuple { attr, op, value } => {
                out.push_str(&format!("ia:tuple:{attr}:{op:?}:{value:?}"));
            }
            AccessKind::Catalog(class) => {
                out.push_str("ia:catalog:");
                out.push_str(class);
            }
        },
        PlanOp::Scan => out.push_str("scan"),
        PlanOp::Intersect(inputs) => {
            out.push_str("and(");
            for input in inputs {
                canonicalize(input, out);
                out.push(',');
            }
            out.push(')');
        }
        PlanOp::UnionOp(inputs) => {
            out.push_str("or(");
            for input in inputs {
                canonicalize(input, out);
                out.push(',');
            }
            out.push(')');
        }
        PlanOp::Complement(exclude) => {
            out.push_str("not(");
            canonicalize(exclude, out);
            out.push(')');
        }
        PlanOp::Relate {
            context,
            candidates,
            axis,
            strategy,
        } => {
            out.push_str(&format!("rel:{axis:?}:{strategy:?}("));
            canonicalize(context, out);
            out.push(',');
            canonicalize(candidates, out);
            out.push(')');
        }
        PlanOp::HashJoin {
            left,
            right,
            left_field,
            right_field,
            build,
            ..
        } => {
            out.push_str(&format!(
                "join:{}:{}:{build:?}(",
                field_name(left_field),
                field_name(right_field)
            ));
            canonicalize(left, out);
            out.push(',');
            canonicalize(right, out);
            out.push(')');
        }
    }
    out.push(';');
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn field_name(field: &Field) -> String {
    match field {
        Field::Name => "name".to_owned(),
        Field::Class => "class".to_owned(),
        Field::TupleAttr(attr) => format!("tuple.{attr}"),
    }
}

fn render_node(node: &PlanNode, depth: usize, estimates: bool, out: &mut String) {
    indent(depth, out);
    let est_suffix = |node: &PlanNode| {
        if estimates {
            format!(
                "  (est. {} rows{})",
                node.est.rows,
                if node.est.exact { ", exact" } else { "" }
            )
        } else {
            String::new()
        }
    };
    match &node.op {
        PlanOp::IndexAccess(access) => {
            let what = match access {
                AccessKind::Name(pattern) if pattern.is_exact() => {
                    format!("NameIndex exact '{}'", pattern.as_str())
                }
                AccessKind::Name(pattern) => {
                    format!("NameIndex wildcard '{}'", pattern.as_str())
                }
                AccessKind::Content(phrase) => format!("ContentIndex phrase \"{phrase}\""),
                AccessKind::Tuple { attr, op, value } => {
                    format!("TupleIndex {attr} {op:?} {value:?}")
                }
                AccessKind::Catalog(class) => {
                    format!("Catalog class '{class}' (+ specializations)")
                }
            };
            out.push_str(&format!("IndexAccess {what}{}\n", est_suffix(node)));
        }
        PlanOp::Scan => {
            out.push_str(&format!("Scan (full catalog){}\n", est_suffix(node)));
        }
        PlanOp::Intersect(inputs) => {
            out.push_str(&format!(
                "Intersect ({} inputs, smallest-estimate first){}\n",
                inputs.len(),
                est_suffix(node)
            ));
            for input in inputs {
                render_node(input, depth + 1, estimates, out);
            }
        }
        PlanOp::UnionOp(inputs) => {
            out.push_str(&format!(
                "Union ({} inputs, dedup){}\n",
                inputs.len(),
                est_suffix(node)
            ));
            for input in inputs {
                render_node(input, depth + 1, estimates, out);
            }
        }
        PlanOp::Complement(exclude) => {
            out.push_str(&format!(
                "Complement (against catalog){}\n",
                est_suffix(node)
            ));
            render_node(exclude, depth + 1, estimates, out);
        }
        PlanOp::Relate {
            context,
            candidates,
            axis,
            strategy,
        } => {
            let axis_text = match axis {
                Axis::Descendant => "indirectly-related (//)",
                Axis::Child => "directly-related (/)",
            };
            out.push_str(&format!(
                "Relate {axis_text}, {strategy:?} expansion{}\n",
                est_suffix(node)
            ));
            render_node(context, depth + 1, estimates, out);
            render_node(candidates, depth + 1, estimates, out);
        }
        PlanOp::HashJoin {
            left,
            right,
            left_binding,
            right_binding,
            left_field,
            right_field,
            build,
        } => {
            let build_text = if estimates {
                format!(
                    "build={} (est. {} vs {})",
                    match build {
                        BuildSide::Left => "left",
                        BuildSide::Right => "right",
                    },
                    left.est.rows,
                    right.est.rows
                )
            } else {
                format!(
                    "build={}",
                    match build {
                        BuildSide::Left => "left",
                        BuildSide::Right => "right",
                    }
                )
            };
            out.push_str(&format!(
                "HashJoin on {left_binding}.{} = {right_binding}.{}, {build_text}\n",
                field_name(left_field),
                field_name(right_field),
            ));
            render_node(left, depth + 1, estimates, out);
            render_node(right, depth + 1, estimates, out);
        }
    }
}

// ---- the planner -----------------------------------------------------

impl QueryProcessor {
    /// Parses an iQL query and plans it under the current options.
    pub fn plan_iql(&self, iql: &str) -> Result<Plan> {
        self.plan(&parse(iql)?)
    }

    /// Plans a parsed query: builds the cost-annotated operator tree
    /// and applies the rule-based rewrites (smallest-estimate-first
    /// intersections, cost-chosen join build sides, index-vs-scan).
    pub fn plan(&self, query: &Query) -> Result<Plan> {
        Ok(Plan {
            root: self.plan_query(query)?,
        })
    }

    /// Renders the execution plan of an iQL query — the same plan
    /// object [`QueryProcessor::execute`] runs.
    pub fn explain(&self, iql: &str) -> Result<String> {
        Ok(self.plan_iql(iql)?.render())
    }

    fn plan_query(&self, query: &Query) -> Result<PlanNode> {
        match query {
            Query::Filter(pred) => Ok(self.plan_pred(pred)),
            Query::Path(path) => Ok(self.plan_path(path)),
            Query::Union(members) => {
                let inputs: Vec<PlanNode> = members
                    .iter()
                    .map(|m| self.plan_query(m))
                    .collect::<Result<_>>()?;
                let est = self.estimate(query);
                Ok(PlanNode {
                    op: PlanOp::UnionOp(inputs),
                    est,
                })
            }
            Query::Join(join) => self.plan_join(join),
        }
    }

    fn plan_pred(&self, pred: &Pred) -> PlanNode {
        let est = self.estimate_pred(pred);
        let op = match pred {
            Pred::Phrase(phrase) => PlanOp::IndexAccess(AccessKind::Content(phrase.clone())),
            Pred::Class(class) => PlanOp::IndexAccess(AccessKind::Catalog(class.clone())),
            Pred::Cmp { attr, op, value } => PlanOp::IndexAccess(AccessKind::Tuple {
                attr: attr.clone(),
                op: *op,
                value: value.clone(),
            }),
            Pred::And(members) => {
                let inputs = members.iter().map(|m| self.plan_pred(m)).collect();
                PlanOp::Intersect(order_smallest_first(inputs))
            }
            Pred::Or(members) => {
                PlanOp::UnionOp(members.iter().map(|m| self.plan_pred(m)).collect())
            }
            Pred::Not(inner) => PlanOp::Complement(Box::new(self.plan_pred(inner))),
        };
        PlanNode { op, est }
    }

    /// Plans one path step's candidate set: index accesses intersected
    /// where available, an explicit full scan where not.
    fn plan_step_candidates(&self, step: &Step) -> PlanNode {
        let by_name = if step.name.matches_all() {
            None
        } else {
            Some(PlanNode {
                est: self.estimate_name(&step.name),
                op: PlanOp::IndexAccess(AccessKind::Name(step.name.clone())),
            })
        };
        let by_pred = step.pred.as_ref().map(|pred| self.plan_pred(pred));
        match (by_name, by_pred) {
            (Some(a), Some(b)) => {
                let est = Estimate::guess(a.est.rows.min(b.est.rows));
                PlanNode {
                    op: PlanOp::Intersect(order_smallest_first(vec![a, b])),
                    est,
                }
            }
            (Some(a), None) => a,
            (None, Some(b)) => b,
            // Index-vs-scan as an explicit plan decision: nothing to
            // look up, so enumerate the catalog.
            (None, None) => PlanNode {
                op: PlanOp::Scan,
                est: Estimate::exact(self.universe()),
            },
        }
    }

    fn plan_path(&self, path: &PathExpr) -> PlanNode {
        let strategy = self.options().expansion;
        let mut node: Option<PlanNode> = None;
        for step in &path.steps {
            let candidates = self.plan_step_candidates(step);
            node = Some(match node {
                // The first step has no ancestry constraint.
                None => candidates,
                Some(context) => {
                    let est = Estimate::guess((candidates.est.rows / 2).max(1));
                    PlanNode {
                        op: PlanOp::Relate {
                            context: Box::new(context),
                            candidates: Box::new(candidates),
                            axis: step.axis,
                            strategy,
                        },
                        est,
                    }
                }
            });
        }
        node.unwrap_or(PlanNode {
            op: PlanOp::Scan,
            est: Estimate::exact(self.universe()),
        })
    }

    fn plan_join(&self, join: &JoinExpr) -> Result<PlanNode> {
        if join.left_binding == join.right_binding {
            return Err(IdmError::Parse {
                detail: format!(
                    "iql: duplicate join binding '{}' — inputs need distinct names",
                    join.left_binding
                ),
            });
        }
        // The condition must reference each binding exactly once; a
        // condition like `A.name = A.name` is ambiguous (which rows of
        // B would it constrain?) and is rejected here.
        for field_ref in [&join.condition.left, &join.condition.right] {
            if field_ref.binding != join.left_binding && field_ref.binding != join.right_binding {
                return Err(IdmError::Parse {
                    detail: format!(
                        "iql: unknown join binding '{}' (have '{}' and '{}')",
                        field_ref.binding, join.left_binding, join.right_binding
                    ),
                });
            }
        }
        if join.condition.left.binding == join.condition.right.binding {
            return Err(IdmError::Parse {
                detail: format!(
                    "iql: ambiguous join condition — both sides reference binding '{}'; \
                     the condition must mention '{}' and '{}' once each",
                    join.condition.left.binding, join.left_binding, join.right_binding
                ),
            });
        }
        let left = self.plan_query(&join.left)?;
        let right = self.plan_query(&join.right)?;

        // Orient the condition fields to their sides.
        let (left_field, right_field) = if join.condition.left.binding == join.left_binding {
            (
                join.condition.left.field.clone(),
                join.condition.right.field.clone(),
            )
        } else {
            (
                join.condition.right.field.clone(),
                join.condition.left.field.clone(),
            )
        };

        // Cost-driven build side: hash the smaller estimated input.
        let build = if left.est.rows <= right.est.rows {
            BuildSide::Left
        } else {
            BuildSide::Right
        };
        let est = Estimate::guess(left.est.rows.min(right.est.rows));
        Ok(PlanNode {
            op: PlanOp::HashJoin {
                left: Box::new(left),
                right: Box::new(right),
                left_binding: join.left_binding.clone(),
                right_binding: join.right_binding.clone(),
                left_field,
                right_field,
                build,
            },
            est,
        })
    }
}

/// Rewrite rule: order intersection inputs by ascending estimate.
/// Ties keep the written order (stable), so plans are deterministic.
fn order_smallest_first(mut inputs: Vec<PlanNode>) -> Vec<PlanNode> {
    inputs.sort_by_key(|n| n.est.rows);
    inputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_core::prelude::*;
    use idm_index::IndexBundle;
    use std::sync::Arc;

    fn space() -> QueryProcessor {
        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(IndexBundle::new());
        for i in 0..40 {
            store
                .build(if i == 0 {
                    "VLDB2006".to_owned()
                } else {
                    format!("figure{i}")
                })
                .tuple(TupleComponent::of(vec![
                    ("size", Value::Integer(i)),
                    ("label", Value::Text(format!("fig:{i}"))),
                ]))
                .text(if i < 4 {
                    "rare texref needle".to_owned()
                } else {
                    "common haystack words".to_owned()
                })
                .class_named("file")
                .insert();
        }
        for vid in store.vids() {
            indexes.index_view(&store, vid, "test").unwrap();
        }
        QueryProcessor::new(store, indexes)
    }

    #[test]
    fn explains_q7_shape() {
        let p = space();
        let plan = p
            .explain(
                r#"join( //VLDB2006//*[class="texref"] as A,
                         //VLDB2006//*[class="environment"]//figure* as B,
                         A.name=B.tuple.label)"#,
            )
            .unwrap();
        assert!(
            plan.contains("HashJoin on A.name = B.tuple.label"),
            "{plan}"
        );
        assert!(plan.contains("NameIndex exact 'VLDB2006'"), "{plan}");
        assert!(plan.contains("NameIndex wildcard 'figure*'"), "{plan}");
        assert!(plan.contains("Catalog class 'texref'"), "{plan}");
        assert!(plan.contains("Forward expansion"), "{plan}");
        assert!(plan.contains("build="), "{plan}");
    }

    #[test]
    fn explains_filters_and_unions() {
        let mut p = space();
        p.set_expansion(ExpansionStrategy::Backward);
        let plan = p
            .explain(r#"union( //A//*["x" and size > 3], "y" )"#)
            .unwrap();
        assert!(plan.contains("Union (2 inputs"), "{plan}");
        assert!(plan.contains("ContentIndex phrase \"x\""), "{plan}");
        assert!(plan.contains("TupleIndex size"), "{plan}");
        assert!(plan.contains("Backward expansion"), "{plan}");
    }

    #[test]
    fn explain_propagates_parse_errors() {
        let p = space();
        assert!(p.explain("[size >").is_err());
        assert!(p.explain("").is_err());
    }

    #[test]
    fn intersections_order_smallest_estimate_first() {
        let p = space();
        // "haystack" (36 docs) written before "needle" (4 docs): the
        // rewrite must flip them.
        let plan = p.plan_iql(r#"["haystack" and "needle"]"#).unwrap();
        let PlanOp::Intersect(inputs) = &plan.root.op else {
            panic!("expected an intersection, got {:?}", plan.root.op);
        };
        assert!(
            inputs.windows(2).all(|w| w[0].est.rows <= w[1].est.rows),
            "inputs not estimate-ordered: {inputs:?}"
        );
        assert_eq!(
            inputs[0].op,
            PlanOp::IndexAccess(AccessKind::Content("needle".into()))
        );
    }

    #[test]
    fn join_build_side_follows_estimates() {
        let p = space();
        let plan = p
            .plan_iql(r#"join( "haystack" as A, "needle" as B, A.name = B.name )"#)
            .unwrap();
        let PlanOp::HashJoin {
            left, right, build, ..
        } = &plan.root.op
        else {
            panic!()
        };
        assert!(left.est.rows > right.est.rows);
        assert_eq!(*build, BuildSide::Right, "hash the rare side");
    }

    #[test]
    fn bare_wildcard_step_is_an_explicit_scan() {
        let p = space();
        let plan = p.plan_iql("//*").unwrap();
        assert_eq!(plan.root.op, PlanOp::Scan);
        assert_eq!(plan.root.est.rows, 40);
    }

    #[test]
    fn fingerprints_are_stable_and_structural() {
        let p = space();
        let a = p.plan_iql(r#"["needle" and "haystack"]"#).unwrap();
        let b = p.plan_iql(r#"["needle" and "haystack"]"#).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same query, same key");
        let c = p.plan_iql(r#"["needle" and "words"]"#).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint(), "different query");
        // The fingerprint reflects decisions, not estimate numbers:
        // rendering differs only in estimates, fingerprints agree.
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn operator_counts_cover_every_node() {
        let p = space();
        let plan = p
            .plan_iql(r#"union( //VLDB2006//*[class="file" and "needle"], [not "needle"] )"#)
            .unwrap();
        let counts = plan.operator_counts();
        assert_eq!(counts.unions, 1);
        assert_eq!(counts.relates, 1);
        assert_eq!(counts.complements, 1);
        assert!(counts.index_accesses >= 3, "{counts:?}");
        assert_eq!(counts.total(), {
            let c = counts;
            c.index_accesses
                + c.scans
                + c.intersects
                + c.unions
                + c.complements
                + c.relates
                + c.hash_joins
        });
    }

    #[test]
    fn ambiguous_join_conditions_are_rejected_at_plan_time() {
        let p = space();
        // Both sides reference the same binding.
        let err = p
            .plan_iql(r#"join( //a as A, //b as B, A.name = A.name )"#)
            .unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
        // Unknown binding.
        let err = p
            .plan_iql(r#"join( //a as A, //b as B, C.name = B.name )"#)
            .unwrap_err();
        assert!(err.to_string().contains("binding"), "{err}");
        // Duplicate binding names.
        let err = p
            .plan_iql(r#"join( //a as A, //b as A, A.name = A.name )"#)
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        // Swapped-order conditions stay legal.
        assert!(p
            .plan_iql(r#"join( //a as A, //b as B, B.name = A.name )"#)
            .is_ok());
    }
}
