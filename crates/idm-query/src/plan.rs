//! Rule-based plan rendering (`EXPLAIN` for iQL).
//!
//! The paper's query processor uses rule-based optimization
//! (Section 5.1; cost-based optimization is future work). The rules
//! applied by the executor are deterministic:
//!
//! 1. every step predicate conjunct is mapped to its index (phrases →
//!    content index, comparisons → tuple index, `class=` → catalog,
//!    name patterns → name index),
//! 2. conjunctions intersect smallest-first,
//! 3. path steps relate to their context via the configured expansion
//!    strategy (forward / backward / bidirectional),
//! 4. joins build the hash table on the smaller input.
//!
//! [`explain`] renders the resulting plan as text.

use idm_core::prelude::Result;

use crate::ast::*;
use crate::exec::ExpansionStrategy;
use crate::parser::parse;

/// Renders the execution plan of an iQL query as indented text.
pub fn explain(iql: &str, strategy: ExpansionStrategy) -> Result<String> {
    let query = parse(iql)?;
    let mut out = String::new();
    render_query(&query, strategy, 0, &mut out);
    Ok(out)
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_query(query: &Query, strategy: ExpansionStrategy, depth: usize, out: &mut String) {
    match query {
        Query::Filter(pred) => {
            indent(depth, out);
            out.push_str("Filter (dataspace-wide)\n");
            render_pred(pred, depth + 1, out);
        }
        Query::Path(path) => {
            indent(depth, out);
            out.push_str(&format!("Path ({} steps)\n", path.steps.len()));
            for (i, step) in path.steps.iter().enumerate() {
                indent(depth + 1, out);
                let axis = match step.axis {
                    Axis::Descendant => "indirectly-related (//)",
                    Axis::Child => "directly-related (/)",
                };
                let relate = if i == 0 {
                    "index-only".to_owned()
                } else {
                    format!("{strategy:?} expansion over the group replica")
                };
                let access = if step.name.matches_all() {
                    "scan".to_owned()
                } else if step.name.is_exact() {
                    format!("NameIndex exact '{}'", step.name.as_str())
                } else {
                    format!("NameIndex wildcard '{}'", step.name.as_str())
                };
                out.push_str(&format!("Step {i}: {axis}, {access}, relate: {relate}\n"));
                if let Some(pred) = &step.pred {
                    render_pred(pred, depth + 2, out);
                }
            }
        }
        Query::Union(members) => {
            indent(depth, out);
            out.push_str(&format!("Union ({} inputs, dedup)\n", members.len()));
            for member in members {
                render_query(member, strategy, depth + 1, out);
            }
        }
        Query::Join(join) => {
            indent(depth, out);
            out.push_str(&format!(
                "HashJoin on {}.{} = {}.{} (build on smaller input)\n",
                join.condition.left.binding,
                field_name(&join.condition.left.field),
                join.condition.right.binding,
                field_name(&join.condition.right.field),
            ));
            render_query(&join.left, strategy, depth + 1, out);
            render_query(&join.right, strategy, depth + 1, out);
        }
    }
}

fn field_name(field: &Field) -> String {
    match field {
        Field::Name => "name".to_owned(),
        Field::Class => "class".to_owned(),
        Field::TupleAttr(attr) => format!("tuple.{attr}"),
    }
}

fn render_pred(pred: &Pred, depth: usize, out: &mut String) {
    indent(depth, out);
    match pred {
        Pred::And(members) => {
            out.push_str("And (intersect smallest-first)\n");
            for member in members {
                render_pred(member, depth + 1, out);
            }
        }
        Pred::Or(members) => {
            out.push_str("Or (union)\n");
            for member in members {
                render_pred(member, depth + 1, out);
            }
        }
        Pred::Not(inner) => {
            out.push_str("Not (complement against catalog)\n");
            render_pred(inner, depth + 1, out);
        }
        Pred::Phrase(phrase) => {
            out.push_str(&format!("ContentIndex phrase \"{phrase}\"\n"));
        }
        Pred::Class(class) => {
            out.push_str(&format!("Catalog class '{class}' (+ specializations)\n"));
        }
        Pred::Cmp { attr, op, value } => {
            out.push_str(&format!("TupleIndex {attr} {op:?} {value:?}\n"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explains_q7_shape() {
        let plan = explain(
            r#"join( //VLDB2006//*[class="texref"] as A,
                     //VLDB2006//*[class="environment"]//figure* as B,
                     A.name=B.tuple.label)"#,
            ExpansionStrategy::Forward,
        )
        .unwrap();
        assert!(plan.contains("HashJoin on A.name = B.tuple.label"));
        assert!(plan.contains("NameIndex exact 'VLDB2006'"));
        assert!(plan.contains("NameIndex wildcard 'figure*'"));
        assert!(plan.contains("Catalog class 'texref'"));
        assert!(plan.contains("Forward expansion"));
    }

    #[test]
    fn explains_filters_and_unions() {
        let plan = explain(
            r#"union( //A//*["x" and size > 3], "y" )"#,
            ExpansionStrategy::Backward,
        )
        .unwrap();
        assert!(plan.contains("Union (2 inputs"));
        assert!(plan.contains("ContentIndex phrase \"x\""));
        assert!(plan.contains("TupleIndex size"));
        assert!(plan.contains("Backward expansion"));
        assert!(plan.contains("Filter (dataspace-wide)"));
    }

    #[test]
    fn explain_propagates_parse_errors() {
        assert!(explain("[size >", ExpansionStrategy::Forward).is_err());
        assert!(explain("", ExpansionStrategy::Forward).is_err());
    }
}
