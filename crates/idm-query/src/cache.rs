//! Bounded memoization of forced lazy components (Section 4.1).
//!
//! Forcing an intensional component — a [`idm_core::group::GroupProvider`]
//! turning a LaTeX file into a subgraph, a
//! [`idm_core::content::ContentProvider`] fetching remote bytes — is the
//! dominant cost of the paper's Figure 6 workload. The store's lazy cells
//! already compute each provider at most once, but every access still pays
//! a shard lock plus handle clones, and a mutated view must recompute.
//!
//! [`ExpansionCache`] sits between the query executor and the store: a
//! bounded LRU keyed by `(Vid, component)` whose entries carry the store's
//! per-view mutation version. An entry is valid only while the view's
//! version is unchanged; [`ChangeEvent`]s drained from a store subscription
//! evict entries eagerly, and the version check catches anything the event
//! channel has not delivered yet. Hit/miss/eviction counters are atomics so
//! parallel query workers can share one cache, and are surfaced per query
//! through [`crate::exec::ExecStats`].

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Receiver;
use idm_core::prelude::*;
use idm_core::store::{ChangeEvent, GroupSnapshot};
use parking_lot::Mutex;

/// Which component of a view an entry memoizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Component {
    Group,
    Content,
}

/// A memoized forced component.
#[derive(Clone)]
enum CachedValue {
    /// Forced group members (cheap `Arc` clone on hit).
    Group(Arc<GroupData>),
    /// Forced content bytes (cheap slice clone on hit).
    Content(Bytes),
}

struct Entry {
    version: u64,
    tick: u64,
    value: CachedValue,
}

struct CacheInner {
    entries: HashMap<(Vid, Component), Entry>,
    /// LRU order: tick → key. Ticks are unique, so the first entry is the
    /// least recently used.
    order: BTreeMap<u64, (Vid, Component)>,
    next_tick: u64,
}

/// Live counter totals for an [`ExpansionCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to force the component.
    pub misses: u64,
    /// Entries dropped for capacity, removal, or replaced after their
    /// view mutated.
    pub evictions: u64,
    /// Degraded reads answered from a stale last-known-good entry after
    /// a force failed.
    pub stale_served: u64,
}

/// Bounded LRU over forced lazy-component results, invalidated by view
/// version and by store change events.
pub struct ExpansionCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    events: Receiver<ChangeEvent>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stale_served: AtomicU64,
}

impl ExpansionCache {
    /// A cache over `store` holding at most `capacity` entries. The cache
    /// subscribes to the store's change events for eager invalidation.
    pub fn new(store: &ViewStore, capacity: usize) -> Self {
        ExpansionCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                order: BTreeMap::new(),
                next_tick: 0,
            }),
            capacity: capacity.max(1),
            events: store.subscribe(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_served: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter totals since construction.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_served: self.stale_served.load(Ordering::Relaxed),
        }
    }

    /// Drains pending change events, dropping entries for *removed*
    /// views. Called at query start.
    ///
    /// Entries of merely *mutated* views are deliberately retained: the
    /// per-entry version check already hides them from fresh reads, and
    /// keeping them preserves a last-known-good value for degraded reads
    /// when the recompute fails ([`ExpansionCache::group_with_fallback`]).
    pub fn drain_invalidations(&self) {
        let mut removed: Vec<Vid> = self
            .events
            .try_iter()
            .filter(|e| e.kind == ChangeKind::Removed)
            .map(|e| e.vid)
            .collect();
        if removed.is_empty() {
            return;
        }
        removed.sort_unstable();
        removed.dedup();
        let mut inner = self.inner.lock();
        for vid in removed {
            for component in [Component::Group, Component::Content] {
                if let Some(entry) = inner.entries.remove(&(vid, component)) {
                    inner.order.remove(&entry.tick);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// The forced group members of `vid`, memoized.
    ///
    /// On a miss this calls [`ViewStore::group`], which runs any
    /// [`idm_core::group::GroupProvider`] outside the store locks exactly
    /// as a direct access would — lazy semantics are unchanged, only
    /// repeat forcing is elided. Infinite groups are not cached.
    pub fn group(&self, store: &ViewStore, vid: Vid) -> Result<GroupSnapshot> {
        let version = store.version(vid)?;
        if let Some(CachedValue::Group(data)) = self.lookup(vid, Component::Group, version) {
            return Ok(GroupSnapshot::Finite(data));
        }
        let snapshot = store.group(vid)?;
        if let GroupSnapshot::Finite(data) = &snapshot {
            self.store_entry(
                vid,
                Component::Group,
                version,
                CachedValue::Group(Arc::clone(data)),
            );
        }
        Ok(snapshot)
    }

    /// The materialized content bytes of `vid`, memoized.
    ///
    /// On a miss this forces intensional content via
    /// [`idm_core::content::ContentProvider::compute`]; infinite content
    /// propagates the store's error and is never cached.
    pub fn content(&self, store: &ViewStore, vid: Vid) -> Result<Bytes> {
        let version = store.version(vid)?;
        if let Some(CachedValue::Content(bytes)) = self.lookup(vid, Component::Content, version) {
            return Ok(bytes);
        }
        let bytes = store.content(vid)?.bytes()?;
        self.store_entry(
            vid,
            Component::Content,
            version,
            CachedValue::Content(bytes.clone()),
        );
        Ok(bytes)
    }

    /// [`ExpansionCache::group`], degrading gracefully: when the force
    /// fails with a [degradable] error (substrate down, breaker open) and
    /// a last-known-good entry exists — even one from before the view's
    /// last mutation — that entry is served instead. Returns the snapshot
    /// and whether it is stale.
    ///
    /// [degradable]: IdmError::is_degradable
    pub fn group_with_fallback(
        &self,
        store: &ViewStore,
        vid: Vid,
    ) -> Result<(GroupSnapshot, bool)> {
        match self.group(store, vid) {
            Ok(snapshot) => Ok((snapshot, false)),
            Err(err) if err.is_degradable() => match self.lookup_stale(vid, Component::Group) {
                Some(CachedValue::Group(data)) => {
                    self.stale_served.fetch_add(1, Ordering::Relaxed);
                    Ok((GroupSnapshot::Finite(data), true))
                }
                _ => Err(err),
            },
            Err(err) => Err(err),
        }
    }

    /// [`ExpansionCache::content`] with the same graceful degradation as
    /// [`ExpansionCache::group_with_fallback`].
    pub fn content_with_fallback(&self, store: &ViewStore, vid: Vid) -> Result<(Bytes, bool)> {
        match self.content(store, vid) {
            Ok(bytes) => Ok((bytes, false)),
            Err(err) if err.is_degradable() => match self.lookup_stale(vid, Component::Content) {
                Some(CachedValue::Content(bytes)) => {
                    self.stale_served.fetch_add(1, Ordering::Relaxed);
                    Ok((bytes, true))
                }
                _ => Err(err),
            },
            Err(err) => Err(err),
        }
    }

    fn lookup(&self, vid: Vid, component: Component, version: u64) -> Option<CachedValue> {
        let mut inner = self.inner.lock();
        let key = (vid, component);
        match inner.entries.get(&key) {
            Some(entry) if entry.version == version => {
                let old_tick = entry.tick;
                let value = entry.value.clone();
                let tick = inner.next_tick;
                inner.next_tick += 1;
                inner.order.remove(&old_tick);
                inner.order.insert(tick, key);
                inner.entries.get_mut(&key).expect("present").tick = tick;
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            Some(_) => {
                // Stale version: the view mutated since the entry was
                // made. The entry is retained as last-known-good for
                // degraded reads; a successful recompute replaces it (and
                // counts the eviction) in `store_entry`.
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// A last-known-good value for `key`, regardless of version. Only
    /// consulted after a recompute failed with a degradable error.
    fn lookup_stale(&self, vid: Vid, component: Component) -> Option<CachedValue> {
        let inner = self.inner.lock();
        inner
            .entries
            .get(&(vid, component))
            .map(|e| e.value.clone())
    }

    fn store_entry(&self, vid: Vid, component: Component, version: u64, value: CachedValue) {
        let mut inner = self.inner.lock();
        let tick = inner.next_tick;
        inner.next_tick += 1;
        let key = (vid, component);
        if let Some(old) = inner.entries.insert(
            key,
            Entry {
                version,
                tick,
                value,
            },
        ) {
            inner.order.remove(&old.tick);
            if old.version != version {
                // The retained-stale entry from a mutated view is now
                // superseded; this is where its eviction is accounted.
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.order.insert(tick, key);
        while inner.entries.len() > self.capacity {
            let (&lru_tick, &lru_key) = inner.order.iter().next().expect("order tracks entries");
            inner.order.remove(&lru_tick);
            inner.entries.remove(&lru_key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for ExpansionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpansionCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("counters", &self.counters())
            .finish()
    }
}

// ---- whole-result caching over plan fingerprints ---------------------

/// Live counter totals for a [`ResultCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to execute the plan.
    pub misses: u64,
    /// Entries dropped for capacity.
    pub evictions: u64,
    /// Entries dropped because the store changed underneath them.
    pub invalidations: u64,
}

struct ResultEntry {
    tick: u64,
    rows: crate::exec::ResultRows,
}

struct ResultCacheInner {
    entries: HashMap<u64, ResultEntry>,
    /// LRU order: tick → fingerprint (ticks are unique).
    order: BTreeMap<u64, u64>,
    next_tick: u64,
}

/// Bounded LRU over complete query results, keyed by the **normalized
/// plan fingerprint** ([`crate::plan::Plan::fingerprint`]).
///
/// Keying on the plan rather than the query string means two spellings
/// that plan identically (whitespace, conjunct order the optimizer
/// normalizes away) share one entry, and a strategy change — which
/// produces a different plan — correctly misses.
///
/// Invalidation is deliberately coarse: a query result can depend on any
/// view through ancestry or complements, so *any* store change event
/// clears the whole cache. The cache therefore only pays off on
/// read-heavy phases, which is why [`crate::exec::QueryProcessor`]
/// exposes it through the opt-in `execute_cached` path rather than
/// every `execute` call.
///
/// **Only complete results belong here.** A budget-truncated
/// (`stats.partial`) result is a sound *subset* of the true rows;
/// admitting one would serve it as the complete answer until the next
/// invalidating change event. The insert site in `execute_cached`
/// checks `partial` before keying.
pub struct ResultCache {
    inner: Mutex<ResultCacheInner>,
    capacity: usize,
    events: Receiver<ChangeEvent>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl ResultCache {
    /// A cache over `store` holding at most `capacity` results.
    pub fn new(store: &ViewStore, capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(ResultCacheInner {
                entries: HashMap::new(),
                order: BTreeMap::new(),
                next_tick: 0,
            }),
            capacity: capacity.max(1),
            events: store.subscribe(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter totals since construction.
    pub fn counters(&self) -> ResultCacheCounters {
        ResultCacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry if the store changed since the last check.
    fn drain_events(&self) {
        if self.events.try_iter().next().is_none() {
            return;
        }
        // Drain the rest of the backlog too.
        for _ in self.events.try_iter() {}
        let mut inner = self.inner.lock();
        let dropped = inner.entries.len() as u64;
        inner.entries.clear();
        inner.order.clear();
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
    }

    /// The cached rows for a plan fingerprint, if still valid.
    pub fn get(&self, fingerprint: u64) -> Option<crate::exec::ResultRows> {
        self.drain_events();
        let mut inner = self.inner.lock();
        match inner.entries.get(&fingerprint) {
            Some(entry) => {
                let old_tick = entry.tick;
                let rows = entry.rows.clone();
                let tick = inner.next_tick;
                inner.next_tick += 1;
                inner.order.remove(&old_tick);
                inner.order.insert(tick, fingerprint);
                inner.entries.get_mut(&fingerprint).expect("present").tick = tick;
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(rows)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores the rows for a plan fingerprint, evicting LRU entries past
    /// capacity.
    pub fn insert(&self, fingerprint: u64, rows: crate::exec::ResultRows) {
        self.drain_events();
        let mut inner = self.inner.lock();
        let tick = inner.next_tick;
        inner.next_tick += 1;
        if let Some(old) = inner
            .entries
            .insert(fingerprint, ResultEntry { tick, rows })
        {
            inner.order.remove(&old.tick);
        }
        inner.order.insert(tick, fingerprint);
        while inner.entries.len() > self.capacity {
            let (&lru_tick, &lru_key) = inner.order.iter().next().expect("order tracks entries");
            inner.order.remove(&lru_tick);
            inner.entries.remove(&lru_key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn counting_lazy_store() -> (Arc<ViewStore>, Vid, Arc<AtomicUsize>) {
        let store = Arc::new(ViewStore::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = Arc::clone(&calls);
        let provider = Arc::new(move |store: &ViewStore, _owner: Vid| {
            calls2.fetch_add(1, Ordering::SeqCst);
            Ok(GroupData::of_seq(vec![store.build("child").insert()]))
        });
        let vid = store.build("doc").group(Group::lazy(provider)).insert();
        (store, vid, calls)
    }

    #[test]
    fn group_hits_after_first_force() {
        let (store, vid, calls) = counting_lazy_store();
        let cache = ExpansionCache::new(&store, 16);
        let first = cache.group(&store, vid).unwrap().finite_members();
        let second = cache.group(&store, vid).unwrap().finite_members();
        assert_eq!(first, second);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn mutation_invalidates_by_version() {
        let store = Arc::new(ViewStore::new());
        let a = store.build("a").insert();
        let parent = store.build("p").children(vec![a]).insert();
        let cache = ExpansionCache::new(&store, 16);
        assert_eq!(
            cache.group(&store, parent).unwrap().finite_members(),
            vec![a]
        );
        let b = store.build("b").insert();
        store.add_group_member(parent, b, false).unwrap();
        // Without draining events, the version check alone must notice.
        let members = cache.group(&store, parent).unwrap().finite_members();
        assert_eq!(members.len(), 2);
        assert!(cache.counters().evictions >= 1);
    }

    #[test]
    fn drain_invalidations_hides_changed_views_but_retains_last_known_good() {
        let store = Arc::new(ViewStore::new());
        let vid = store.build("x").text("old").insert();
        let cache = ExpansionCache::new(&store, 16);
        assert_eq!(&cache.content(&store, vid).unwrap()[..], b"old");
        store.set_content(vid, Content::text("new")).unwrap();
        cache.drain_invalidations();
        // Mutated entries are retained (as degraded-read fallback) but
        // never served fresh: the version check forces a recompute.
        assert_eq!(cache.len(), 1);
        assert_eq!(&cache.content(&store, vid).unwrap()[..], b"new");
        assert!(cache.counters().evictions >= 1, "replacement accounted");
    }

    #[test]
    fn drain_invalidations_drops_removed_views() {
        let store = Arc::new(ViewStore::new());
        let vid = store.build("x").text("bytes").insert();
        let cache = ExpansionCache::new(&store, 16);
        cache.content(&store, vid).unwrap();
        store.remove(vid).unwrap();
        cache.drain_invalidations();
        assert!(cache.is_empty());
    }

    #[test]
    fn fallback_serves_stale_value_when_force_fails() {
        let store = Arc::new(ViewStore::new());
        let vid = store.build("msg").text("good").insert();
        let cache = ExpansionCache::new(&store, 16);

        let (bytes, stale) = cache.content_with_fallback(&store, vid).unwrap();
        assert_eq!((&bytes[..], stale), (&b"good"[..], false));

        // The view mutates (bumping its version) to content whose force
        // now fails: the last-known-good entry is served, flagged stale.
        let failing = Arc::new(|| Err(IdmError::transient("imap", "connection reset")));
        store.set_content(vid, Content::lazy(failing)).unwrap();
        let (bytes, stale) = cache.content_with_fallback(&store, vid).unwrap();
        assert_eq!((&bytes[..], stale), (&b"good"[..], true));
        assert_eq!(cache.counters().stale_served, 1);

        // A non-degradable error is never papered over.
        assert!(cache
            .content_with_fallback(&store, Vid::from_raw(999))
            .is_err());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let store = Arc::new(ViewStore::new());
        let vids: Vec<Vid> = (0..4)
            .map(|i| store.build(format!("v{i}")).insert())
            .collect();
        let cache = ExpansionCache::new(&store, 2);
        cache.group(&store, vids[0]).unwrap();
        cache.group(&store, vids[1]).unwrap();
        cache.group(&store, vids[0]).unwrap(); // touch 0: now 1 is LRU
        cache.group(&store, vids[2]).unwrap(); // evicts 1
        assert_eq!(cache.len(), 2);
        let before = cache.counters().hits;
        cache.group(&store, vids[0]).unwrap();
        assert_eq!(cache.counters().hits, before + 1, "0 survived");
        cache.group(&store, vids[1]).unwrap();
        assert_eq!(cache.counters().hits, before + 1, "1 was evicted");
    }

    #[test]
    fn content_memoizes_lazy_bytes() {
        let store = Arc::new(ViewStore::new());
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let provider = Arc::new(|| {
            CALLS.fetch_add(1, Ordering::SeqCst);
            Ok(Bytes::from_static(b"computed"))
        });
        let vid = store
            .build_unnamed()
            .content(Content::lazy(provider))
            .insert();
        let cache = ExpansionCache::new(&store, 4);
        assert_eq!(&cache.content(&store, vid).unwrap()[..], b"computed");
        assert_eq!(&cache.content(&store, vid).unwrap()[..], b"computed");
        assert_eq!(CALLS.load(Ordering::SeqCst), 1);
        assert_eq!(cache.counters().hits, 1);
    }

    #[test]
    fn unknown_vid_is_an_error_not_a_cache_entry() {
        let store = Arc::new(ViewStore::new());
        let cache = ExpansionCache::new(&store, 4);
        assert!(cache.group(&store, Vid::from_raw(99)).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn result_cache_round_trips_by_fingerprint() {
        use crate::exec::ResultRows;
        let store = Arc::new(ViewStore::new());
        let a = store.build("a").insert();
        let cache = ResultCache::new(&store, 4);
        assert_eq!(cache.get(7), None);
        cache.insert(7, ResultRows::Views(vec![a]));
        assert_eq!(cache.get(7), Some(ResultRows::Views(vec![a])));
        assert_eq!(cache.get(8), None, "different plan, different key");
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 2));
    }

    #[test]
    fn result_cache_clears_on_any_store_change() {
        use crate::exec::ResultRows;
        let store = Arc::new(ViewStore::new());
        let a = store.build("a").insert();
        let cache = ResultCache::new(&store, 4);
        cache.insert(1, ResultRows::Views(vec![a]));
        assert!(cache.get(1).is_some());
        // Any mutation — even of an unrelated view — invalidates: results
        // can depend on arbitrary views via ancestry and complements.
        store.build("unrelated").insert();
        assert_eq!(cache.get(1), None);
        assert!(cache.counters().invalidations >= 1);
    }

    #[test]
    fn result_cache_evicts_lru() {
        use crate::exec::ResultRows;
        let store = Arc::new(ViewStore::new());
        let cache = ResultCache::new(&store, 2);
        cache.insert(1, ResultRows::Views(vec![]));
        cache.insert(2, ResultRows::Views(vec![]));
        assert!(cache.get(1).is_some()); // touch 1: now 2 is LRU
        cache.insert(3, ResultRows::Views(vec![]));
        assert!(cache.get(2).is_none(), "2 was evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.counters().evictions, 1);
    }
}
