//! Bounded memoization of forced lazy components (Section 4.1).
//!
//! Forcing an intensional component — a [`idm_core::group::GroupProvider`]
//! turning a LaTeX file into a subgraph, a
//! [`idm_core::content::ContentProvider`] fetching remote bytes — is the
//! dominant cost of the paper's Figure 6 workload. The store's lazy cells
//! already compute each provider at most once, but every access still pays
//! a shard lock plus handle clones, and a mutated view must recompute.
//!
//! [`ExpansionCache`] sits between the query executor and the store: a
//! bounded LRU keyed by `(Vid, component)` whose entries carry the store's
//! per-view mutation version. An entry is valid only while the view's
//! version is unchanged; [`ChangeEvent`]s drained from a store subscription
//! evict entries eagerly, and the version check catches anything the event
//! channel has not delivered yet. Hit/miss/eviction counters are atomics so
//! parallel query workers can share one cache, and are surfaced per query
//! through [`crate::exec::ExecStats`].

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Receiver;
use idm_core::prelude::*;
use idm_core::store::{ChangeEvent, GroupSnapshot};
use parking_lot::Mutex;

/// Which component of a view an entry memoizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Component {
    Group,
    Content,
}

/// A memoized forced component.
#[derive(Clone)]
enum CachedValue {
    /// Forced group members (cheap `Arc` clone on hit).
    Group(Arc<GroupData>),
    /// Forced content bytes (cheap slice clone on hit).
    Content(Bytes),
}

struct Entry {
    version: u64,
    tick: u64,
    value: CachedValue,
}

struct CacheInner {
    entries: HashMap<(Vid, Component), Entry>,
    /// LRU order: tick → key. Ticks are unique, so the first entry is the
    /// least recently used.
    order: BTreeMap<u64, (Vid, Component)>,
    next_tick: u64,
}

/// Live counter totals for an [`ExpansionCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to force the component.
    pub misses: u64,
    /// Entries dropped for capacity, removal, or replaced after their
    /// view mutated.
    pub evictions: u64,
    /// Degraded reads answered from a stale last-known-good entry after
    /// a force failed.
    pub stale_served: u64,
}

/// Bounded LRU over forced lazy-component results, invalidated by view
/// version and by store change events.
pub struct ExpansionCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    events: Receiver<ChangeEvent>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stale_served: AtomicU64,
}

impl ExpansionCache {
    /// A cache over `store` holding at most `capacity` entries. The cache
    /// subscribes to the store's change events for eager invalidation.
    pub fn new(store: &ViewStore, capacity: usize) -> Self {
        ExpansionCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                order: BTreeMap::new(),
                next_tick: 0,
            }),
            capacity: capacity.max(1),
            events: store.subscribe(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_served: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter totals since construction.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_served: self.stale_served.load(Ordering::Relaxed),
        }
    }

    /// Drains pending change events, dropping entries for *removed*
    /// views. Called at query start.
    ///
    /// Entries of merely *mutated* views are deliberately retained: the
    /// per-entry version check already hides them from fresh reads, and
    /// keeping them preserves a last-known-good value for degraded reads
    /// when the recompute fails ([`ExpansionCache::group_with_fallback`]).
    pub fn drain_invalidations(&self) {
        let mut removed: Vec<Vid> = self
            .events
            .try_iter()
            .filter(|e| e.kind == ChangeKind::Removed)
            .map(|e| e.vid)
            .collect();
        if removed.is_empty() {
            return;
        }
        removed.sort_unstable();
        removed.dedup();
        let mut inner = self.inner.lock();
        for vid in removed {
            for component in [Component::Group, Component::Content] {
                if let Some(entry) = inner.entries.remove(&(vid, component)) {
                    inner.order.remove(&entry.tick);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// The forced group members of `vid`, memoized.
    ///
    /// On a miss this calls [`ViewStore::group`], which runs any
    /// [`idm_core::group::GroupProvider`] outside the store locks exactly
    /// as a direct access would — lazy semantics are unchanged, only
    /// repeat forcing is elided. Infinite groups are not cached.
    pub fn group(&self, store: &ViewStore, vid: Vid) -> Result<GroupSnapshot> {
        let version = store.version(vid)?;
        if let Some(CachedValue::Group(data)) = self.lookup(vid, Component::Group, version) {
            return Ok(GroupSnapshot::Finite(data));
        }
        let snapshot = store.group(vid)?;
        if let GroupSnapshot::Finite(data) = &snapshot {
            self.store_entry(
                vid,
                Component::Group,
                version,
                CachedValue::Group(Arc::clone(data)),
            );
        }
        Ok(snapshot)
    }

    /// The materialized content bytes of `vid`, memoized.
    ///
    /// On a miss this forces intensional content via
    /// [`idm_core::content::ContentProvider::compute`]; infinite content
    /// propagates the store's error and is never cached.
    pub fn content(&self, store: &ViewStore, vid: Vid) -> Result<Bytes> {
        let version = store.version(vid)?;
        if let Some(CachedValue::Content(bytes)) = self.lookup(vid, Component::Content, version) {
            return Ok(bytes);
        }
        let bytes = store.content(vid)?.bytes()?;
        self.store_entry(
            vid,
            Component::Content,
            version,
            CachedValue::Content(bytes.clone()),
        );
        Ok(bytes)
    }

    /// [`ExpansionCache::group`], degrading gracefully: when the force
    /// fails with a [degradable] error (substrate down, breaker open) and
    /// a last-known-good entry exists — even one from before the view's
    /// last mutation — that entry is served instead. Returns the snapshot
    /// and whether it is stale.
    ///
    /// [degradable]: IdmError::is_degradable
    pub fn group_with_fallback(
        &self,
        store: &ViewStore,
        vid: Vid,
    ) -> Result<(GroupSnapshot, bool)> {
        match self.group(store, vid) {
            Ok(snapshot) => Ok((snapshot, false)),
            Err(err) if err.is_degradable() => match self.lookup_stale(vid, Component::Group) {
                Some(CachedValue::Group(data)) => {
                    self.stale_served.fetch_add(1, Ordering::Relaxed);
                    Ok((GroupSnapshot::Finite(data), true))
                }
                _ => Err(err),
            },
            Err(err) => Err(err),
        }
    }

    /// [`ExpansionCache::content`] with the same graceful degradation as
    /// [`ExpansionCache::group_with_fallback`].
    pub fn content_with_fallback(&self, store: &ViewStore, vid: Vid) -> Result<(Bytes, bool)> {
        match self.content(store, vid) {
            Ok(bytes) => Ok((bytes, false)),
            Err(err) if err.is_degradable() => match self.lookup_stale(vid, Component::Content) {
                Some(CachedValue::Content(bytes)) => {
                    self.stale_served.fetch_add(1, Ordering::Relaxed);
                    Ok((bytes, true))
                }
                _ => Err(err),
            },
            Err(err) => Err(err),
        }
    }

    fn lookup(&self, vid: Vid, component: Component, version: u64) -> Option<CachedValue> {
        let mut inner = self.inner.lock();
        let key = (vid, component);
        match inner.entries.get(&key) {
            Some(entry) if entry.version == version => {
                let old_tick = entry.tick;
                let value = entry.value.clone();
                let tick = inner.next_tick;
                inner.next_tick += 1;
                inner.order.remove(&old_tick);
                inner.order.insert(tick, key);
                inner.entries.get_mut(&key).expect("present").tick = tick;
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            Some(_) => {
                // Stale version: the view mutated since the entry was
                // made. The entry is retained as last-known-good for
                // degraded reads; a successful recompute replaces it (and
                // counts the eviction) in `store_entry`.
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// A last-known-good value for `key`, regardless of version. Only
    /// consulted after a recompute failed with a degradable error.
    fn lookup_stale(&self, vid: Vid, component: Component) -> Option<CachedValue> {
        let inner = self.inner.lock();
        inner
            .entries
            .get(&(vid, component))
            .map(|e| e.value.clone())
    }

    fn store_entry(&self, vid: Vid, component: Component, version: u64, value: CachedValue) {
        let mut inner = self.inner.lock();
        let tick = inner.next_tick;
        inner.next_tick += 1;
        let key = (vid, component);
        if let Some(old) = inner.entries.insert(
            key,
            Entry {
                version,
                tick,
                value,
            },
        ) {
            inner.order.remove(&old.tick);
            if old.version != version {
                // The retained-stale entry from a mutated view is now
                // superseded; this is where its eviction is accounted.
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.order.insert(tick, key);
        while inner.entries.len() > self.capacity {
            let (&lru_tick, &lru_key) = inner.order.iter().next().expect("order tracks entries");
            inner.order.remove(&lru_tick);
            inner.entries.remove(&lru_key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for ExpansionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpansionCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("counters", &self.counters())
            .finish()
    }
}

// ---- whole-result caching over plan fingerprints ---------------------

/// Live counter totals for a [`ResultCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to execute the plan.
    pub misses: u64,
    /// Entries dropped for capacity.
    pub evictions: u64,
    /// Entries dropped because they could not be brought up to date
    /// (maintenance error, record-log overflow, or a stale admission).
    pub invalidations: u64,
    /// Maintenance passes that applied pending change records to an
    /// entry on lookup (the maintain-on-change hit path).
    pub maintained: u64,
}

/// Pending change records held beyond this many force a full clear: the
/// store churned so much since the last cached lookup that replaying
/// the backlog would cost more than re-executing.
const MAX_PENDING_RECORDS: usize = 8192;

struct ResultEntry {
    tick: u64,
    /// Absolute record-log offset this entry's state is current through.
    applied: u64,
    state: crate::delta::MaintainedPlan,
}

struct ResultCacheInner {
    entries: HashMap<u64, ResultEntry>,
    /// LRU order: tick → fingerprint (ticks are unique).
    order: BTreeMap<u64, u64>,
    next_tick: u64,
    /// Lazily-opened store record subscription: arming change-record
    /// fan-out costs every mutation a record clone, so it waits until
    /// the cached path is actually used.
    records: Option<Receiver<ChangeRecord>>,
    /// Shared log of drained records; `log_base` is the absolute offset
    /// of `log[0]`. Entries apply the suffix past their own `applied`
    /// offset on lookup, and the prefix below every entry's offset (and
    /// every outstanding execution mark) is trimmed.
    log: VecDeque<ChangeRecord>,
    log_base: u64,
    /// Offsets of in-flight executions (taken before executing, consumed
    /// by `admit`/`release`) — they pin the log so records committed
    /// mid-execution are still replayable onto the admitted entry.
    marks: Vec<u64>,
}

impl ResultCacheInner {
    fn log_end(&self) -> u64 {
        self.log_base + self.log.len() as u64
    }
}

/// Bounded LRU over **delta-maintained standing results**, keyed by the
/// normalized plan fingerprint ([`crate::plan::Plan::fingerprint`]).
///
/// Keying on the plan rather than the query string means two spellings
/// that plan identically (whitespace, conjunct order the optimizer
/// normalizes away) share one entry, and a strategy change — which
/// produces a different plan — correctly misses.
///
/// Where the first iteration of this cache cleared wholesale on any
/// store change, entries now carry a [`crate::delta::MaintainedPlan`]:
/// pending logical [`ChangeRecord`]s from the store are kept in a
/// shared log, and a lookup first applies the suffix the entry has not
/// seen ([`crate::exec::QueryProcessor::maintain`]) before serving the
/// rows. Application is version-gated by per-entry log offsets, and
/// convergent — replaying records an execution already observed is a
/// no-op — which is what makes the mark/admit protocol below safe
/// without blocking writers.
///
/// **Only complete results belong here.** A budget-truncated
/// (`stats.partial`) result is a sound *subset* of the true rows;
/// admitting one would serve (and maintain!) it as the complete answer
/// forever. The admit site in `run_cached` checks `partial` first.
pub struct ResultCache {
    inner: Mutex<ResultCacheInner>,
    capacity: usize,
    store: Arc<ViewStore>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    maintained: AtomicU64,
}

impl ResultCache {
    /// A cache over `store` holding at most `capacity` results.
    pub fn new(store: &Arc<ViewStore>, capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(ResultCacheInner {
                entries: HashMap::new(),
                order: BTreeMap::new(),
                next_tick: 0,
                records: None,
                log: VecDeque::new(),
                log_base: 0,
                marks: Vec::new(),
            }),
            capacity: capacity.max(1),
            store: Arc::clone(store),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            maintained: AtomicU64::new(0),
        }
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter totals since construction.
    pub fn counters(&self) -> ResultCacheCounters {
        ResultCacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            maintained: self.maintained.load(Ordering::Relaxed),
        }
    }

    fn ensure_subscribed(&self, inner: &mut ResultCacheInner) {
        if inner.records.is_none() {
            inner.records = Some(self.store.subscribe_records());
        }
    }

    /// Pulls pending store records into the shared log; on pathological
    /// backlog, clears every entry instead of replaying it.
    fn drain_records(&self, inner: &mut ResultCacheInner) {
        if let Some(rx) = &inner.records {
            while let Ok(record) = rx.try_recv() {
                inner.log.push_back(record);
            }
        }
        if inner.log.len() > MAX_PENDING_RECORDS {
            let dropped = inner.entries.len() as u64;
            inner.entries.clear();
            inner.order.clear();
            self.invalidations.fetch_add(dropped, Ordering::Relaxed);
            self.trim(inner);
        }
    }

    /// Drops the log prefix every entry (and every outstanding mark)
    /// has already applied.
    fn trim(&self, inner: &mut ResultCacheInner) {
        let floor = inner
            .entries
            .values()
            .map(|e| e.applied)
            .chain(inner.marks.iter().copied())
            .min();
        match floor {
            None => {
                inner.log_base = inner.log_end();
                inner.log.clear();
            }
            Some(floor) => {
                while inner.log_base < floor {
                    inner.log.pop_front();
                    inner.log_base += 1;
                }
            }
        }
    }

    /// The maintained rows for a plan fingerprint. Applies any pending
    /// change records to the entry first; a maintenance failure evicts
    /// the entry and reports a miss.
    pub(crate) fn lookup(
        &self,
        processor: &crate::exec::QueryProcessor,
        fingerprint: u64,
    ) -> Option<crate::exec::ResultRows> {
        let mut inner = self.inner.lock();
        self.ensure_subscribed(&mut inner);
        self.drain_records(&mut inner);
        let end = inner.log_end();
        let Some(entry) = inner.entries.get(&fingerprint) else {
            drop(inner);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if entry.applied < end {
            let from = (entry.applied - inner.log_base) as usize;
            let pending: Vec<ChangeRecord> = inner.log.iter().skip(from).cloned().collect();
            let entry = inner.entries.get_mut(&fingerprint).expect("present");
            match processor.maintain(&mut entry.state, &pending) {
                Ok(_) => {
                    entry.applied = end;
                    self.maintained.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    let tick = entry.tick;
                    inner.entries.remove(&fingerprint);
                    inner.order.remove(&tick);
                    self.trim(&mut inner);
                    drop(inner);
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
            self.trim(&mut inner);
        }
        let entry = inner.entries.get(&fingerprint).expect("present");
        let old_tick = entry.tick;
        let rows = entry.state.rows();
        let tick = inner.next_tick;
        inner.next_tick += 1;
        inner.order.remove(&old_tick);
        inner.order.insert(tick, fingerprint);
        inner.entries.get_mut(&fingerprint).expect("present").tick = tick;
        drop(inner);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(rows)
    }

    /// Registers an in-flight execution: returns the current record-log
    /// offset and pins the log at it until `admit` or `release`.
    pub(crate) fn mark(&self) -> u64 {
        let mut inner = self.inner.lock();
        self.ensure_subscribed(&mut inner);
        self.drain_records(&mut inner);
        let mark = inner.log_end();
        inner.marks.push(mark);
        mark
    }

    /// Abandons an execution mark (error, partial result, or
    /// unmaintainable plan shape).
    pub(crate) fn release(&self, mark: u64) {
        let mut inner = self.inner.lock();
        if let Some(pos) = inner.marks.iter().position(|&m| m == mark) {
            inner.marks.swap_remove(pos);
        }
        self.trim(&mut inner);
    }

    /// Admits a freshly-seeded standing result whose execution began at
    /// `mark`. Records logged since the mark are applied on the entry's
    /// next lookup; if the log was force-cleared past the mark, the
    /// entry cannot be caught up and is dropped instead.
    pub(crate) fn admit(&self, fingerprint: u64, state: crate::delta::MaintainedPlan, mark: u64) {
        let mut inner = self.inner.lock();
        if let Some(pos) = inner.marks.iter().position(|&m| m == mark) {
            inner.marks.swap_remove(pos);
        }
        if mark < inner.log_base {
            self.trim(&mut inner);
            drop(inner);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let tick = inner.next_tick;
        inner.next_tick += 1;
        if let Some(old) = inner.entries.insert(
            fingerprint,
            ResultEntry {
                tick,
                applied: mark,
                state,
            },
        ) {
            inner.order.remove(&old.tick);
        }
        inner.order.insert(tick, fingerprint);
        while inner.entries.len() > self.capacity {
            let (&lru_tick, &lru_key) = inner.order.iter().next().expect("order tracks entries");
            inner.order.remove(&lru_tick);
            inner.entries.remove(&lru_key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.trim(&mut inner);
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn counting_lazy_store() -> (Arc<ViewStore>, Vid, Arc<AtomicUsize>) {
        let store = Arc::new(ViewStore::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = Arc::clone(&calls);
        let provider = Arc::new(move |store: &ViewStore, _owner: Vid| {
            calls2.fetch_add(1, Ordering::SeqCst);
            Ok(GroupData::of_seq(vec![store.build("child").insert()]))
        });
        let vid = store.build("doc").group(Group::lazy(provider)).insert();
        (store, vid, calls)
    }

    #[test]
    fn group_hits_after_first_force() {
        let (store, vid, calls) = counting_lazy_store();
        let cache = ExpansionCache::new(&store, 16);
        let first = cache.group(&store, vid).unwrap().finite_members();
        let second = cache.group(&store, vid).unwrap().finite_members();
        assert_eq!(first, second);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn mutation_invalidates_by_version() {
        let store = Arc::new(ViewStore::new());
        let a = store.build("a").insert();
        let parent = store.build("p").children(vec![a]).insert();
        let cache = ExpansionCache::new(&store, 16);
        assert_eq!(
            cache.group(&store, parent).unwrap().finite_members(),
            vec![a]
        );
        let b = store.build("b").insert();
        store.add_group_member(parent, b, false).unwrap();
        // Without draining events, the version check alone must notice.
        let members = cache.group(&store, parent).unwrap().finite_members();
        assert_eq!(members.len(), 2);
        assert!(cache.counters().evictions >= 1);
    }

    #[test]
    fn drain_invalidations_hides_changed_views_but_retains_last_known_good() {
        let store = Arc::new(ViewStore::new());
        let vid = store.build("x").text("old").insert();
        let cache = ExpansionCache::new(&store, 16);
        assert_eq!(&cache.content(&store, vid).unwrap()[..], b"old");
        store.set_content(vid, Content::text("new")).unwrap();
        cache.drain_invalidations();
        // Mutated entries are retained (as degraded-read fallback) but
        // never served fresh: the version check forces a recompute.
        assert_eq!(cache.len(), 1);
        assert_eq!(&cache.content(&store, vid).unwrap()[..], b"new");
        assert!(cache.counters().evictions >= 1, "replacement accounted");
    }

    #[test]
    fn drain_invalidations_drops_removed_views() {
        let store = Arc::new(ViewStore::new());
        let vid = store.build("x").text("bytes").insert();
        let cache = ExpansionCache::new(&store, 16);
        cache.content(&store, vid).unwrap();
        store.remove(vid).unwrap();
        cache.drain_invalidations();
        assert!(cache.is_empty());
    }

    #[test]
    fn fallback_serves_stale_value_when_force_fails() {
        let store = Arc::new(ViewStore::new());
        let vid = store.build("msg").text("good").insert();
        let cache = ExpansionCache::new(&store, 16);

        let (bytes, stale) = cache.content_with_fallback(&store, vid).unwrap();
        assert_eq!((&bytes[..], stale), (&b"good"[..], false));

        // The view mutates (bumping its version) to content whose force
        // now fails: the last-known-good entry is served, flagged stale.
        let failing = Arc::new(|| Err(IdmError::transient("imap", "connection reset")));
        store.set_content(vid, Content::lazy(failing)).unwrap();
        let (bytes, stale) = cache.content_with_fallback(&store, vid).unwrap();
        assert_eq!((&bytes[..], stale), (&b"good"[..], true));
        assert_eq!(cache.counters().stale_served, 1);

        // A non-degradable error is never papered over.
        assert!(cache
            .content_with_fallback(&store, Vid::from_raw(999))
            .is_err());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let store = Arc::new(ViewStore::new());
        let vids: Vec<Vid> = (0..4)
            .map(|i| store.build(format!("v{i}")).insert())
            .collect();
        let cache = ExpansionCache::new(&store, 2);
        cache.group(&store, vids[0]).unwrap();
        cache.group(&store, vids[1]).unwrap();
        cache.group(&store, vids[0]).unwrap(); // touch 0: now 1 is LRU
        cache.group(&store, vids[2]).unwrap(); // evicts 1
        assert_eq!(cache.len(), 2);
        let before = cache.counters().hits;
        cache.group(&store, vids[0]).unwrap();
        assert_eq!(cache.counters().hits, before + 1, "0 survived");
        cache.group(&store, vids[1]).unwrap();
        assert_eq!(cache.counters().hits, before + 1, "1 was evicted");
    }

    #[test]
    fn content_memoizes_lazy_bytes() {
        let store = Arc::new(ViewStore::new());
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let provider = Arc::new(|| {
            CALLS.fetch_add(1, Ordering::SeqCst);
            Ok(Bytes::from_static(b"computed"))
        });
        let vid = store
            .build_unnamed()
            .content(Content::lazy(provider))
            .insert();
        let cache = ExpansionCache::new(&store, 4);
        assert_eq!(&cache.content(&store, vid).unwrap()[..], b"computed");
        assert_eq!(&cache.content(&store, vid).unwrap()[..], b"computed");
        assert_eq!(CALLS.load(Ordering::SeqCst), 1);
        assert_eq!(cache.counters().hits, 1);
    }

    #[test]
    fn unknown_vid_is_an_error_not_a_cache_entry() {
        let store = Arc::new(ViewStore::new());
        let cache = ExpansionCache::new(&store, 4);
        assert!(cache.group(&store, Vid::from_raw(99)).is_err());
        assert!(cache.is_empty());
    }

    /// An indexed store + processor for result-cache tests.
    fn query_fixture() -> (
        Arc<ViewStore>,
        Arc<idm_index::IndexBundle>,
        crate::exec::QueryProcessor,
    ) {
        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(idm_index::IndexBundle::new());
        let draft = store.build("draft.tex").text("a dataspace vision").insert();
        let notes = store.build("notes.txt").text("meeting notes").insert();
        store.build("papers").children(vec![draft, notes]).insert();
        for vid in store.vids() {
            indexes.index_view(&store, vid, "filesystem").unwrap();
        }
        let p = crate::exec::QueryProcessor::new(Arc::clone(&store), Arc::clone(&indexes));
        (store, indexes, p)
    }

    #[test]
    fn result_cache_round_trips_by_fingerprint() {
        use crate::budget::QueryBudget;
        let (_store, _indexes, p) = query_fixture();
        let plan = p.plan_iql(r#""dataspace""#).unwrap();
        let first = p.run_cached(&plan, QueryBudget::none()).unwrap();
        assert_eq!(first.stats.result_cache_hits, 0);
        let second = p.run_cached(&plan, QueryBudget::none()).unwrap();
        assert_eq!(second.stats.result_cache_hits, 1);
        assert_eq!(second.rows, first.rows);
        let other = p.plan_iql(r#""meeting""#).unwrap();
        let miss = p.run_cached(&other, QueryBudget::none()).unwrap();
        assert_eq!(
            miss.stats.result_cache_hits, 0,
            "different plan, different key"
        );
        let c = p.result_cache().counters();
        assert!(c.hits >= 1 && c.misses >= 2);
    }

    #[test]
    fn result_cache_maintains_entries_through_store_changes() {
        use crate::budget::QueryBudget;
        let (store, indexes, p) = query_fixture();
        let plan = p.plan_iql(r#""dataspace""#).unwrap();
        let first = p.run_cached(&plan, QueryBudget::none()).unwrap();
        assert_eq!(first.rows.len(), 1);
        // A store change no longer clears the entry: the pending change
        // records are applied to the standing result on the next lookup.
        let vid = store.build("more.tex").text("dataspace redux").insert();
        indexes.index_view(&store, vid, "filesystem").unwrap();
        let second = p.run_cached(&plan, QueryBudget::none()).unwrap();
        assert_eq!(
            second.stats.result_cache_hits, 1,
            "maintained in place, not recomputed"
        );
        assert!(second.rows.views().contains(&vid));
        assert_eq!(second.rows, p.execute_plan(&plan).unwrap().rows);
        let c = p.result_cache().counters();
        assert!(c.maintained >= 1);
        assert_eq!(c.invalidations, 0);
    }

    #[test]
    fn result_cache_evicts_lru() {
        use crate::budget::QueryBudget;
        use crate::plan::Plan;
        let (store, _indexes, p) = query_fixture();
        let cache = ResultCache::new(&store, 2);
        let plans: Vec<Plan> = [r#""dataspace""#, r#""meeting""#, r#""notes""#]
            .iter()
            .map(|q| p.plan_iql(q).unwrap())
            .collect();
        let seed = |plan: &Plan| {
            let mark = cache.mark();
            let (_, standing) = p.execute_standing(plan, QueryBudget::none()).unwrap();
            cache.admit(plan.fingerprint(), standing.unwrap(), mark);
        };
        seed(&plans[0]);
        seed(&plans[1]);
        // Touch 0: now 1 is LRU.
        assert!(cache.lookup(&p, plans[0].fingerprint()).is_some());
        seed(&plans[2]);
        assert_eq!(cache.len(), 2);
        assert!(
            cache.lookup(&p, plans[1].fingerprint()).is_none(),
            "1 was evicted"
        );
        assert!(cache.lookup(&p, plans[0].fingerprint()).is_some());
        assert_eq!(cache.counters().evictions, 1);
    }
}
