//! Per-query resource governance: budgets, cooperative cancellation and
//! consumption accounting.
//!
//! The nested model makes plan-time cost prediction unreliable — a `//`
//! step's fan-out is whatever the lazily-expanded sources produce — so
//! bounds are enforced at *run time*: a [`QueryBudget`] rides in
//! [`crate::ExecOptions`], the executor materializes it into one
//! [`BudgetTracker`] per query, and every physical operator (and every
//! parallel worker, via the shared [`CancelToken`]) polls the tracker at
//! cooperative checkpoints. Exceeding any limit aborts within one
//! operator batch:
//!
//! - **strict** (the default): the checkpoint returns
//!   [`IdmError::ResourceExhausted`], which unwinds the plan walker —
//!   scoped threads join on the way out, shard locks release, caches
//!   stay consistent.
//! - **partial** ([`QueryBudget::partial`]): the checkpoint flips to
//!   [`Tick::Truncate`] forever after; operators stop consuming input
//!   but still produce *sound subsets* of their true result, and the
//!   walker still visits every plan node (keeping the plan/exec
//!   operator-count invariant), so the caller gets the rows found so
//!   far with `stats.partial == true`.
//!
//! An unbudgeted query constructs a disabled tracker — every checkpoint
//! is then a single untaken branch and no counter is touched, so
//! ungoverned execution (including `ExecStats` equality across reruns)
//! is bit-identical to what it was before this layer existed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use idm_core::prelude::*;
use parking_lot::Mutex;

/// Resource limits one query may consume. All limits are optional; the
/// default ([`QueryBudget::none`]) is unlimited and adds no per-item
/// work to execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryBudget {
    /// Wall-clock deadline, measured from the start of `execute_plan`.
    pub deadline: Option<Duration>,
    /// Accounted memory in bytes (result rows, expansion frontiers,
    /// join keys — an accounting of the executor's own intermediates,
    /// not an allocator measurement).
    pub max_bytes: Option<u64>,
    /// Cap on rows produced across all operators.
    pub max_rows: Option<u64>,
    /// Cap on graph nodes expanded (`//` step frontiers).
    pub max_nodes: Option<u64>,
    /// Trip cancellation at the Nth cooperative checkpoint — the
    /// cancellation-soundness tests' injection point (deterministic:
    /// checkpoint counting does not depend on timing).
    pub cancel_after_checks: Option<u64>,
    /// Opt into graceful degradation: return the sound subset of rows
    /// produced so far (`stats.partial == true`) instead of
    /// [`IdmError::ResourceExhausted`].
    pub partial: bool,
}

impl QueryBudget {
    /// No limits (the default): execution is bit-identical to an
    /// ungoverned run.
    pub fn none() -> Self {
        QueryBudget::default()
    }

    /// A wall-clock deadline, strict by default.
    pub fn with_deadline(deadline: Duration) -> Self {
        QueryBudget {
            deadline: Some(deadline),
            ..QueryBudget::default()
        }
    }

    /// Switches this budget to partial-result mode.
    pub fn degrade_to_partial(mut self) -> Self {
        self.partial = true;
        self
    }

    /// Whether any limit is set (a probe-only budget counts: it tracks
    /// consumption without limiting).
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some()
            || self.max_bytes.is_some()
            || self.max_rows.is_some()
            || self.max_nodes.is_some()
            || self.cancel_after_checks.is_some()
    }

    /// A budget that never trips but keeps the tracker enabled, so a
    /// run reports its checkpoint and consumption counts — used to
    /// enumerate cancellation points before injecting at each one.
    pub fn probe() -> Self {
        QueryBudget {
            cancel_after_checks: Some(u64::MAX),
            ..QueryBudget::default()
        }
    }
}

/// What a cooperative checkpoint tells the operator to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tick {
    /// Within budget: keep going.
    Continue,
    /// A limit tripped under a partial-mode budget: stop consuming
    /// input and return the sound subset accumulated so far.
    Truncate,
}

/// Deterministic consumption counters of one governed query. Wall-clock
/// time is deliberately absent — it lives in the error/deadline path —
/// so the struct stays `Eq` and bit-identical across reruns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetConsumption {
    /// Rows charged by operators.
    pub rows: u64,
    /// Graph nodes charged by expansions.
    pub nodes: u64,
    /// Accounted intermediate bytes.
    pub bytes: u64,
    /// Cooperative checkpoints passed.
    pub checkpoints: u64,
}

/// The tripped-limit record: kind, consumed, limit, phase.
type Exhaustion = (BudgetKind, u64, u64, &'static str);

/// Per-query runtime state of a [`QueryBudget`]: the deadline instant,
/// the shared cancel token, and atomic consumption counters that
/// parallel workers update lock-free.
#[derive(Debug)]
pub struct BudgetTracker {
    enabled: bool,
    partial: bool,
    budget: QueryBudget,
    started: Instant,
    deadline_at: Option<Instant>,
    cancel: CancelToken,
    rows: AtomicU64,
    nodes: AtomicU64,
    bytes: AtomicU64,
    checks: AtomicU64,
    exhausted: Mutex<Option<Exhaustion>>,
}

impl BudgetTracker {
    /// A tracker for one query under `budget`, starting its deadline
    /// clock now. An unlimited budget yields a disabled tracker whose
    /// checkpoints are single untaken branches.
    pub fn start(budget: QueryBudget) -> Self {
        let started = Instant::now();
        BudgetTracker {
            enabled: budget.is_limited(),
            partial: budget.partial,
            budget,
            started,
            deadline_at: budget.deadline.map(|d| started + d),
            cancel: CancelToken::new(),
            rows: AtomicU64::new(0),
            nodes: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            checks: AtomicU64::new(0),
            exhausted: Mutex::new(None),
        }
    }

    /// Whether any limit is armed. When false, checkpoints are no-ops.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The shared cancellation flag — hand it to external observers or
    /// sibling workers; raising it trips the next checkpoint with
    /// [`BudgetKind::Cancelled`].
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Whether a limit has already tripped. Operators consult this to
    /// decide between returning a subset and skipping unsound work —
    /// the complement of a truncated input is a *superset*, so
    /// `Complement` returns empty once the budget has tripped.
    pub fn tripped(&self) -> bool {
        self.enabled && self.cancel.is_cancelled()
    }

    /// Which limit tripped first, if any.
    pub fn exhaustion(&self) -> Option<BudgetKind> {
        self.exhausted.lock().map(|(kind, ..)| kind)
    }

    /// The consumption so far (deterministic counters only).
    pub fn consumption(&self) -> BudgetConsumption {
        BudgetConsumption {
            rows: self.rows.load(Ordering::Relaxed),
            nodes: self.nodes.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            checkpoints: self.checks.load(Ordering::Relaxed),
        }
    }

    /// Time since the tracker started — the query's elapsed wall clock.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Records the first exhaustion and raises the cancel flag. In
    /// strict mode the caller gets the structured error; in partial
    /// mode it gets [`Tick::Truncate`] (forever after).
    fn trip(
        &self,
        kind: BudgetKind,
        consumed: u64,
        limit: u64,
        phase: &'static str,
    ) -> Result<Tick> {
        {
            let mut slot = self.exhausted.lock();
            if slot.is_none() {
                *slot = Some((kind, consumed, limit, phase));
            }
        }
        self.cancel.cancel();
        if self.partial {
            Ok(Tick::Truncate)
        } else {
            let (kind, consumed, limit, phase) = self
                .exhausted
                .lock()
                .unwrap_or((kind, consumed, limit, phase));
            Err(IdmError::resource_exhausted(kind, consumed, limit, phase))
        }
    }

    /// A cooperative checkpoint: counts itself, then checks the cancel
    /// flag, the injected cancel-at-check limit, and the wall-clock
    /// deadline. Called at every operator entry and inside every
    /// parallel worker's batch loop; with no budget armed it is one
    /// untaken branch.
    #[inline]
    pub fn checkpoint(&self, phase: &'static str) -> Result<Tick> {
        if !self.enabled {
            return Ok(Tick::Continue);
        }
        let checks = self.checks.fetch_add(1, Ordering::Relaxed) + 1;
        if self.cancel.is_cancelled() {
            // Already tripped (by this thread or a sibling worker):
            // re-raise the first exhaustion rather than minting a new
            // one, so the caller sees which limit actually fired.
            if self.partial {
                return Ok(Tick::Truncate);
            }
            let (kind, consumed, limit, phase) =
                self.exhausted
                    .lock()
                    .unwrap_or((BudgetKind::Cancelled, checks, checks, phase));
            return Err(IdmError::resource_exhausted(kind, consumed, limit, phase));
        }
        if let Some(limit) = self.budget.cancel_after_checks {
            if checks >= limit {
                return self.trip(BudgetKind::Cancelled, checks, limit, phase);
            }
        }
        if let Some(deadline_at) = self.deadline_at {
            if Instant::now() >= deadline_at {
                let limit = self.budget.deadline.unwrap_or_default().as_millis() as u64;
                let consumed = self.started.elapsed().as_millis() as u64;
                return self.trip(BudgetKind::WallClock, consumed.max(limit), limit, phase);
            }
        }
        Ok(Tick::Continue)
    }

    /// Charges `n` produced rows (plus their accounted bytes) against
    /// the budget, tripping on the row or byte limit.
    pub fn charge_rows(&self, n: usize, phase: &'static str) -> Result<Tick> {
        if !self.enabled {
            return Ok(Tick::Continue);
        }
        let rows = self.rows.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
        if let Some(limit) = self.budget.max_rows {
            if rows > limit {
                return self.trip(BudgetKind::Rows, rows, limit, phase);
            }
        }
        // A row of intermediate state is one Vid (or one of a pair).
        self.charge_bytes(n * std::mem::size_of::<Vid>(), phase)
    }

    /// Charges `n` expanded graph nodes, tripping on the node limit.
    pub fn charge_nodes(&self, n: usize, phase: &'static str) -> Result<Tick> {
        if !self.enabled {
            return Ok(Tick::Continue);
        }
        let nodes = self.nodes.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
        if let Some(limit) = self.budget.max_nodes {
            if nodes > limit {
                return self.trip(BudgetKind::Nodes, nodes, limit, phase);
            }
        }
        self.charge_bytes(n * std::mem::size_of::<Vid>(), phase)
    }

    /// Charges `n` accounted bytes of intermediate state, tripping on
    /// the memory limit.
    pub fn charge_bytes(&self, n: usize, phase: &'static str) -> Result<Tick> {
        if !self.enabled {
            return Ok(Tick::Continue);
        }
        let bytes = self.bytes.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
        if let Some(limit) = self.budget.max_bytes {
            if bytes > limit {
                return self.trip(BudgetKind::MemoryBytes, bytes, limit, phase);
            }
        }
        Ok(Tick::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let tracker = BudgetTracker::start(QueryBudget::none());
        assert!(!tracker.is_enabled());
        for _ in 0..1000 {
            assert_eq!(tracker.checkpoint("op"), Ok(Tick::Continue));
            assert_eq!(tracker.charge_rows(1_000_000, "op"), Ok(Tick::Continue));
        }
        assert_eq!(tracker.consumption(), BudgetConsumption::default());
        assert!(!tracker.tripped());
    }

    #[test]
    fn row_limit_trips_strict() {
        let tracker = BudgetTracker::start(QueryBudget {
            max_rows: Some(10),
            ..QueryBudget::default()
        });
        assert_eq!(tracker.charge_rows(10, "scan"), Ok(Tick::Continue));
        let err = tracker.charge_rows(1, "scan").unwrap_err();
        assert_eq!(err.budget_kind(), Some(BudgetKind::Rows));
        assert!(tracker.tripped());
        // Subsequent checkpoints re-raise the first exhaustion.
        let err = tracker.checkpoint("later").unwrap_err();
        assert_eq!(err.budget_kind(), Some(BudgetKind::Rows));
    }

    #[test]
    fn partial_mode_truncates_instead_of_erroring() {
        let tracker = BudgetTracker::start(QueryBudget {
            max_nodes: Some(5),
            partial: true,
            ..QueryBudget::default()
        });
        assert_eq!(tracker.charge_nodes(5, "relate"), Ok(Tick::Continue));
        assert_eq!(tracker.charge_nodes(1, "relate"), Ok(Tick::Truncate));
        assert_eq!(tracker.checkpoint("relate"), Ok(Tick::Truncate));
        assert_eq!(tracker.exhaustion(), Some(BudgetKind::Nodes));
    }

    #[test]
    fn memory_budget_accounts_bytes() {
        let tracker = BudgetTracker::start(QueryBudget {
            max_bytes: Some(64),
            partial: true,
            ..QueryBudget::default()
        });
        // 8 rows × 8 bytes = 64 — at the limit, not over.
        assert_eq!(tracker.charge_rows(8, "scan"), Ok(Tick::Continue));
        assert_eq!(tracker.charge_rows(1, "scan"), Ok(Tick::Truncate));
        assert_eq!(tracker.exhaustion(), Some(BudgetKind::MemoryBytes));
        assert!(tracker.consumption().bytes > 64);
    }

    #[test]
    fn deadline_trips_at_a_checkpoint() {
        let tracker = BudgetTracker::start(QueryBudget::with_deadline(Duration::ZERO));
        let err = tracker.checkpoint("scan").unwrap_err();
        assert_eq!(err.budget_kind(), Some(BudgetKind::WallClock));
        assert!(tracker.cancel_token().is_cancelled());
    }

    #[test]
    fn injected_cancellation_trips_at_the_nth_checkpoint() {
        let tracker = BudgetTracker::start(QueryBudget {
            cancel_after_checks: Some(3),
            partial: true,
            ..QueryBudget::default()
        });
        assert_eq!(tracker.checkpoint("a"), Ok(Tick::Continue));
        assert_eq!(tracker.checkpoint("b"), Ok(Tick::Continue));
        assert_eq!(tracker.checkpoint("c"), Ok(Tick::Truncate));
        assert_eq!(tracker.exhaustion(), Some(BudgetKind::Cancelled));
        assert_eq!(tracker.consumption().checkpoints, 3);
    }

    #[test]
    fn external_cancel_token_trips_checkpoints() {
        let tracker = BudgetTracker::start(QueryBudget::probe());
        assert_eq!(tracker.checkpoint("a"), Ok(Tick::Continue));
        tracker.cancel_token().cancel();
        assert!(tracker.checkpoint("b").is_err(), "strict probe errors");
    }

    #[test]
    fn probe_counts_checkpoints_without_tripping() {
        let tracker = BudgetTracker::start(QueryBudget::probe());
        assert!(tracker.is_enabled());
        for _ in 0..100 {
            assert_eq!(tracker.checkpoint("op"), Ok(Tick::Continue));
        }
        assert_eq!(tracker.consumption().checkpoints, 100);
    }
}
