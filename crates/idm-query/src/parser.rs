//! The iQL parser: tokens → [`Query`] AST.

use idm_core::prelude::{IdmError, Result, Value};
use idm_index::name::NamePattern;
use idm_index::tuple::CompareOp;

use crate::ast::*;
use crate::lexer::{lex, Token};

/// Parses an iQL query string.
pub fn parse(input: &str) -> Result<Query> {
    let tokens = lex(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let query = parser.parse_query()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.error("trailing tokens after query"));
    }
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

fn is_keyword(token: &Token, keyword: &str) -> bool {
    matches!(token, Token::Word(w) if w.eq_ignore_ascii_case(keyword))
}

impl Parser {
    fn error(&self, message: impl Into<String>) -> IdmError {
        IdmError::Parse {
            detail: format!(
                "iql: {} (at token {} of {})",
                message.into(),
                self.pos,
                self.tokens.len()
            ),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<()> {
        if self.peek() == Some(token) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn parse_query(&mut self) -> Result<Query> {
        match self.peek() {
            Some(t) if is_keyword(t, "union") && self.peek2() == Some(&Token::LParen) => {
                self.parse_union()
            }
            Some(t) if is_keyword(t, "join") && self.peek2() == Some(&Token::LParen) => {
                self.parse_join()
            }
            Some(Token::DoubleSlash | Token::Slash) => Ok(Query::Path(self.parse_path()?)),
            Some(Token::LBracket) => {
                self.next();
                let pred = self.parse_pred_or()?;
                self.expect(&Token::RBracket, "']'")?;
                Ok(Query::Filter(pred))
            }
            Some(Token::Phrase(_) | Token::Word(_)) => Ok(Query::Filter(self.parse_pred_or()?)),
            _ => Err(self.error("expected a query")),
        }
    }

    fn parse_union(&mut self) -> Result<Query> {
        self.next(); // union
        self.expect(&Token::LParen, "'(' after union")?;
        let mut members = vec![self.parse_query_until_comma_or_rparen()?];
        while self.peek() == Some(&Token::Comma) {
            self.next();
            members.push(self.parse_query_until_comma_or_rparen()?);
        }
        self.expect(&Token::RParen, "')' closing union")?;
        if members.len() < 2 {
            return Err(self.error("union needs at least two members"));
        }
        Ok(Query::Union(members))
    }

    /// Parses a nested query argument; stops at ',' or ')' at depth 0.
    fn parse_query_until_comma_or_rparen(&mut self) -> Result<Query> {
        // Sub-queries are themselves well-formed; recursive descent
        // naturally stops before ',' / ')'.
        self.parse_query_inner()
    }

    fn parse_query_inner(&mut self) -> Result<Query> {
        match self.peek() {
            Some(t) if is_keyword(t, "union") && self.peek2() == Some(&Token::LParen) => {
                self.parse_union()
            }
            Some(t) if is_keyword(t, "join") && self.peek2() == Some(&Token::LParen) => {
                self.parse_join()
            }
            Some(Token::DoubleSlash | Token::Slash) => Ok(Query::Path(self.parse_path()?)),
            Some(Token::LBracket) => {
                self.next();
                let pred = self.parse_pred_or()?;
                self.expect(&Token::RBracket, "']'")?;
                Ok(Query::Filter(pred))
            }
            Some(Token::Phrase(_)) => Ok(Query::Filter(self.parse_pred_or()?)),
            _ => Err(self.error("expected a subquery")),
        }
    }

    fn parse_join(&mut self) -> Result<Query> {
        self.next(); // join
        self.expect(&Token::LParen, "'(' after join")?;
        let left = self.parse_query_inner()?;
        let left_binding = self.parse_as_binding()?;
        self.expect(&Token::Comma, "',' after first join input")?;
        let right = self.parse_query_inner()?;
        let right_binding = self.parse_as_binding()?;
        self.expect(&Token::Comma, "',' after second join input")?;
        let left_ref = self.parse_field_ref()?;
        self.expect(&Token::Eq, "'=' in join condition")?;
        let right_ref = self.parse_field_ref()?;
        self.expect(&Token::RParen, "')' closing join")?;
        Ok(Query::Join(Box::new(JoinExpr {
            left,
            left_binding,
            right,
            right_binding,
            condition: JoinCondition {
                left: left_ref,
                right: right_ref,
            },
        })))
    }

    fn parse_as_binding(&mut self) -> Result<String> {
        match self.next() {
            Some(ref t) if is_keyword(t, "as") => {}
            _ => return Err(self.error("expected 'as <binding>'")),
        }
        match self.next() {
            Some(Token::Word(w)) => Ok(w),
            _ => Err(self.error("expected a binding name after 'as'")),
        }
    }

    fn parse_field_ref(&mut self) -> Result<FieldRef> {
        let word = match self.next() {
            Some(Token::Word(w)) => w,
            _ => return Err(self.error("expected a field reference like A.name")),
        };
        let mut parts = word.split('.');
        let binding = parts
            .next()
            .filter(|b| !b.is_empty())
            .ok_or_else(|| self.error("field reference misses a binding"))?
            .to_owned();
        let field = match parts.next() {
            Some("name") => Field::Name,
            Some("class") => Field::Class,
            Some("tuple") => {
                let attr: Vec<&str> = parts.collect();
                if attr.is_empty() {
                    return Err(self.error("tuple field reference misses an attribute"));
                }
                Field::TupleAttr(attr.join("."))
            }
            Some(other) => {
                return Err(self.error(format!(
                    "unknown field '{other}' (expected name, class or tuple.<attr>)"
                )))
            }
            None => return Err(self.error("field reference misses a field")),
        };
        Ok(FieldRef { binding, field })
    }

    fn parse_path(&mut self) -> Result<PathExpr> {
        let mut steps = Vec::new();
        loop {
            let axis = match self.peek() {
                Some(Token::DoubleSlash) => Axis::Descendant,
                Some(Token::Slash) => Axis::Child,
                _ => break,
            };
            self.next();
            // Optional name pattern (absent before a bare predicate:
            // `//OLAP//[class="figure"]`).
            let name = match self.peek() {
                Some(t @ Token::Word(w)) if !is_keyword(t, "and") && !is_keyword(t, "or") => {
                    let w = w.clone();
                    self.next();
                    NamePattern::new(w)
                }
                _ => NamePattern::new("*"),
            };
            let pred = if self.peek() == Some(&Token::LBracket) {
                self.next();
                let pred = self.parse_pred_or()?;
                self.expect(&Token::RBracket, "']' closing step predicate")?;
                Some(pred)
            } else {
                None
            };
            steps.push(Step { axis, name, pred });
        }
        if steps.is_empty() {
            return Err(self.error("empty path expression"));
        }
        Ok(PathExpr { steps })
    }

    fn parse_pred_or(&mut self) -> Result<Pred> {
        let mut members = vec![self.parse_pred_and()?];
        while self.peek().is_some_and(|t| is_keyword(t, "or")) {
            self.next();
            members.push(self.parse_pred_and()?);
        }
        Ok(if members.len() == 1 {
            members.pop().expect("non-empty")
        } else {
            Pred::Or(members)
        })
    }

    fn parse_pred_and(&mut self) -> Result<Pred> {
        let mut members = vec![self.parse_pred_atom()?];
        while self.peek().is_some_and(|t| is_keyword(t, "and")) {
            self.next();
            members.push(self.parse_pred_atom()?);
        }
        Ok(if members.len() == 1 {
            members.pop().expect("non-empty")
        } else {
            Pred::And(members)
        })
    }

    fn parse_pred_atom(&mut self) -> Result<Pred> {
        match self.peek() {
            Some(Token::Phrase(p)) => {
                let p = p.clone();
                self.next();
                Ok(Pred::Phrase(p))
            }
            Some(Token::LParen) => {
                self.next();
                let pred = self.parse_pred_or()?;
                self.expect(&Token::RParen, "')' closing group")?;
                Ok(pred)
            }
            Some(t) if is_keyword(t, "not") => {
                self.next();
                Ok(Pred::Not(Box::new(self.parse_pred_atom()?)))
            }
            Some(Token::Word(attr)) => {
                let attr = attr.clone();
                self.next();
                let op = match self.next() {
                    Some(Token::Eq) => CompareOp::Eq,
                    Some(Token::Ne) => CompareOp::Ne,
                    Some(Token::Lt) => CompareOp::Lt,
                    Some(Token::Le) => CompareOp::Le,
                    Some(Token::Gt) => CompareOp::Gt,
                    Some(Token::Ge) => CompareOp::Ge,
                    _ => return Err(self.error(format!("expected an operator after '{attr}'"))),
                };
                let value = self.parse_literal()?;
                if attr.eq_ignore_ascii_case("class") {
                    // class="latex_section" is a class-conformance test.
                    return match (op, value) {
                        (CompareOp::Eq, Literal::Value(Value::Text(class))) => {
                            Ok(Pred::Class(class))
                        }
                        (CompareOp::Ne, Literal::Value(Value::Text(class))) => {
                            Ok(Pred::Not(Box::new(Pred::Class(class))))
                        }
                        _ => Err(self.error("class predicates support = and != with a string")),
                    };
                }
                Ok(Pred::Cmp { attr, op, value })
            }
            _ => Err(self.error("expected a predicate")),
        }
    }

    fn parse_literal(&mut self) -> Result<Literal> {
        match self.next() {
            Some(Token::Phrase(s)) => Ok(Literal::Value(Value::Text(s))),
            Some(Token::Date(t)) => Ok(Literal::Value(Value::Date(t))),
            Some(Token::Word(w)) => {
                // Date function call?
                if self.peek() == Some(&Token::LParen) && self.peek2() == Some(&Token::RParen) {
                    let date_fn = match w.to_ascii_lowercase().as_str() {
                        "yesterday" => Some(DateFn::Yesterday),
                        "today" => Some(DateFn::Today),
                        "now" => Some(DateFn::Now),
                        _ => None,
                    };
                    if let Some(date_fn) = date_fn {
                        self.next();
                        self.next();
                        return Ok(Literal::DateFn(date_fn));
                    }
                    return Err(self.error(format!("unknown function '{w}()'")));
                }
                // Number?
                if let Ok(i) = w.parse::<i64>() {
                    return Ok(Literal::Value(Value::Integer(i)));
                }
                if let Ok(f) = w.parse::<f64>() {
                    return Ok(Literal::Value(Value::Float(f)));
                }
                if w.eq_ignore_ascii_case("true") || w.eq_ignore_ascii_case("false") {
                    return Ok(Literal::Value(Value::Boolean(
                        w.eq_ignore_ascii_case("true"),
                    )));
                }
                // Bare word: treat as text.
                Ok(Literal::Value(Value::Text(w)))
            }
            _ => Err(self.error("expected a literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_core::prelude::Timestamp;

    #[test]
    fn q1_bare_phrase() {
        let q = parse(r#""database""#).unwrap();
        assert_eq!(q, Query::Filter(Pred::Phrase("database".into())));
    }

    #[test]
    fn boolean_keyword_query() {
        let q = parse(r#""Donald" and "Knuth""#).unwrap();
        assert_eq!(
            q,
            Query::Filter(Pred::And(vec![
                Pred::Phrase("Donald".into()),
                Pred::Phrase("Knuth".into())
            ]))
        );
    }

    #[test]
    fn q3_attribute_predicate() {
        let q = parse("[size > 420000 and lastmodified < @12.06.2005]").unwrap();
        let Query::Filter(Pred::And(members)) = q else {
            panic!("expected top-level AND filter");
        };
        assert_eq!(members.len(), 2);
        assert_eq!(
            members[0],
            Pred::Cmp {
                attr: "size".into(),
                op: CompareOp::Gt,
                value: Literal::Value(Value::Integer(420_000))
            }
        );
        assert_eq!(
            members[1],
            Pred::Cmp {
                attr: "lastmodified".into(),
                op: CompareOp::Lt,
                value: Literal::Value(Value::Date(Timestamp::from_ymd(2005, 6, 12).unwrap()))
            }
        );
    }

    #[test]
    fn yesterday_function() {
        let q = parse("[size > 42000 and lastmodified < yesterday()]").unwrap();
        let Query::Filter(Pred::And(members)) = q else {
            panic!()
        };
        assert_eq!(
            members[1],
            Pred::Cmp {
                attr: "lastmodified".into(),
                op: CompareOp::Lt,
                value: Literal::DateFn(DateFn::Yesterday)
            }
        );
    }

    #[test]
    fn q4_path_with_child_step() {
        let q = parse(r#"//papers//*Vision/*["Franklin"]"#).unwrap();
        let Query::Path(path) = q else { panic!() };
        assert_eq!(path.steps.len(), 3);
        assert_eq!(path.steps[0].axis, Axis::Descendant);
        assert_eq!(path.steps[0].name.as_str(), "papers");
        assert_eq!(path.steps[1].name.as_str(), "*Vision");
        assert_eq!(path.steps[2].axis, Axis::Child);
        assert_eq!(path.steps[2].name.as_str(), "*");
        assert_eq!(path.steps[2].pred, Some(Pred::Phrase("Franklin".into())));
    }

    #[test]
    fn section_5_1_mike_franklin_query() {
        let q = parse(r#"//PIM//Introduction[class="latex_section" and "Mike Franklin"]"#).unwrap();
        let Query::Path(path) = q else { panic!() };
        assert_eq!(path.steps.len(), 2);
        assert_eq!(
            path.steps[1].pred,
            Some(Pred::And(vec![
                Pred::Class("latex_section".into()),
                Pred::Phrase("Mike Franklin".into())
            ]))
        );
    }

    #[test]
    fn olap_query_with_bare_predicate_step() {
        let q = parse(r#"//OLAP//[class="figure" and "Indexing time"]"#).unwrap();
        let Query::Path(path) = q else { panic!() };
        assert_eq!(path.steps.len(), 2);
        assert_eq!(path.steps[1].name.as_str(), "*");
        assert!(path.steps[1].pred.is_some());
    }

    #[test]
    fn q6_union() {
        let q = parse(r#"union( //VLDB2005//*["documents"], //VLDB2006//*["documents"])"#).unwrap();
        let Query::Union(members) = q else { panic!() };
        assert_eq!(members.len(), 2);
        assert!(matches!(members[0], Query::Path(_)));
    }

    #[test]
    fn q7_join_on_tuple_attr() {
        let q = parse(
            r#"join( //VLDB2006//*[class="texref"] as A,
                     //VLDB2006//*[class="environment"]//figure* as B,
                     A.name=B.tuple.label)"#,
        )
        .unwrap();
        let Query::Join(join) = q else { panic!() };
        assert_eq!(join.left_binding, "A");
        assert_eq!(join.right_binding, "B");
        assert_eq!(join.condition.left.field, Field::Name);
        assert_eq!(join.condition.right.field, Field::TupleAttr("label".into()));
        let Query::Path(right) = &join.right else {
            panic!()
        };
        assert_eq!(right.steps.len(), 3);
        assert_eq!(right.steps[2].name.as_str(), "figure*");
    }

    #[test]
    fn q8_join_on_names() {
        let q = parse(
            r#"join ( //*[class = "emailmessage"]//*.tex as A, //papers//*.tex as B, A.name = B.name )"#,
        )
        .unwrap();
        let Query::Join(join) = q else { panic!() };
        assert_eq!(join.condition.left.field, Field::Name);
        assert_eq!(join.condition.right.field, Field::Name);
        let Query::Path(left) = &join.left else {
            panic!()
        };
        assert_eq!(left.steps[0].name.as_str(), "*");
        assert_eq!(left.steps[0].pred, Some(Pred::Class("emailmessage".into())));
        assert_eq!(left.steps[1].name.as_str(), "*.tex");
    }

    #[test]
    fn not_and_parens() {
        let q = parse(r#"["a" and not ("b" or class="file")]"#).unwrap();
        let Query::Filter(Pred::And(members)) = q else {
            panic!()
        };
        assert_eq!(members[0], Pred::Phrase("a".into()));
        let Pred::Not(inner) = &members[1] else {
            panic!()
        };
        let Pred::Or(ors) = inner.as_ref() else {
            panic!()
        };
        assert_eq!(ors.len(), 2);
        assert_eq!(ors[1], Pred::Class("file".into()));
    }

    #[test]
    fn parse_errors() {
        assert!(parse("").is_err());
        assert!(parse("//a trailing").is_err());
        assert!(parse("union(//a)").is_err());
        assert!(parse("join(//a as A, //b as B, A.bogus = B.name)").is_err());
        assert!(parse("[size >]").is_err());
        assert!(parse("[class > \"file\"]").is_err());
        assert!(parse("[size = unknownfn()]").is_err());
    }
}
