//! The iQL lexer.
//!
//! Words are maximal runs of name-pattern characters (letters, digits,
//! `_ * ? . : -`), which uniformly covers identifiers (`size`), keywords
//! (`union`), wildcard name patterns (`?onclusion*`, `*.tex`,
//! `VLDB200?`) and dotted field references (`B.tuple.label`, split by
//! the parser). Strings are double-quoted phrases; `@` introduces a date
//! literal (`@12.06.2005`).

use idm_core::prelude::{IdmError, Result, Timestamp};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `//`
    DoubleSlash,
    /// `/`
    Slash,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// A double-quoted phrase (quotes stripped).
    Phrase(String),
    /// A date literal `@dd.mm.yyyy`.
    Date(Timestamp),
    /// A word: identifier, keyword, number or name pattern.
    Word(String),
}

/// Tokenizes an iQL query string.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;

    fn is_word_char(c: char) -> bool {
        c.is_alphanumeric() || matches!(c, '_' | '*' | '?' | '.' | ':' | '-' | '\'')
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '/' => {
                if chars.get(i + 1) == Some(&'/') {
                    tokens.push(Token::DoubleSlash);
                    i += 2;
                } else {
                    tokens.push(Token::Slash);
                    i += 1;
                }
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(IdmError::Parse {
                        detail: "iql: lone '!' (did you mean '!=' or 'not'?)".into(),
                    });
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '"' {
                    j += 1;
                }
                if j == chars.len() {
                    return Err(IdmError::Parse {
                        detail: "iql: unterminated string".into(),
                    });
                }
                tokens.push(Token::Phrase(chars[start..j].iter().collect()));
                i = j + 1;
            }
            '@' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '.') {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                tokens.push(Token::Date(Timestamp::parse_dmy(&text)?));
                i = j;
            }
            c if is_word_char(c) => {
                let start = i;
                let mut j = i;
                while j < chars.len() && is_word_char(chars[j]) {
                    j += 1;
                }
                tokens.push(Token::Word(chars[start..j].iter().collect()));
                i = j;
            }
            other => {
                return Err(IdmError::Parse {
                    detail: format!("iql: unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_q3_from_table_4() {
        let tokens = lex("[size > 420000 and lastmodified < @12.06.2005]").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::LBracket,
                Token::Word("size".into()),
                Token::Gt,
                Token::Word("420000".into()),
                Token::Word("and".into()),
                Token::Word("lastmodified".into()),
                Token::Lt,
                Token::Date(Timestamp::from_ymd(2005, 6, 12).unwrap()),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn lexes_paths_and_wildcards() {
        let tokens = lex("//VLDB200?//?onclusion*/*[\"systems\"]").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::DoubleSlash,
                Token::Word("VLDB200?".into()),
                Token::DoubleSlash,
                Token::Word("?onclusion*".into()),
                Token::Slash,
                Token::Word("*".into()),
                Token::LBracket,
                Token::Phrase("systems".into()),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn lexes_join_with_dotted_refs() {
        let tokens = lex("join( //a as A, //b as B, A.name=B.tuple.label)").unwrap();
        assert!(tokens.contains(&Token::Word("A.name".into())));
        assert!(tokens.contains(&Token::Word("B.tuple.label".into())));
    }

    #[test]
    fn comparison_operators() {
        let tokens = lex("a = b != c < d <= e > f >= g").unwrap();
        let ops: Vec<&Token> = tokens
            .iter()
            .filter(|t| !matches!(t, Token::Word(_)))
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::Eq,
                &Token::Ne,
                &Token::Lt,
                &Token::Le,
                &Token::Gt,
                &Token::Ge
            ]
        );
    }

    #[test]
    fn errors_on_garbage() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("#hash").is_err());
        assert!(lex("@99.99.9999").is_err());
    }

    #[test]
    fn filenames_with_spaces_need_quotes_but_patterns_allow_dots() {
        let tokens = lex("//papers//vldb-2006.tex").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::DoubleSlash,
                Token::Word("papers".into()),
                Token::DoubleSlash,
                Token::Word("vldb-2006.tex".into()),
            ]
        );
    }
}
