//! Cost-based optimization groundwork (Section 5.1: "cost based
//! optimization will be explored as another avenue of future work";
//! Section 8 repeats it).
//!
//! The estimator derives cardinalities from index **statistics alone**
//! — dictionary document frequencies, catalog class counts, column
//! sizes — without materializing any result, which is what lets a
//! planner order work before doing it. [`QueryProcessor::estimate`]
//! exposes the estimator; [`explain_with_estimates`] renders an
//! annotated plan. The executor's conjunct ordering and join build-side
//! choice validate against these estimates in the tests below.

use idm_core::prelude::*;

use crate::ast::{Pred, Query};
use crate::exec::{resolve_attr, QueryProcessor};
use crate::parser::parse;

/// A cardinality estimate (an upper bound except where noted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Estimate {
    /// Estimated number of matching views.
    pub rows: usize,
    /// Whether the estimate is exact (computed from a precise statistic,
    /// e.g. an exact-name posting length) or heuristic.
    pub exact: bool,
}

impl Estimate {
    /// An exact estimate (computed from a precise statistic).
    pub fn exact(rows: usize) -> Self {
        Estimate { rows, exact: true }
    }

    /// A heuristic estimate.
    pub fn guess(rows: usize) -> Self {
        Estimate { rows, exact: false }
    }
}

impl QueryProcessor {
    /// Total number of catalogued views (the estimator's universe).
    pub(crate) fn universe(&self) -> usize {
        self.index_bundle().catalog.len()
    }

    /// Estimates the cardinality of a predicate from index statistics.
    pub fn estimate_pred(&self, pred: &Pred) -> Estimate {
        match pred {
            Pred::Phrase(phrase) => {
                // Phrase selectivity is bounded by the rarest term's
                // document frequency.
                let terms = idm_index::tokenizer::terms(phrase);
                let rarest = terms
                    .iter()
                    .map(|t| self.index_bundle().content.document_frequency(t))
                    .min()
                    .unwrap_or(0);
                Estimate {
                    rows: rarest,
                    exact: terms.len() == 1,
                }
            }
            Pred::Class(class_name) => {
                let registry = self.view_store().classes();
                let Some(target) = registry.lookup(class_name) else {
                    return Estimate::exact(0);
                };
                let rows = registry
                    .subclasses(target)
                    .into_iter()
                    .map(|c| {
                        self.index_bundle()
                            .catalog
                            .by_class(&registry.name(c))
                            .len()
                    })
                    .sum();
                Estimate::exact(rows)
            }
            Pred::Cmp { attr, op, .. } => {
                // Column size bounds the result; equality assumes a
                // uniform 10% hit rate, ranges 33%.
                let column = self
                    .index_bundle()
                    .tuple
                    .has_attribute(&resolve_attr(attr))
                    .len();
                let rows = match op {
                    idm_index::tuple::CompareOp::Eq => column / 10,
                    idm_index::tuple::CompareOp::Ne => column,
                    _ => column / 3,
                };
                Estimate::guess(rows.max(usize::from(column > 0)))
            }
            Pred::And(members) => {
                // Upper bound: the most selective conjunct.
                let rows = members
                    .iter()
                    .map(|m| self.estimate_pred(m).rows)
                    .min()
                    .unwrap_or(0);
                Estimate::guess(rows)
            }
            Pred::Or(members) => {
                let rows: usize = members.iter().map(|m| self.estimate_pred(m).rows).sum();
                Estimate::guess(rows.min(self.universe()))
            }
            Pred::Not(inner) => {
                let inner_rows = self.estimate_pred(inner).rows;
                Estimate::guess(self.universe().saturating_sub(inner_rows))
            }
        }
    }

    /// Estimates a name-pattern posting list from name-index statistics.
    pub(crate) fn estimate_name(&self, pattern: &idm_index::name::NamePattern) -> Estimate {
        if pattern.matches_all() {
            Estimate::guess(self.universe())
        } else if pattern.is_exact() {
            Estimate::exact(self.index_bundle().name.exact(pattern.as_str()).len())
        } else {
            // Wildcards: assume they hit 5% of distinct names.
            Estimate::guess((self.index_bundle().name.entry_count() / 20).max(1))
        }
    }

    /// Estimates one path step's candidate set (name × predicate).
    fn estimate_step(&self, step: &crate::ast::Step) -> Estimate {
        let by_name = self.estimate_name(&step.name);
        match &step.pred {
            Some(pred) => {
                let by_pred = self.estimate_pred(pred);
                Estimate::guess(by_name.rows.min(by_pred.rows))
            }
            None => by_name,
        }
    }

    /// Estimates a whole query's result cardinality.
    pub fn estimate(&self, query: &Query) -> Estimate {
        match query {
            Query::Filter(pred) => self.estimate_pred(pred),
            Query::Path(path) => {
                // The final step bounds the result; earlier steps only
                // filter it down (ancestry keeps a fraction, guess 50%
                // per additional step).
                let mut estimate = match path.steps.last() {
                    Some(step) => self.estimate_step(step),
                    None => Estimate::exact(0),
                };
                for _ in 1..path.steps.len() {
                    estimate = Estimate::guess((estimate.rows / 2).max(1));
                }
                estimate
            }
            Query::Union(members) => {
                let rows: usize = members.iter().map(|m| self.estimate(m).rows).sum();
                Estimate::guess(rows.min(self.universe()))
            }
            Query::Join(join) => {
                let left = self.estimate(&join.left).rows;
                let right = self.estimate(&join.right).rows;
                // Keyed equi-join: bounded by the smaller input when the
                // key is near-unique (names usually are).
                Estimate::guess(left.min(right))
            }
        }
    }

    /// Parses a query and estimates it.
    pub fn estimate_iql(&self, iql: &str) -> Result<Estimate> {
        Ok(self.estimate(&parse(iql)?))
    }
}

/// Renders the plan annotated with cardinality estimates — the
/// "EXPLAIN (with estimates)" a cost-based optimizer starts from. The
/// estimates were attached to the plan nodes when the planner made its
/// decisions; this renders the same tree the executor runs, it does not
/// re-walk the AST.
pub fn explain_with_estimates(processor: &QueryProcessor, iql: &str) -> Result<String> {
    Ok(processor.plan_iql(iql)?.render_with_estimates())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_index::IndexBundle;
    use std::sync::Arc;

    fn space() -> QueryProcessor {
        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(IndexBundle::new());
        for i in 0..50 {
            store
                .build(format!("doc{i}.txt"))
                .tuple(TupleComponent::of(vec![("size", Value::Integer(i))]))
                .text(if i < 5 {
                    "rare needle here".to_owned()
                } else {
                    "common haystack words".to_owned()
                })
                .class_named("file")
                .insert();
        }
        store.build("PIM").class_named("folder").insert();
        for vid in store.vids() {
            indexes.index_view(&store, vid, "test").unwrap();
        }
        QueryProcessor::new(store, indexes)
    }

    #[test]
    fn phrase_estimates_match_document_frequency() {
        let p = space();
        let est = p.estimate_iql(r#""needle""#).unwrap();
        assert_eq!(est.rows, 5);
        assert!(est.exact);
        let est = p.estimate_iql(r#""haystack""#).unwrap();
        assert_eq!(est.rows, 45);
        // Multi-term phrases are bounded by the rarest term.
        let est = p.estimate_iql(r#""rare needle""#).unwrap();
        assert_eq!(est.rows, 5);
        assert!(!est.exact, "phrase adjacency may reduce it further");
    }

    #[test]
    fn class_and_name_estimates_are_exact() {
        let p = space();
        let est = p.estimate_iql(r#"[class="folder"]"#).unwrap();
        assert!(est.exact);
        // folderlink specializes folder; only PIM is registered here.
        assert_eq!(est.rows, 1);
        let est = p.estimate_iql("//PIM").unwrap();
        assert_eq!(est, Estimate::exact(1));
    }

    #[test]
    fn estimates_upper_bound_reality_for_index_backed_predicates() {
        let p = space();
        for iql in [
            r#""needle""#,
            r#"["needle" and "haystack"]"#,
            r#"[class="file"]"#,
            r#"union("needle", "haystack")"#,
            "//PIM",
        ] {
            let est = p.estimate_iql(iql).unwrap();
            let actual = p.execute(iql).unwrap().rows.len();
            assert!(
                est.rows >= actual,
                "estimate {} < actual {actual} for {iql}",
                est.rows
            );
        }
    }

    #[test]
    fn and_estimate_takes_most_selective_conjunct() {
        let p = space();
        let est = p.estimate_iql(r#"["haystack" and "needle"]"#).unwrap();
        assert_eq!(est.rows, 5, "bounded by the rare side");
    }

    #[test]
    fn annotated_explain_shows_estimates_and_build_side() {
        let p = space();
        let plan = explain_with_estimates(
            &p,
            r#"join( "needle" as A, "haystack" as B, A.name = B.name )"#,
        )
        .unwrap();
        assert!(plan.contains("HashJoin"), "{plan}");
        assert!(plan.contains("build=left (est. 5 vs 45)"), "{plan}");
    }

    #[test]
    fn not_estimate_complements_universe() {
        let p = space();
        let est = p.estimate_iql(r#"[not "needle"]"#).unwrap();
        assert_eq!(est.rows, p.index_bundle().catalog.len() - 5);
    }
}
