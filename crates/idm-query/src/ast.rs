//! The abstract syntax of iQL (Section 5.1).
//!
//! iQL extends IR keyword search with path expressions and attribute
//! predicates (in the spirit of NEXI / a simplified XPath 2.0):
//!
//! - `"database tuning"` — phrase query over content components,
//! - `"Donald" and "Knuth"` — boolean keyword combinations,
//! - `[size > 42000 and lastmodified < yesterday()]` — tuple predicates,
//! - `//PIM//Introduction[class="latex_section" and "Mike Franklin"]` —
//!   path steps over the resource view graph (`//` = indirectly
//!   related, `/` = directly related) with `*`/`?` name wildcards,
//! - `union(q1, q2, …)` and
//!   `join(q1 as A, q2 as B, A.name = B.tuple.label)`.

use idm_core::prelude::{Timestamp, Value};
use idm_index::name::NamePattern;
use idm_index::tuple::CompareOp;

/// A complete iQL query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A path expression over the resource view graph.
    Path(PathExpr),
    /// A dataspace-wide predicate (bare `[…]`, bare phrases, booleans).
    Filter(Pred),
    /// Set union of subquery results.
    Union(Vec<Query>),
    /// Value join between two subqueries.
    Join(Box<JoinExpr>),
}

/// A join: `join(q1 as A, q2 as B, A.f = B.g)`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinExpr {
    /// Left input.
    pub left: Query,
    /// Left binding name (e.g. `A`).
    pub left_binding: String,
    /// Right input.
    pub right: Query,
    /// Right binding name (e.g. `B`).
    pub right_binding: String,
    /// The equality condition.
    pub condition: JoinCondition,
}

/// `A.name = B.tuple.label`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinCondition {
    /// Left field reference.
    pub left: FieldRef,
    /// Right field reference.
    pub right: FieldRef,
}

/// A reference to a component field of a bound query's rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldRef {
    /// Which binding (`A`, `B`, …).
    pub binding: String,
    /// Which field.
    pub field: Field,
}

/// The addressable fields of a resource view in join conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Field {
    /// The name component `η`.
    Name,
    /// An attribute of the tuple component: `tuple.<attr>`.
    TupleAttr(String),
    /// The resource view class name.
    Class,
}

/// A path expression: a sequence of steps.
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    /// The steps, leftmost first.
    pub steps: Vec<Step>,
}

/// The axis of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `//`: indirectly related (any-length chain of group edges).
    Descendant,
    /// `/`: directly related (one group edge).
    Child,
}

/// One path step: axis, name pattern and optional predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// How this step relates to the previous one.
    pub axis: Axis,
    /// The name pattern (`*` when the step has no name constraint).
    pub name: NamePattern,
    /// The bracketed predicate, if any.
    pub pred: Option<Pred>,
}

/// A predicate over one resource view.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
    /// The content component contains this phrase.
    Phrase(String),
    /// The view conforms to (a specialization of) this class.
    Class(String),
    /// Comparison of a tuple attribute against a literal.
    Cmp {
        /// Attribute name as written (aliases resolved at execution).
        attr: String,
        /// Comparison operator.
        op: CompareOp,
        /// Right-hand literal.
        value: Literal,
    },
}

/// A literal in a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A concrete value.
    Value(Value),
    /// A date function evaluated against the execution context's clock:
    /// `yesterday()`, `today()`, `now()`.
    DateFn(DateFn),
}

/// The built-in date functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DateFn {
    /// Midnight of the previous day.
    Yesterday,
    /// Midnight of the current day.
    Today,
    /// The current instant.
    Now,
}

impl DateFn {
    /// Evaluates the function against `now`.
    pub fn eval(self, now: Timestamp) -> Timestamp {
        let (y, m, d) = now.to_ymd();
        let midnight = Timestamp::from_ymd(y, m, d).expect("valid civil date from timestamp");
        match self {
            DateFn::Now => now,
            DateFn::Today => midnight,
            DateFn::Yesterday => midnight.plus_days(-1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_fns_anchor_to_midnight() {
        let now = Timestamp::from_ymd_hms(2005, 6, 12, 15, 30, 0).unwrap();
        assert_eq!(DateFn::Now.eval(now), now);
        assert_eq!(
            DateFn::Today.eval(now),
            Timestamp::from_ymd(2005, 6, 12).unwrap()
        );
        assert_eq!(
            DateFn::Yesterday.eval(now),
            Timestamp::from_ymd(2005, 6, 11).unwrap()
        );
    }

    #[test]
    fn yesterday_crosses_month_boundary() {
        let now = Timestamp::from_ymd_hms(2005, 3, 1, 0, 0, 1).unwrap();
        assert_eq!(
            DateFn::Yesterday.eval(now),
            Timestamp::from_ymd(2005, 2, 28).unwrap()
        );
    }
}
