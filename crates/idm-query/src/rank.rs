//! Ranking of query results (Section 5.1: "as ongoing work, we are
//! extending iQL to support search over all resource view components
//! and ranking of query results" — this module implements that
//! extension).
//!
//! Scoring is TF–IDF over the content index, with component-aware
//! bonuses: phrase hits in the **name** component weigh more than hits
//! in content (a document *called* "database tuning" is a better answer
//! to that query than one merely mentioning it), and class-predicate
//! matches contribute a fixed structural bonus. The scheme is
//! deliberately simple — the paper promises ranking, not BM25 — but the
//! interface ([`RankedResult`]) is what a PDSMS UI would paginate.

use std::collections::HashMap;

use idm_core::prelude::*;
use idm_index::tokenizer::terms;

use crate::exec::{QueryProcessor, ResultRows};
use crate::plan::{AccessKind, Plan, PlanNode, PlanOp};

/// One scored result row.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedResult {
    /// The view (the left view for join rows).
    pub vid: Vid,
    /// The relevance score (higher is better; 0 for purely structural
    /// matches).
    pub score: f64,
}

/// Weights of the scoring model.
#[derive(Debug, Clone, Copy)]
pub struct RankWeights {
    /// Multiplier for TF–IDF content hits.
    pub content: f64,
    /// Bonus per query term appearing in the name component.
    pub name: f64,
    /// Bonus when the query constrained the class and the view matched.
    pub class: f64,
}

impl Default for RankWeights {
    fn default() -> Self {
        RankWeights {
            content: 1.0,
            name: 2.5,
            class: 0.5,
        }
    }
}

/// Collects every content-phrase and catalog-class access mentioned in
/// a plan (these are the ranking signals). Walking the plan rather than
/// the AST means ranking sees exactly the accesses that ran.
fn collect_signals(node: &PlanNode, phrases: &mut Vec<String>, classes: &mut usize) {
    match &node.op {
        PlanOp::IndexAccess(AccessKind::Content(p)) => phrases.push(p.clone()),
        PlanOp::IndexAccess(AccessKind::Catalog(_)) => *classes += 1,
        PlanOp::IndexAccess(_) | PlanOp::Scan => {}
        PlanOp::Intersect(inputs) | PlanOp::UnionOp(inputs) => {
            for input in inputs {
                collect_signals(input, phrases, classes);
            }
        }
        PlanOp::Complement(inner) => collect_signals(inner, phrases, classes),
        PlanOp::Relate {
            context,
            candidates,
            ..
        } => {
            collect_signals(context, phrases, classes);
            collect_signals(candidates, phrases, classes);
        }
        PlanOp::HashJoin { left, right, .. } => {
            collect_signals(left, phrases, classes);
            collect_signals(right, phrases, classes);
        }
    }
}

impl QueryProcessor {
    /// Executes a query and ranks its rows by relevance to the query's
    /// phrase and class signals, most relevant first. Ties (including
    /// all-structural queries with no phrases) preserve vid order, so
    /// ranking is deterministic.
    pub fn execute_ranked(&self, iql: &str) -> Result<Vec<RankedResult>> {
        self.execute_ranked_with(iql, RankWeights::default())
    }

    /// [`QueryProcessor::execute_ranked`] with explicit weights.
    pub fn execute_ranked_with(
        &self,
        iql: &str,
        weights: RankWeights,
    ) -> Result<Vec<RankedResult>> {
        let plan = self.plan_iql(iql)?;
        self.execute_ranked_plan(&plan, weights)
    }

    /// Executes an already-planned query and ranks its rows. Federation
    /// uses this to plan once at the coordinator and rank per peer.
    pub fn execute_ranked_plan(
        &self,
        plan: &Plan,
        weights: RankWeights,
    ) -> Result<Vec<RankedResult>> {
        let result = self.execute_plan(plan)?;
        Ok(self.rank_rows(plan, &result.rows, weights))
    }

    /// Scores already-computed result rows against the phrase and class
    /// signals of the plan that produced them, most relevant first.
    /// Splitting scoring from execution lets [`crate::QueryRequest`]
    /// rank the rows of a single execution (or a cache hit) instead of
    /// running the plan a second time.
    pub fn rank_rows(
        &self,
        plan: &Plan,
        rows: &ResultRows,
        weights: RankWeights,
    ) -> Vec<RankedResult> {
        let mut phrases = Vec::new();
        let mut class_constraints = 0usize;
        collect_signals(&plan.root, &mut phrases, &mut class_constraints);
        let query_terms: Vec<String> = phrases.iter().flat_map(|p| terms(p)).collect();

        let rows = match rows {
            ResultRows::Views(v) => v.clone(),
            ResultRows::Pairs(p) => p.iter().map(|(a, _)| *a).collect(),
        };
        let total_docs = self.index_bundle().content.document_count().max(1) as f64;

        // IDF per distinct query term.
        let mut idf: HashMap<&str, f64> = HashMap::new();
        for term in &query_terms {
            idf.entry(term.as_str()).or_insert_with(|| {
                let df = self.index_bundle().content.document_frequency(term);
                ((1.0 + total_docs) / (1.0 + df as f64)).ln() + 1.0
            });
        }

        let mut ranked: Vec<RankedResult> = rows
            .into_iter()
            .map(|vid| {
                let mut score = 0.0;
                // Content TF-IDF.
                for term in &query_terms {
                    let tf = self.index_bundle().content.term_frequency(vid, term) as f64;
                    if tf > 0.0 {
                        score += weights.content * (1.0 + tf.ln()) * idf[term.as_str()];
                    }
                }
                // Name-component hits ("search over all resource view
                // components").
                if let Ok(Some(name)) = self.view_store().name(vid) {
                    let name_terms = terms(&name);
                    for term in &query_terms {
                        if name_terms.iter().any(|t| t == term) {
                            score += weights.name * idf[term.as_str()];
                        }
                    }
                }
                if class_constraints > 0 {
                    score += weights.class;
                }
                RankedResult { vid, score }
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.vid.cmp(&b.vid))
        });
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_index::IndexBundle;
    use std::sync::Arc;

    fn space() -> QueryProcessor {
        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(IndexBundle::new());
        // Three documents with increasing relevance to "database tuning".
        let mentions = store
            .build("notes.txt")
            .text("some notes that mention database tuning once")
            .insert();
        let heavy = store
            .build("guide.txt")
            .text("database tuning database tuning database tuning all day")
            .insert();
        let named = store
            .build("database tuning")
            .text("short body with database tuning")
            .insert();
        let unrelated = store.build("recipe.txt").text("tomato soup").insert();
        for vid in store.vids() {
            indexes.index_view(&store, vid, "test").unwrap();
        }
        let _ = (mentions, heavy, named, unrelated);
        QueryProcessor::new(store, indexes)
    }

    #[test]
    fn name_hits_outrank_heavy_content() {
        let p = space();
        let ranked = p.execute_ranked(r#""database tuning""#).unwrap();
        assert_eq!(ranked.len(), 3, "three views contain the phrase");
        let names: Vec<String> = ranked
            .iter()
            .map(|r| p.view_store().name(r.vid).unwrap().unwrap())
            .collect();
        assert_eq!(names[0], "database tuning", "name match first");
        assert_eq!(names[1], "guide.txt", "then the TF-heavy doc");
        assert_eq!(names[2], "notes.txt");
        assert!(ranked[0].score > ranked[1].score);
        assert!(ranked[1].score > ranked[2].score);
    }

    #[test]
    fn scores_are_deterministic_and_ordered() {
        let p = space();
        let a = p.execute_ranked(r#""database""#).unwrap();
        let b = p.execute_ranked(r#""database""#).unwrap();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn structural_queries_rank_vacuously() {
        let p = space();
        let ranked = p.execute_ranked("//notes.txt").unwrap();
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].score, 0.0, "no phrase signals, no score");
    }

    #[test]
    fn weights_change_the_order() {
        let p = space();
        // With the name bonus off, the TF-heavy document wins.
        let ranked = p
            .execute_ranked_with(
                r#""database tuning""#,
                RankWeights {
                    content: 1.0,
                    name: 0.0,
                    class: 0.0,
                },
            )
            .unwrap();
        let top = p.view_store().name(ranked[0].vid).unwrap().unwrap();
        assert_eq!(top, "guide.txt");
    }

    #[test]
    fn rare_terms_weigh_more() {
        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(IndexBundle::new());
        // "common" is everywhere; "rare" in one place.
        for i in 0..10 {
            store
                .build(format!("d{i}"))
                .text("common words here")
                .insert();
        }
        let rare = store.build("special").text("common and rare").insert();
        for vid in store.vids() {
            indexes.index_view(&store, vid, "test").unwrap();
        }
        let p = QueryProcessor::new(store, indexes);
        let ranked = p.execute_ranked(r#"["common" or "rare"]"#).unwrap();
        assert_eq!(ranked[0].vid, rare, "the rare-term doc ranks first");
    }
}
