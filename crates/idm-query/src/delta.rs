//! Incremental maintenance of standing query results (the paper's
//! `refresh_result` pub/sub, Section 4.3.1, industrialized).
//!
//! A [`MaintainedPlan`] pairs a [`Plan`] with the rows every node of
//! that plan produced, and [`QueryProcessor::maintain`] applies a batch
//! of logical [`ChangeRecord`]s — the same nine tags the WAL encodes —
//! to bring those rows up to date without re-running the query:
//!
//! - **Leaves** (index access, scan) re-read their posting list *only
//!   when the batch could have touched that index* (a `SetContent`
//!   record leaves name/tuple/catalog leaves untouched). A re-read is
//!   an in-memory index probe — the cheap part of execution.
//! - **Intersect / union** re-test membership for exactly the vids
//!   their children's deltas named, against the children's maintained
//!   (sorted) rows.
//! - **Complement** rescans the catalog when its input changed or the
//!   catalog membership did (insert/remove); otherwise it is untouched.
//! - **Relate** keeps its rows verbatim while the group topology and
//!   its context are unchanged, re-testing only *added* candidates and
//!   dropping removed ones; any structural record (group edges) or a
//!   context delta triggers the bounded re-expansion fallback: the one
//!   relate node recomputes from its maintained children, never the
//!   whole plan. Both paths are counted in [`DeltaStats`].
//! - **Hash joins** (root only, the planner's only join position)
//!   maintain the build-side multimap and both sides' key maps,
//!   re-deriving keys for exactly the vids whose key fields changed.
//!
//! Maintenance is **state-based**: a node's new rows are derived from
//! the *current* index state and the children's maintained rows — the
//! records are the invalidation signal, not the arithmetic. That makes
//! delta application convergent (applying a batch twice is a no-op) and
//! guarantees the core invariant the equivalence suite checks:
//! **maintained rows == a fresh recompute**, at any parallelism,
//! because both read the same indexes. Whenever a node cannot maintain
//! soundly the whole plan falls back to a counted full recompute —
//! never a guess.

use std::collections::{HashMap, HashSet};

use idm_core::prelude::*;

use crate::ast::Field;
use crate::budget::{BudgetTracker, QueryBudget};
use crate::exec::{ExecStats, QueryProcessor, QueryResult, ResultRows};
use crate::plan::{AccessKind, BuildSide, Plan, PlanNode, PlanOp};

/// Counters for one standing result's maintenance history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Change batches applied.
    pub batches: u64,
    /// Change records consumed across all batches.
    pub records: u64,
    /// Leaf (index-access / scan) posting-list re-reads.
    pub leaf_reevals: u64,
    /// Complement rescans against the catalog.
    pub complement_rescans: u64,
    /// Relate nodes maintained incrementally (kept rows carried over,
    /// only added candidates re-tested).
    pub relate_incremental: u64,
    /// Relate nodes that fell back to bounded re-expansion because the
    /// batch touched group topology or the node's context changed.
    pub relate_fallbacks: u64,
    /// Hash-join maintenance passes via the build-side multimap.
    pub join_maintained: u64,
    /// Whole-plan recomputes (a node could not maintain soundly).
    pub full_recomputes: u64,
}

/// The net change one maintenance pass produced on a standing result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultDelta {
    /// Rows that entered the result.
    pub added: ResultRows,
    /// Rows that left the result.
    pub removed: ResultRows,
    /// Total rows in the maintained result after this pass.
    pub total: usize,
}

impl ResultDelta {
    /// Whether this pass changed nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    fn unchanged_views(total: usize) -> Self {
        ResultDelta {
            added: ResultRows::Views(Vec::new()),
            removed: ResultRows::Views(Vec::new()),
            total,
        }
    }
}

/// Per-view-node delta: sorted vid lists entering/leaving the node.
#[derive(Debug, Clone, Default)]
struct ViewDelta {
    added: Vec<Vid>,
    removed: Vec<Vid>,
}

impl ViewDelta {
    fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// What a batch of change records could have touched, classified once
/// per batch. Flags are conservative: a set flag means "this index may
/// have changed", never the reverse.
#[derive(Debug, Default)]
struct Batch {
    /// Group topology may have changed (insert/remove/group records):
    /// relate nodes must re-expand.
    structural: bool,
    /// Catalog membership changed (insert/remove): scans and
    /// complements must re-derive.
    catalog: bool,
    /// The name index may have changed.
    name: bool,
    /// The content index may have changed.
    content: bool,
    /// The tuple index may have changed.
    tuple: bool,
    /// Class/catalog class postings may have changed.
    class: bool,
    /// Vids whose join-key fields (name/class/tuple attrs) may have
    /// changed — the only vids whose keys a join re-derives.
    key_dirty: HashSet<Vid>,
}

impl Batch {
    fn classify(records: &[ChangeRecord]) -> Self {
        let mut batch = Batch::default();
        for record in records {
            match record {
                ChangeRecord::Insert { vid, .. } | ChangeRecord::Remove { vid } => {
                    batch.structural = true;
                    batch.catalog = true;
                    batch.name = true;
                    batch.content = true;
                    batch.tuple = true;
                    batch.class = true;
                    batch.key_dirty.insert(Vid::from_raw(*vid));
                }
                ChangeRecord::SetName { vid, .. } => {
                    batch.name = true;
                    batch.key_dirty.insert(Vid::from_raw(*vid));
                }
                ChangeRecord::SetTuple { vid, .. } => {
                    batch.tuple = true;
                    batch.key_dirty.insert(Vid::from_raw(*vid));
                }
                ChangeRecord::SetContent { .. } => batch.content = true,
                ChangeRecord::SetClass { vid, .. } => {
                    batch.class = true;
                    batch.key_dirty.insert(Vid::from_raw(*vid));
                }
                ChangeRecord::SetGroup { .. }
                | ChangeRecord::AddGroupMember { .. }
                | ChangeRecord::GroupForced { .. } => batch.structural = true,
            }
        }
        batch
    }
}

/// Build-side multimap plus both sides' key maps for a root hash join.
#[derive(Debug, Clone, Default)]
struct JoinState {
    /// Join key → build-side rows with that key, vid-sorted.
    table: HashMap<String, Vec<Vid>>,
    /// Key per build-side row (reverse of `table`).
    build_keys: HashMap<Vid, String>,
    /// Key per probe-side row.
    probe_keys: HashMap<Vid, String>,
}

/// One maintained plan node: its current (sorted) view rows plus its
/// maintained inputs, mirroring the plan tree shape.
#[derive(Debug, Clone)]
struct MaintainedNode {
    rows: Vec<Vid>,
    children: Vec<MaintainedNode>,
}

/// The maintained state of a plan's root.
#[derive(Debug, Clone)]
enum MaintainedRoot {
    /// A view-producing plan: the root node's maintained subtree.
    Views(MaintainedNode),
    /// A root hash join: both maintained inputs, the join state, and
    /// the current pair rows.
    Join {
        left: MaintainedNode,
        right: MaintainedNode,
        state: Box<JoinState>,
        pairs: Vec<(Vid, Vid)>,
    },
}

/// A standing query: a plan plus the per-node rows it last produced,
/// kept current by [`QueryProcessor::maintain`].
#[derive(Debug, Clone)]
pub struct MaintainedPlan {
    plan: Plan,
    root: MaintainedRoot,
    stats: DeltaStats,
}

impl MaintainedPlan {
    /// The plan this standing result maintains.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The plan's normalized fingerprint (the cache key).
    pub fn fingerprint(&self) -> u64 {
        self.plan.fingerprint()
    }

    /// The current maintained rows — always equal to what a fresh
    /// execution of [`MaintainedPlan::plan`] would return.
    pub fn rows(&self) -> ResultRows {
        match &self.root {
            MaintainedRoot::Views(node) => ResultRows::Views(node.rows.clone()),
            MaintainedRoot::Join { pairs, .. } => ResultRows::Pairs(pairs.clone()),
        }
    }

    /// Number of rows in the maintained result.
    pub fn len(&self) -> usize {
        match &self.root {
            MaintainedRoot::Views(node) => node.rows.len(),
            MaintainedRoot::Join { pairs, .. } => pairs.len(),
        }
    }

    /// Whether the maintained result is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maintenance counters accumulated over this result's lifetime.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }
}

// ---- sorted-vec set algebra ------------------------------------------

/// `(added, removed)` between two sorted, deduplicated slices.
fn diff_sorted<T: Ord + Copy>(old: &[T], new: &[T]) -> (Vec<T>, Vec<T>) {
    let (mut added, mut removed) = (Vec::new(), Vec::new());
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Less => {
                removed.push(old[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(new[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend_from_slice(&old[i..]);
    added.extend_from_slice(&new[j..]);
    (added, removed)
}

/// Sorted merge of two sorted, deduplicated slices.
fn sorted_union(a: &[Vid], b: &[Vid]) -> Vec<Vid> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// `base` minus `remove`, both sorted and deduplicated.
fn sorted_minus(base: &[Vid], remove: &[Vid]) -> Vec<Vid> {
    if remove.is_empty() {
        return base.to_vec();
    }
    base.iter()
        .copied()
        .filter(|v| remove.binary_search(v).is_err())
        .collect()
}

fn contains(sorted: &[Vid], v: Vid) -> bool {
    sorted.binary_search(&v).is_ok()
}

/// Inserts `vid` into the multimap bucket for `key`, keeping the bucket
/// vid-sorted and duplicate-free.
fn multimap_insert(table: &mut HashMap<String, Vec<Vid>>, key: String, vid: Vid) {
    let bucket = table.entry(key).or_default();
    if let Err(pos) = bucket.binary_search(&vid) {
        bucket.insert(pos, vid);
    }
}

fn multimap_remove(table: &mut HashMap<String, Vec<Vid>>, key: &str, vid: Vid) {
    if let Some(bucket) = table.get_mut(key) {
        if let Ok(pos) = bucket.binary_search(&vid) {
            bucket.remove(pos);
        }
        if bucket.is_empty() {
            table.remove(key);
        }
    }
}

impl QueryProcessor {
    /// Builds standing state from the per-node rows a capturing
    /// execution produced (post-order, children before parents).
    /// Returns `None` for plan shapes the delta engine cannot maintain
    /// (a hash join below the root — which the planner never emits).
    pub(crate) fn seed_maintained(
        &self,
        plan: &Plan,
        captured: Vec<ResultRows>,
    ) -> Option<MaintainedPlan> {
        let mut pos = 0usize;
        let root = match &plan.root.op {
            PlanOp::HashJoin {
                left,
                right,
                left_field,
                right_field,
                build,
                ..
            } => {
                let left_node = build_node(left, &captured, &mut pos)?;
                let right_node = build_node(right, &captured, &mut pos)?;
                let pairs = match captured.get(pos)? {
                    ResultRows::Pairs(p) => p.clone(),
                    ResultRows::Views(_) => return None,
                };
                pos += 1;
                let state = self.seed_join(
                    &left_node.rows,
                    &right_node.rows,
                    left_field,
                    right_field,
                    *build,
                );
                MaintainedRoot::Join {
                    left: left_node,
                    right: right_node,
                    state: Box::new(state),
                    pairs,
                }
            }
            _ => MaintainedRoot::Views(build_node(&plan.root, &captured, &mut pos)?),
        };
        (pos == captured.len()).then(|| MaintainedPlan {
            plan: plan.clone(),
            root,
            stats: DeltaStats::default(),
        })
    }

    fn seed_join(
        &self,
        left_rows: &[Vid],
        right_rows: &[Vid],
        left_field: &Field,
        right_field: &Field,
        build: BuildSide,
    ) -> JoinState {
        let (build_rows, probe_rows, build_field, probe_field) = match build {
            BuildSide::Left => (left_rows, right_rows, left_field, right_field),
            BuildSide::Right => (right_rows, left_rows, right_field, left_field),
        };
        let mut state = JoinState::default();
        for &vid in build_rows {
            if let Some(key) = self.field_key(vid, build_field) {
                multimap_insert(&mut state.table, key.clone(), vid);
                state.build_keys.insert(vid, key);
            }
        }
        for &vid in probe_rows {
            if let Some(key) = self.field_key(vid, probe_field) {
                state.probe_keys.insert(vid, key);
            }
        }
        state
    }

    /// Applies a batch of change records to a standing result, returning
    /// the net row delta. The maintained rows afterwards are identical
    /// to a fresh execution of the plan against the current store and
    /// indexes; when a node cannot maintain soundly the whole plan is
    /// recomputed (counted in [`DeltaStats::full_recomputes`]).
    pub fn maintain(
        &self,
        standing: &mut MaintainedPlan,
        records: &[ChangeRecord],
    ) -> Result<ResultDelta> {
        if records.is_empty() {
            return Ok(match &standing.root {
                MaintainedRoot::Views(node) => ResultDelta::unchanged_views(node.rows.len()),
                MaintainedRoot::Join { pairs, .. } => ResultDelta {
                    added: ResultRows::Pairs(Vec::new()),
                    removed: ResultRows::Pairs(Vec::new()),
                    total: pairs.len(),
                },
            });
        }
        standing.stats.batches += 1;
        standing.stats.records += records.len() as u64;
        let batch = Batch::classify(records);
        // Maintenance itself is never budgeted: it runs on behalf of a
        // cache hit or a subscription pump, not a governed query.
        let tracker = BudgetTracker::start(QueryBudget::none());
        let mut scratch = ExecStats::default();

        // Inner scope: borrow the standing state's pieces disjointly;
        // `None` out of it means some node could not maintain and the
        // whole plan recomputes below.
        let maintained: Option<ResultDelta> = {
            let MaintainedPlan { plan, root, stats } = &mut *standing;
            match (&plan.root.op, root) {
                (
                    PlanOp::HashJoin {
                        left,
                        right,
                        left_field,
                        right_field,
                        build,
                        ..
                    },
                    MaintainedRoot::Join {
                        left: left_node,
                        right: right_node,
                        state,
                        pairs,
                    },
                ) => {
                    let ld = self.maintain_view_node(
                        left,
                        left_node,
                        &batch,
                        stats,
                        &mut scratch,
                        &tracker,
                    )?;
                    let rd = self.maintain_view_node(
                        right,
                        right_node,
                        &batch,
                        stats,
                        &mut scratch,
                        &tracker,
                    )?;
                    match (ld, rd) {
                        (Some(ld), Some(rd)) => Some(self.maintain_join(
                            *build,
                            left_field,
                            right_field,
                            &left_node.rows,
                            &right_node.rows,
                            &ld,
                            &rd,
                            &batch,
                            state,
                            pairs,
                            stats,
                        )),
                        _ => None,
                    }
                }
                (_, MaintainedRoot::Views(node)) => self
                    .maintain_view_node(&plan.root, node, &batch, stats, &mut scratch, &tracker)?
                    .map(|delta| ResultDelta {
                        total: node.rows.len(),
                        added: ResultRows::Views(delta.added),
                        removed: ResultRows::Views(delta.removed),
                    }),
                _ => None,
            }
        };
        match maintained {
            Some(delta) => Ok(delta),
            None => self.recompute_all(standing),
        }
    }

    /// Maintains a root hash join's multimap and key maps from its
    /// inputs' deltas, regenerating the pair rows by probing the
    /// multimap — no store or index reads beyond re-keying the vids the
    /// batch marked dirty.
    #[allow(clippy::too_many_arguments)]
    fn maintain_join(
        &self,
        build: BuildSide,
        left_field: &Field,
        right_field: &Field,
        left_rows: &[Vid],
        right_rows: &[Vid],
        ld: &ViewDelta,
        rd: &ViewDelta,
        batch: &Batch,
        state: &mut JoinState,
        pairs: &mut Vec<(Vid, Vid)>,
        stats: &mut DeltaStats,
    ) -> ResultDelta {
        let build_is_left = build == BuildSide::Left;
        let (build_rows, probe_rows, bd, pd, build_field, probe_field) = if build_is_left {
            (left_rows, right_rows, ld, rd, left_field, right_field)
        } else {
            (right_rows, left_rows, rd, ld, right_field, left_field)
        };
        // Build side: drop removed rows, key added rows, re-key the
        // surviving rows the batch marked dirty.
        for v in &bd.removed {
            if let Some(key) = state.build_keys.remove(v) {
                multimap_remove(&mut state.table, &key, *v);
            }
        }
        for &v in &bd.added {
            if let Some(key) = self.field_key(v, build_field) {
                multimap_insert(&mut state.table, key.clone(), v);
                state.build_keys.insert(v, key);
            }
        }
        for &v in &batch.key_dirty {
            if !contains(build_rows, v) {
                continue;
            }
            let fresh = self.field_key(v, build_field);
            if state.build_keys.get(&v) == fresh.as_ref() {
                continue;
            }
            if let Some(old) = state.build_keys.remove(&v) {
                multimap_remove(&mut state.table, &old, v);
            }
            if let Some(key) = fresh {
                multimap_insert(&mut state.table, key.clone(), v);
                state.build_keys.insert(v, key);
            }
        }
        // Probe side: same bookkeeping, keys only.
        for v in &pd.removed {
            state.probe_keys.remove(v);
        }
        let rekey: Vec<Vid> = pd
            .added
            .iter()
            .copied()
            .chain(
                batch
                    .key_dirty
                    .iter()
                    .copied()
                    .filter(|v| contains(probe_rows, *v)),
            )
            .collect();
        for v in rekey {
            match self.field_key(v, probe_field) {
                Some(key) => {
                    state.probe_keys.insert(v, key);
                }
                None => {
                    state.probe_keys.remove(&v);
                }
            }
        }
        // Regenerate pairs by probing the maintained multimap; sort +
        // dedup matches the executor's output exactly.
        let mut new_pairs = Vec::new();
        for &v in probe_rows {
            if let Some(key) = state.probe_keys.get(&v) {
                if let Some(matches) = state.table.get(key) {
                    for &m in matches {
                        new_pairs.push(if build_is_left { (m, v) } else { (v, m) });
                    }
                }
            }
        }
        new_pairs.sort_unstable();
        new_pairs.dedup();
        stats.join_maintained += 1;
        let (added, removed) = diff_sorted(pairs, &new_pairs);
        *pairs = new_pairs;
        ResultDelta {
            total: pairs.len(),
            added: ResultRows::Pairs(added),
            removed: ResultRows::Pairs(removed),
        }
    }

    /// Resynchronizes a standing result that may have drifted (e.g.
    /// after a failed maintenance pass): a counted full recompute that
    /// re-executes the plan, re-seeds the maintained state and returns
    /// the delta between the old rows and the fresh ones. After a
    /// successful resync the standing rows are identical to a fresh
    /// execution regardless of what state maintenance left behind.
    pub fn resync(&self, standing: &mut MaintainedPlan) -> Result<ResultDelta> {
        self.recompute_all(standing)
    }

    /// The counted whole-plan fallback: re-execute (unbudgeted,
    /// capturing) and re-seed, diffing old rows against new.
    fn recompute_all(&self, standing: &mut MaintainedPlan) -> Result<ResultDelta> {
        let old = standing.rows();
        let mut captured = Vec::new();
        let QueryResult { rows, .. } =
            self.execute_plan_with(&standing.plan, QueryBudget::none(), Some(&mut captured))?;
        let mut stats = standing.stats;
        stats.full_recomputes += 1;
        let Some(mut fresh) = self.seed_maintained(&standing.plan, captured) else {
            return Err(IdmError::Provider {
                detail: "delta: plan shape is not maintainable".into(),
                source: None,
                vid: None,
            });
        };
        fresh.stats = stats;
        *standing = fresh;
        let total = rows.len();
        let (added, removed) = match (&old, &rows) {
            (ResultRows::Views(o), ResultRows::Views(n)) => {
                let (a, r) = diff_sorted(o, n);
                (ResultRows::Views(a), ResultRows::Views(r))
            }
            (ResultRows::Pairs(o), ResultRows::Pairs(n)) => {
                let (a, r) = diff_sorted(o, n);
                (ResultRows::Pairs(a), ResultRows::Pairs(r))
            }
            // Shape flip cannot happen (the plan is unchanged); report
            // a full replacement if it somehow does.
            _ => (rows.clone(), old.clone()),
        };
        Ok(ResultDelta {
            added,
            removed,
            total,
        })
    }

    /// Maintains one view-producing node (and its subtree). Returns
    /// `None` when the subtree cannot be maintained (nested join) — the
    /// caller escalates to a full recompute.
    fn maintain_view_node(
        &self,
        node: &PlanNode,
        state: &mut MaintainedNode,
        batch: &Batch,
        dstats: &mut DeltaStats,
        scratch: &mut ExecStats,
        tracker: &BudgetTracker,
    ) -> Result<Option<ViewDelta>> {
        let new_rows: Vec<Vid> = match &node.op {
            PlanOp::IndexAccess(access) => {
                let dirty = match access {
                    AccessKind::Name(_) => batch.name,
                    AccessKind::Content(_) => batch.content,
                    AccessKind::Tuple { .. } => batch.tuple,
                    AccessKind::Catalog(_) => batch.class,
                };
                if !dirty {
                    return Ok(Some(ViewDelta::default()));
                }
                dstats.leaf_reevals += 1;
                self.eval_access(access)
            }
            PlanOp::Scan => {
                if !batch.catalog {
                    return Ok(Some(ViewDelta::default()));
                }
                dstats.leaf_reevals += 1;
                self.all_vids()
            }
            PlanOp::Intersect(inputs) => {
                let Some(dirty) =
                    self.maintain_children(inputs, state, batch, dstats, scratch, tracker)?
                else {
                    return Ok(None);
                };
                if dirty.is_empty() {
                    return Ok(Some(ViewDelta::default()));
                }
                // Membership re-test for exactly the touched vids: a vid
                // is in the intersection iff it is in every child.
                let mut add = Vec::new();
                let mut del = Vec::new();
                for &v in &dirty {
                    let now = !state.children.is_empty()
                        && state.children.iter().all(|c| contains(&c.rows, v));
                    let was = contains(&state.rows, v);
                    match (was, now) {
                        (false, true) => add.push(v),
                        (true, false) => del.push(v),
                        _ => {}
                    }
                }
                sorted_union(&sorted_minus(&state.rows, &del), &add)
            }
            PlanOp::UnionOp(inputs) => {
                let Some(dirty) =
                    self.maintain_children(inputs, state, batch, dstats, scratch, tracker)?
                else {
                    return Ok(None);
                };
                if dirty.is_empty() {
                    return Ok(Some(ViewDelta::default()));
                }
                let mut add = Vec::new();
                let mut del = Vec::new();
                for &v in &dirty {
                    let now = state.children.iter().any(|c| contains(&c.rows, v));
                    let was = contains(&state.rows, v);
                    match (was, now) {
                        (false, true) => add.push(v),
                        (true, false) => del.push(v),
                        _ => {}
                    }
                }
                sorted_union(&sorted_minus(&state.rows, &del), &add)
            }
            PlanOp::Complement(exclude) => {
                let Some(delta) = self.maintain_view_node(
                    exclude,
                    &mut state.children[0],
                    batch,
                    dstats,
                    scratch,
                    tracker,
                )?
                else {
                    return Ok(None);
                };
                if delta.is_empty() && !batch.catalog {
                    return Ok(Some(ViewDelta::default()));
                }
                dstats.complement_rescans += 1;
                let excluded = &state.children[0].rows;
                self.all_vids()
                    .into_iter()
                    .filter(|v| !contains(excluded, *v))
                    .collect()
            }
            PlanOp::Relate {
                context,
                candidates,
                axis,
                strategy,
            } => {
                let (ctx_nodes, cand_nodes) = state.children.split_at_mut(1);
                let Some(ctx_delta) = self.maintain_view_node(
                    context,
                    &mut ctx_nodes[0],
                    batch,
                    dstats,
                    scratch,
                    tracker,
                )?
                else {
                    return Ok(None);
                };
                let Some(cand_delta) = self.maintain_view_node(
                    candidates,
                    &mut cand_nodes[0],
                    batch,
                    dstats,
                    scratch,
                    tracker,
                )?
                else {
                    return Ok(None);
                };
                let ctx_rows = &state.children[0].rows;
                if batch.structural || !ctx_delta.is_empty() || self.options().live_expansion {
                    // Bounded re-expansion: recompute this one node from
                    // its maintained children (live expansion can force
                    // lazy groups mid-walk, so it always re-expands).
                    dstats.relate_fallbacks += 1;
                    self.relate(
                        ctx_rows,
                        state.children[1].rows.clone(),
                        *axis,
                        *strategy,
                        scratch,
                        tracker,
                    )?
                } else {
                    // Reachability is untouched: kept rows stay kept,
                    // removed candidates leave, and only the *added*
                    // candidates need a (small-frontier) re-test.
                    dstats.relate_incremental += 1;
                    let mut rows = sorted_minus(&state.rows, &cand_delta.removed);
                    if !cand_delta.added.is_empty() {
                        let kept = self.relate(
                            ctx_rows,
                            cand_delta.added.clone(),
                            *axis,
                            *strategy,
                            scratch,
                            tracker,
                        )?;
                        rows = sorted_union(&rows, &kept);
                    }
                    rows
                }
            }
            // The planner only places joins at the root; a nested join
            // has no maintained pair state — escalate.
            PlanOp::HashJoin { .. } => return Ok(None),
        };
        let (added, removed) = diff_sorted(&state.rows, &new_rows);
        state.rows = new_rows;
        Ok(Some(ViewDelta { added, removed }))
    }

    /// Maintains every child of an n-ary node; returns the sorted,
    /// deduplicated union of all child deltas (the membership re-test
    /// set), or `None` if any child subtree cannot maintain.
    fn maintain_children(
        &self,
        inputs: &[PlanNode],
        state: &mut MaintainedNode,
        batch: &Batch,
        dstats: &mut DeltaStats,
        scratch: &mut ExecStats,
        tracker: &BudgetTracker,
    ) -> Result<Option<Vec<Vid>>> {
        let mut dirty: Vec<Vid> = Vec::new();
        for (input, child) in inputs.iter().zip(state.children.iter_mut()) {
            let Some(delta) =
                self.maintain_view_node(input, child, batch, dstats, scratch, tracker)?
            else {
                return Ok(None);
            };
            dirty.extend(delta.added);
            dirty.extend(delta.removed);
        }
        dirty.sort_unstable();
        dirty.dedup();
        Ok(Some(dirty))
    }

    /// Executes `plan` under `budget` and seeds a standing result from
    /// the run. A partial (budget-truncated) execution returns
    /// `(result, None)`: a subset must never become a standing result
    /// (the PR 7 cache gate, extended to subscriptions).
    pub fn execute_standing(
        &self,
        plan: &Plan,
        budget: QueryBudget,
    ) -> Result<(QueryResult, Option<MaintainedPlan>)> {
        let mut captured = Vec::new();
        let result = self.execute_plan_with(plan, budget, Some(&mut captured))?;
        if result.stats.partial {
            return Ok((result, None));
        }
        let standing = self.seed_maintained(plan, captured);
        Ok((result, standing))
    }
}

/// Rebuilds one maintained view node from a post-order capture.
fn build_node(node: &PlanNode, captured: &[ResultRows], pos: &mut usize) -> Option<MaintainedNode> {
    let mut children = Vec::new();
    match &node.op {
        PlanOp::IndexAccess(_) | PlanOp::Scan => {}
        PlanOp::Intersect(inputs) | PlanOp::UnionOp(inputs) => {
            for input in inputs {
                children.push(build_node(input, captured, pos)?);
            }
        }
        PlanOp::Complement(inner) => children.push(build_node(inner, captured, pos)?),
        PlanOp::Relate {
            context,
            candidates,
            ..
        } => {
            children.push(build_node(context, captured, pos)?);
            children.push(build_node(candidates, captured, pos)?);
        }
        PlanOp::HashJoin { .. } => return None,
    }
    let rows = match captured.get(*pos)? {
        ResultRows::Views(v) => v.clone(),
        ResultRows::Pairs(_) => return None,
    };
    *pos += 1;
    Some(MaintainedNode { rows, children })
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_index::IndexBundle;
    use std::sync::Arc;

    struct Fixture {
        store: Arc<ViewStore>,
        indexes: Arc<IndexBundle>,
        p: QueryProcessor,
        notes: Vid,
        papers: Vid,
    }

    /// A store + indexes + processor over a small tree:
    /// `papers/{draft.tex, notes.txt}` with phrases.
    fn fixture() -> Fixture {
        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(IndexBundle::new());
        let draft = store
            .build("draft.tex")
            .text("a dataspace vision draft")
            .insert();
        let notes = store.build("notes.txt").text("meeting notes").insert();
        let papers = store.build("papers").children(vec![draft, notes]).insert();
        for vid in store.vids() {
            indexes.index_view(&store, vid, "filesystem").unwrap();
        }
        let p = QueryProcessor::new(Arc::clone(&store), Arc::clone(&indexes));
        Fixture {
            store,
            indexes,
            p,
            notes,
            papers,
        }
    }

    fn stand(p: &QueryProcessor, iql: &str) -> MaintainedPlan {
        let plan = p.plan_iql(iql).unwrap();
        let (_, standing) = p.execute_standing(&plan, QueryBudget::none()).unwrap();
        standing.expect("full execution seeds")
    }

    fn assert_equivalent(p: &QueryProcessor, standing: &MaintainedPlan) {
        let fresh = p.execute_plan(standing.plan()).unwrap();
        assert_eq!(standing.rows(), fresh.rows, "maintained != recomputed");
    }

    #[test]
    fn leaf_delta_tracks_index_changes() {
        let f = fixture();
        let mut standing = stand(&f.p, r#""dataspace""#);
        assert_eq!(standing.rows().len(), 1);

        let rx = f.store.subscribe_records();
        let vid = f
            .store
            .build("new.tex")
            .text("another dataspace paper")
            .insert();
        f.indexes.index_view(&f.store, vid, "filesystem").unwrap();
        let records: Vec<ChangeRecord> = rx.try_iter().collect();
        assert!(!records.is_empty());

        let delta = f.p.maintain(&mut standing, &records).unwrap();
        assert_eq!(delta.added, ResultRows::Views(vec![vid]));
        assert!(delta.removed.is_empty());
        assert_equivalent(&f.p, &standing);
        assert!(standing.stats().leaf_reevals >= 1);
    }

    #[test]
    fn relate_maintains_incrementally_without_structural_changes() {
        let f = fixture();
        let mut standing = stand(&f.p, r#"//papers//*["dataspace"]"#);
        assert_eq!(standing.rows().len(), 1);

        let rx = f.store.subscribe_records();
        // A content change on an existing child flips it into the
        // result without touching group topology.
        f.store
            .set_content(f.notes, Content::text("dataspace meeting notes"))
            .unwrap();
        f.indexes
            .index_view(&f.store, f.notes, "filesystem")
            .unwrap();
        let records: Vec<ChangeRecord> = rx.try_iter().collect();

        let delta = f.p.maintain(&mut standing, &records).unwrap();
        assert_eq!(delta.added, ResultRows::Views(vec![f.notes]));
        assert_equivalent(&f.p, &standing);
        assert!(standing.stats().relate_incremental >= 1);
        assert_eq!(standing.stats().relate_fallbacks, 0);
    }

    #[test]
    fn structural_changes_use_bounded_reexpansion() {
        let f = fixture();
        let mut standing = stand(&f.p, r#"//papers//*["dataspace"]"#);

        let rx = f.store.subscribe_records();
        let extra = f
            .store
            .build("extra.tex")
            .text("dataspace appendix")
            .insert();
        f.store.add_group_member(f.papers, extra, false).unwrap();
        f.indexes.index_view(&f.store, extra, "filesystem").unwrap();
        f.indexes
            .index_view(&f.store, f.papers, "filesystem")
            .unwrap();
        let records: Vec<ChangeRecord> = rx.try_iter().collect();

        let delta = f.p.maintain(&mut standing, &records).unwrap();
        assert!(delta.added.views().contains(&extra));
        assert_equivalent(&f.p, &standing);
        assert!(standing.stats().relate_fallbacks >= 1);
    }

    #[test]
    fn maintenance_is_convergent_under_replay() {
        let f = fixture();
        let mut standing = stand(&f.p, r#""dataspace""#);
        let rx = f.store.subscribe_records();
        let vid = f.store.build("re.tex").text("dataspace again").insert();
        f.indexes.index_view(&f.store, vid, "filesystem").unwrap();
        let records: Vec<ChangeRecord> = rx.try_iter().collect();

        let first = f.p.maintain(&mut standing, &records).unwrap();
        assert!(!first.is_empty());
        // Replaying the same batch is a no-op: state, not ops.
        let second = f.p.maintain(&mut standing, &records).unwrap();
        assert!(second.is_empty());
        assert_equivalent(&f.p, &standing);
    }

    #[test]
    fn join_maintains_via_build_side_multimap() {
        let f = fixture();
        // Give the email subsystem a same-named attachment.
        let attach = f.store.build("draft.tex").text("attached copy").insert();
        let mail = f.store.build("mail").children(vec![attach]).insert();
        for vid in [attach, mail] {
            f.indexes.index_view(&f.store, vid, "imap").unwrap();
        }
        let iql = r#"join( //papers/* as A, //mail/* as B, A.name = B.name )"#;
        let mut standing = stand(&f.p, iql);
        assert_eq!(standing.rows().len(), 1);

        let rx = f.store.subscribe_records();
        // Renaming notes.txt to match the attachment adds a pair.
        f.store.set_name(f.notes, Some("draft.tex".into())).unwrap();
        f.indexes
            .index_view(&f.store, f.notes, "filesystem")
            .unwrap();
        let records: Vec<ChangeRecord> = rx.try_iter().collect();

        let delta = f.p.maintain(&mut standing, &records).unwrap();
        assert_eq!(delta.added.len(), 1);
        assert_equivalent(&f.p, &standing);
        assert!(standing.stats().join_maintained >= 1);
        assert_eq!(standing.stats().full_recomputes, 0);
    }

    #[test]
    fn partial_execution_never_seeds_standing_state() {
        let f = fixture();
        let p = &f.p;
        let plan = p.plan_iql(r#"//papers//*["dataspace"]"#).unwrap();
        let budget = QueryBudget {
            cancel_after_checks: Some(2),
            partial: true,
            ..QueryBudget::default()
        };
        let (result, standing) = p.execute_standing(&plan, budget).unwrap();
        assert!(result.stats.partial);
        assert!(standing.is_none(), "partial result seeded standing state");
    }
}
