//! Property-based tests: the iQL pipeline is total, predicates obey
//! boolean algebra over the catalog, and expansion strategies agree on
//! random graphs.

use std::sync::Arc;

use idm_core::prelude::*;
use idm_index::IndexBundle;
use idm_query::{parse, ExecOptions, ExpansionStrategy, QueryBudget, QueryProcessor, ResultRows};
use proptest::prelude::*;

proptest! {
    /// Lexer + parser never panic on arbitrary input.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// Everything the parser accepts, the executor evaluates without
    /// panicking (against an empty dataspace).
    #[test]
    fn executor_total_on_parsed_queries(input in "[a-zA-Z0-9/\\[\\]\"*?<>=. ]{0,80}") {
        if parse(&input).is_ok() {
            let store = Arc::new(ViewStore::new());
            let indexes = Arc::new(IndexBundle::new());
            let processor = QueryProcessor::new(store, indexes);
            let _ = processor.execute(&input);
        }
    }
}

/// A random small dataspace: named views with content words, sizes and
/// random group edges.
#[derive(Debug, Clone)]
struct SpaceSpec {
    views: Vec<(String, String, i64)>, // (name, content word, size)
    edges: Vec<(usize, usize)>,
}

fn arb_space() -> impl Strategy<Value = SpaceSpec> {
    (
        proptest::collection::vec(("[ab]{1,4}", "[cd]{1,3}", 0i64..100), 1..12),
        proptest::collection::vec((0usize..12, 0usize..12), 0..25),
    )
        .prop_map(|(views, edges)| SpaceSpec { views, edges })
}

fn build_space(spec: &SpaceSpec) -> (Arc<ViewStore>, Arc<IndexBundle>) {
    let store = Arc::new(ViewStore::new());
    let indexes = Arc::new(IndexBundle::new());
    let vids: Vec<Vid> = spec
        .views
        .iter()
        .map(|(name, word, size)| {
            store
                .build(name.clone())
                .tuple(TupleComponent::of(vec![("size", Value::Integer(*size))]))
                .text(word.clone())
                .insert()
        })
        .collect();
    let mut adjacency: std::collections::HashMap<Vid, Vec<Vid>> = Default::default();
    for (a, b) in &spec.edges {
        let (a, b) = (a % vids.len(), b % vids.len());
        adjacency.entry(vids[a]).or_default().push(vids[b]);
    }
    for (parent, children) in adjacency {
        store.set_group(parent, Group::of_set(children)).unwrap();
    }
    for vid in store.vids() {
        indexes.index_view(&store, vid, "test").unwrap();
    }
    (store, indexes)
}

proptest! {
    /// De Morgan over the catalog: NOT (a OR b) == (NOT a) AND (NOT b).
    #[test]
    fn de_morgan(space in arb_space(), w1 in "[cd]{1,3}", w2 in "[cd]{1,3}") {
        let (store, indexes) = build_space(&space);
        let processor = QueryProcessor::new(store, indexes);
        let lhs = processor
            .execute(&format!(r#"[not ("{w1}" or "{w2}")]"#))
            .unwrap()
            .rows;
        let rhs = processor
            .execute(&format!(r#"[not "{w1}" and not "{w2}"]"#))
            .unwrap()
            .rows;
        prop_assert_eq!(lhs, rhs);
    }

    /// AND is commutative; OR is idempotent.
    #[test]
    fn boolean_algebra(space in arb_space(), w1 in "[cd]{1,3}", w2 in "[cd]{1,3}") {
        let (store, indexes) = build_space(&space);
        let processor = QueryProcessor::new(store, indexes);
        let ab = processor.execute(&format!(r#"["{w1}" and "{w2}"]"#)).unwrap().rows;
        let ba = processor.execute(&format!(r#"["{w2}" and "{w1}"]"#)).unwrap().rows;
        prop_assert_eq!(ab, ba);
        let a = processor.execute(&format!(r#""{w1}""#)).unwrap().rows;
        let aa = processor.execute(&format!(r#"["{w1}" or "{w1}"]"#)).unwrap().rows;
        prop_assert_eq!(a, aa);
    }

    /// All three expansion strategies agree on random graphs for both
    /// descendant and child steps.
    #[test]
    fn strategies_agree_on_random_graphs(space in arb_space(),
                                         ctx in "[ab]{1,4}", target in "[ab]{1,4}") {
        let (store, indexes) = build_space(&space);
        for query in [
            format!("//{ctx}//{target}"),
            format!("//{ctx}/{target}"),
            format!("//{ctx}//*"),
            format!("//{ctx}/*"),
        ] {
            let mut results = Vec::new();
            for strategy in [
                ExpansionStrategy::Forward,
                ExpansionStrategy::Backward,
                ExpansionStrategy::Bidirectional,
            ] {
                let mut processor =
                    QueryProcessor::new(Arc::clone(&store), Arc::clone(&indexes));
                processor.set_expansion(strategy);
                results.push(processor.execute(&query).unwrap().rows);
            }
            prop_assert_eq!(&results[0], &results[1], "fwd vs bwd on {}", query);
            prop_assert_eq!(&results[0], &results[2], "fwd vs bidi on {}", query);
        }
    }

    /// `//a//b` results are exactly the b-named views reachable from
    /// some a-named view (checked against core graph traversal).
    #[test]
    fn descendant_step_semantics(space in arb_space(), ctx in "[ab]{1,4}", target in "[ab]{1,4}") {
        let (store, indexes) = build_space(&space);
        let processor = QueryProcessor::new(Arc::clone(&store), Arc::clone(&indexes));
        let got = processor
            .execute(&format!("//{ctx}//{target}"))
            .unwrap()
            .rows
            .views();

        let mut want: Vec<Vid> = Vec::new();
        for vid in store.vids() {
            if store.name(vid).unwrap().as_deref() != Some(target.as_str()) {
                continue;
            }
            let reachable = store.vids().into_iter().any(|src| {
                store.name(src).unwrap().as_deref() == Some(ctx.as_str())
                    && idm_core::graph::is_indirectly_related(&store, src, vid).unwrap()
            });
            if reachable {
                want.push(vid);
            }
        }
        want.sort();
        let mut got = got;
        got.sort();
        prop_assert_eq!(got, want);
    }

    /// Cancellation soundness (the resource-governance satellite): for a
    /// mixed Q1–Q8-shaped workload over random dataspaces, cancel at
    /// EVERY cooperative checkpoint (enumerated with a probe budget) and
    /// assert, at parallelism 1 and 4:
    ///
    /// - strict mode surfaces `ResourceExhausted` (never a panic, never
    ///   a hang — scoped threads always join, parking_lot locks cannot
    ///   poison);
    /// - partial mode returns a sound SUBSET of the true rows with the
    ///   plan/exec operator-count invariant intact;
    /// - the store's invariants still hold afterwards; and
    /// - an unbudgeted rerun on the SAME processor is identical to a
    ///   fresh unbudgeted baseline (no state corruption from the abort).
    #[test]
    fn cancellation_at_every_checkpoint_is_sound(space in arb_space(),
                                                 ctx in "[ab]{1,4}", target in "[ab]{1,4}") {
        let (store, indexes) = build_space(&space);
        let queries = [
            r#""c""#.to_string(),
            r#"["c" and "d"]"#.to_string(),
            "[size > 50]".to_string(),
            format!("//{ctx}//{target}"),
            format!("//{ctx}/*"),
            format!(r#"union( "{target}", //{ctx}//* )"#),
            r#"[not "c"]"#.to_string(),
            format!("join( //{ctx}//* as A, //{target}//* as B, A.name = B.name )"),
        ];
        for parallelism in [1usize, 4] {
            let with_budget = |budget: QueryBudget| {
                QueryProcessor::new(Arc::clone(&store), Arc::clone(&indexes)).with_options(
                    ExecOptions { parallelism, budget, ..ExecOptions::default() },
                )
            };
            for iql in &queries {
                let baseline = with_budget(QueryBudget::none()).execute(iql).unwrap();
                let plan = with_budget(QueryBudget::none()).plan_iql(iql).unwrap();
                // A probe budget (enabled tracker, limits never trip)
                // must not change the rows.
                let probed = with_budget(QueryBudget::probe()).execute(iql).unwrap();
                prop_assert_eq!(&probed.rows, &baseline.rows, "probe changed rows of {}", iql);
                let total = probed.stats.consumed.checkpoints;
                // Exhaustive for small checkpoint counts, sampled past 48
                // to bound runtime.
                let step = (total / 48).max(1);
                let mut k = 1;
                while k <= total {
                    let strict = with_budget(QueryBudget {
                        cancel_after_checks: Some(k),
                        ..QueryBudget::default()
                    });
                    let err = strict.execute(iql).unwrap_err();
                    prop_assert_eq!(
                        err.budget_kind(),
                        Some(idm_core::error::BudgetKind::Cancelled),
                        "strict cancel at {} of {}", k, iql
                    );
                    // The aborted processor is not poisoned: lifting the
                    // budget on the SAME processor reproduces baseline.
                    let mut strict = strict;
                    strict.set_budget(QueryBudget::none());
                    let rerun = strict.execute(iql).unwrap();
                    prop_assert_eq!(&rerun.rows, &baseline.rows, "rerun after abort at {}", k);

                    let partial = with_budget(QueryBudget {
                        cancel_after_checks: Some(k),
                        partial: true,
                        ..QueryBudget::default()
                    });
                    let r = partial.execute(iql).unwrap();
                    prop_assert!(r.stats.partial, "partial flag at {} of {}", k, iql);
                    prop_assert_eq!(
                        r.stats.ops, plan.operator_counts(),
                        "ops invariant under truncation at {} of {}", k, iql
                    );
                    match (&r.rows, &baseline.rows) {
                        (ResultRows::Views(sub), ResultRows::Views(full)) => {
                            for vid in sub {
                                prop_assert!(full.contains(vid), "superset row at {}", k);
                            }
                        }
                        (ResultRows::Pairs(sub), ResultRows::Pairs(full)) => {
                            for pair in sub {
                                prop_assert!(full.contains(pair), "superset pair at {}", k);
                            }
                        }
                        _ => prop_assert!(false, "row shape changed under truncation"),
                    }
                    k += step;
                }
            }
        }
        // The read path never mutated the store.
        let report = store.verify_invariants();
        prop_assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    /// Union over subqueries equals the set union of their results.
    #[test]
    fn union_semantics(space in arb_space(), w1 in "[cd]{1,3}", w2 in "[cd]{1,3}") {
        let (store, indexes) = build_space(&space);
        let processor = QueryProcessor::new(store, indexes);
        let union = processor
            .execute(&format!(r#"union( "{w1}", "{w2}" )"#))
            .unwrap()
            .rows
            .views();
        let mut manual: Vec<Vid> = processor
            .execute(&format!(r#""{w1}""#))
            .unwrap()
            .rows
            .views();
        manual.extend(processor.execute(&format!(r#""{w2}""#)).unwrap().rows.views());
        manual.sort();
        manual.dedup();
        prop_assert_eq!(union, manual);
    }
}
