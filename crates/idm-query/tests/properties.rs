//! Property-based tests: the iQL pipeline is total, predicates obey
//! boolean algebra over the catalog, and expansion strategies agree on
//! random graphs.

use std::sync::Arc;

use idm_core::prelude::*;
use idm_index::IndexBundle;
use idm_query::{parse, ExpansionStrategy, QueryProcessor};
use proptest::prelude::*;

proptest! {
    /// Lexer + parser never panic on arbitrary input.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// Everything the parser accepts, the executor evaluates without
    /// panicking (against an empty dataspace).
    #[test]
    fn executor_total_on_parsed_queries(input in "[a-zA-Z0-9/\\[\\]\"*?<>=. ]{0,80}") {
        if parse(&input).is_ok() {
            let store = Arc::new(ViewStore::new());
            let indexes = Arc::new(IndexBundle::new());
            let processor = QueryProcessor::new(store, indexes);
            let _ = processor.execute(&input);
        }
    }
}

/// A random small dataspace: named views with content words, sizes and
/// random group edges.
#[derive(Debug, Clone)]
struct SpaceSpec {
    views: Vec<(String, String, i64)>, // (name, content word, size)
    edges: Vec<(usize, usize)>,
}

fn arb_space() -> impl Strategy<Value = SpaceSpec> {
    (
        proptest::collection::vec(("[ab]{1,4}", "[cd]{1,3}", 0i64..100), 1..12),
        proptest::collection::vec((0usize..12, 0usize..12), 0..25),
    )
        .prop_map(|(views, edges)| SpaceSpec { views, edges })
}

fn build_space(spec: &SpaceSpec) -> (Arc<ViewStore>, Arc<IndexBundle>) {
    let store = Arc::new(ViewStore::new());
    let indexes = Arc::new(IndexBundle::new());
    let vids: Vec<Vid> = spec
        .views
        .iter()
        .map(|(name, word, size)| {
            store
                .build(name.clone())
                .tuple(TupleComponent::of(vec![("size", Value::Integer(*size))]))
                .text(word.clone())
                .insert()
        })
        .collect();
    let mut adjacency: std::collections::HashMap<Vid, Vec<Vid>> = Default::default();
    for (a, b) in &spec.edges {
        let (a, b) = (a % vids.len(), b % vids.len());
        adjacency.entry(vids[a]).or_default().push(vids[b]);
    }
    for (parent, children) in adjacency {
        store.set_group(parent, Group::of_set(children)).unwrap();
    }
    for vid in store.vids() {
        indexes.index_view(&store, vid, "test").unwrap();
    }
    (store, indexes)
}

proptest! {
    /// De Morgan over the catalog: NOT (a OR b) == (NOT a) AND (NOT b).
    #[test]
    fn de_morgan(space in arb_space(), w1 in "[cd]{1,3}", w2 in "[cd]{1,3}") {
        let (store, indexes) = build_space(&space);
        let processor = QueryProcessor::new(store, indexes);
        let lhs = processor
            .execute(&format!(r#"[not ("{w1}" or "{w2}")]"#))
            .unwrap()
            .rows;
        let rhs = processor
            .execute(&format!(r#"[not "{w1}" and not "{w2}"]"#))
            .unwrap()
            .rows;
        prop_assert_eq!(lhs, rhs);
    }

    /// AND is commutative; OR is idempotent.
    #[test]
    fn boolean_algebra(space in arb_space(), w1 in "[cd]{1,3}", w2 in "[cd]{1,3}") {
        let (store, indexes) = build_space(&space);
        let processor = QueryProcessor::new(store, indexes);
        let ab = processor.execute(&format!(r#"["{w1}" and "{w2}"]"#)).unwrap().rows;
        let ba = processor.execute(&format!(r#"["{w2}" and "{w1}"]"#)).unwrap().rows;
        prop_assert_eq!(ab, ba);
        let a = processor.execute(&format!(r#""{w1}""#)).unwrap().rows;
        let aa = processor.execute(&format!(r#"["{w1}" or "{w1}"]"#)).unwrap().rows;
        prop_assert_eq!(a, aa);
    }

    /// All three expansion strategies agree on random graphs for both
    /// descendant and child steps.
    #[test]
    fn strategies_agree_on_random_graphs(space in arb_space(),
                                         ctx in "[ab]{1,4}", target in "[ab]{1,4}") {
        let (store, indexes) = build_space(&space);
        for query in [
            format!("//{ctx}//{target}"),
            format!("//{ctx}/{target}"),
            format!("//{ctx}//*"),
            format!("//{ctx}/*"),
        ] {
            let mut results = Vec::new();
            for strategy in [
                ExpansionStrategy::Forward,
                ExpansionStrategy::Backward,
                ExpansionStrategy::Bidirectional,
            ] {
                let mut processor =
                    QueryProcessor::new(Arc::clone(&store), Arc::clone(&indexes));
                processor.set_expansion(strategy);
                results.push(processor.execute(&query).unwrap().rows);
            }
            prop_assert_eq!(&results[0], &results[1], "fwd vs bwd on {}", query);
            prop_assert_eq!(&results[0], &results[2], "fwd vs bidi on {}", query);
        }
    }

    /// `//a//b` results are exactly the b-named views reachable from
    /// some a-named view (checked against core graph traversal).
    #[test]
    fn descendant_step_semantics(space in arb_space(), ctx in "[ab]{1,4}", target in "[ab]{1,4}") {
        let (store, indexes) = build_space(&space);
        let processor = QueryProcessor::new(Arc::clone(&store), Arc::clone(&indexes));
        let got = processor
            .execute(&format!("//{ctx}//{target}"))
            .unwrap()
            .rows
            .views();

        let mut want: Vec<Vid> = Vec::new();
        for vid in store.vids() {
            if store.name(vid).unwrap().as_deref() != Some(target.as_str()) {
                continue;
            }
            let reachable = store.vids().into_iter().any(|src| {
                store.name(src).unwrap().as_deref() == Some(ctx.as_str())
                    && idm_core::graph::is_indirectly_related(&store, src, vid).unwrap()
            });
            if reachable {
                want.push(vid);
            }
        }
        want.sort();
        let mut got = got;
        got.sort();
        prop_assert_eq!(got, want);
    }

    /// Union over subqueries equals the set union of their results.
    #[test]
    fn union_semantics(space in arb_space(), w1 in "[cd]{1,3}", w2 in "[cd]{1,3}") {
        let (store, indexes) = build_space(&space);
        let processor = QueryProcessor::new(store, indexes);
        let union = processor
            .execute(&format!(r#"union( "{w1}", "{w2}" )"#))
            .unwrap()
            .rows
            .views();
        let mut manual: Vec<Vid> = processor
            .execute(&format!(r#""{w1}""#))
            .unwrap()
            .rows
            .views();
        manual.extend(processor.execute(&format!(r#""{w2}""#)).unwrap().rows.views());
        manual.sort();
        manual.dedup();
        prop_assert_eq!(union, manual);
    }
}
