//! Seeded property test for incremental view maintenance: interleave
//! random store mutations with delta maintenance of standing queries
//! spanning every maintainable plan shape (index leaves, intersection,
//! union, complement, relate expansion, hash join) and assert after
//! EVERY mutation, at parallelism 1 and 4, that the maintained rows are
//! byte-identical to a fresh recompute of the same plan. The generator
//! RNG is deterministic (seeded from the test name), so failures
//! reproduce exactly.

use std::sync::Arc;

use idm_core::prelude::*;
use idm_index::IndexBundle;
use idm_query::{ExecOptions, MaintainedPlan, QueryBudget, QueryProcessor};
use proptest::prelude::*;

/// A random dataspace plus a script of mutations to replay against it.
#[derive(Debug, Clone)]
struct Script {
    views: Vec<(String, String, i64)>, // (name, content word, size)
    edges: Vec<(usize, usize)>,
    mutations: Vec<Mutation>,
}

#[derive(Debug, Clone)]
struct Mutation {
    kind: usize,
    target: usize,
    other: usize,
    name: String,
    word: String,
    size: i64,
}

fn arb_script() -> impl Strategy<Value = Script> {
    (
        proptest::collection::vec(("[ab]{1,3}", "[cd]{1,2}", 0i64..100), 2..8),
        proptest::collection::vec((0usize..8, 0usize..8), 0..10),
        proptest::collection::vec(
            (
                0usize..6,
                0usize..16,
                0usize..16,
                "[ab]{1,3}",
                "[cd]{1,2}",
                0i64..100,
            ),
            1..12,
        ),
    )
        .prop_map(|(views, edges, muts)| Script {
            views,
            edges,
            mutations: muts
                .into_iter()
                .map(|(kind, target, other, name, word, size)| Mutation {
                    kind,
                    target,
                    other,
                    name,
                    word,
                    size,
                })
                .collect(),
        })
}

struct Space {
    store: Arc<ViewStore>,
    indexes: Arc<IndexBundle>,
    /// Vids still alive, in insertion order (mutation targets index it).
    alive: Vec<Vid>,
}

fn build_space(script: &Script) -> Space {
    let store = Arc::new(ViewStore::new());
    let indexes = Arc::new(IndexBundle::new());
    let alive: Vec<Vid> = script
        .views
        .iter()
        .map(|(name, word, size)| {
            store
                .build(name.clone())
                .tuple(TupleComponent::of(vec![("size", Value::Integer(*size))]))
                .text(word.clone())
                .insert()
        })
        .collect();
    for (a, b) in &script.edges {
        let (a, b) = (a % alive.len(), b % alive.len());
        // Self-loops and duplicate edges are rejected by the store;
        // that rejection is part of the surface under test.
        let _ = store.add_group_member(alive[a], alive[b], false);
    }
    for vid in store.vids() {
        indexes.index_view(&store, vid, "test").unwrap();
    }
    Space {
        store,
        indexes,
        alive,
    }
}

impl Space {
    /// Applies one mutation, keeping the indexes current the way the
    /// synchronization manager does (reindex every touched view).
    fn apply(&mut self, m: &Mutation) {
        if self.alive.is_empty() {
            return;
        }
        let target = self.alive[m.target % self.alive.len()];
        match m.kind {
            // Insert a fresh view (optionally wired under `other`).
            0 => {
                let vid = self
                    .store
                    .build(m.name.clone())
                    .tuple(TupleComponent::of(vec![("size", Value::Integer(m.size))]))
                    .text(m.word.clone())
                    .insert();
                let parent = self.alive[m.other % self.alive.len()];
                if self.store.add_group_member(parent, vid, false).is_ok() {
                    self.reindex(parent);
                }
                self.reindex(vid);
                self.alive.push(vid);
            }
            // Content change.
            1 => {
                self.store
                    .set_content(target, Content::text(m.word.clone()))
                    .unwrap();
                self.reindex(target);
            }
            // Rename.
            2 => {
                self.store.set_name(target, Some(m.name.clone())).unwrap();
                self.reindex(target);
            }
            // Tuple change.
            3 => {
                self.store
                    .set_tuple(
                        target,
                        Some(TupleComponent::of(vec![("size", Value::Integer(m.size))])),
                    )
                    .unwrap();
                self.reindex(target);
            }
            // New group edge (cycle/duplicate rejections are fine).
            4 => {
                let member = self.alive[m.other % self.alive.len()];
                if self.store.add_group_member(target, member, false).is_ok() {
                    self.reindex(target);
                }
            }
            // Removal: detach from every group first, then drop the
            // view from store and indexes.
            _ => {
                if self.alive.len() <= 1 {
                    return;
                }
                for parent in self.alive.clone() {
                    if parent == target {
                        continue;
                    }
                    let Ok(group) = self.store.group(parent) else {
                        continue;
                    };
                    if group.is_infinite() {
                        continue;
                    }
                    let members = group.finite_members();
                    if members.contains(&target) {
                        let kept: Vec<Vid> = members.into_iter().filter(|v| *v != target).collect();
                        self.store.set_group(parent, Group::of_set(kept)).unwrap();
                        self.reindex(parent);
                    }
                }
                self.indexes.remove_view(target);
                self.store.remove(target).unwrap();
                self.alive.retain(|v| *v != target);
            }
        }
    }

    fn reindex(&self, vid: Vid) {
        self.indexes.index_view(&self.store, vid, "test").unwrap();
    }
}

/// Standing queries covering every node shape the maintainer handles.
fn standing_queries(ctx: &str, target: &str) -> Vec<String> {
    vec![
        r#""c""#.to_string(),
        r#"["c" and "d"]"#.to_string(),
        r#"[not "c"]"#.to_string(),
        "[size > 50]".to_string(),
        format!("//{ctx}//{target}"),
        format!("//{ctx}/*"),
        format!(r#"union( "{target}", //{ctx}//* )"#),
        format!("join( //{ctx}//* as A, //{target}//* as B, A.name = B.name )"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence: maintained == recomputed after every
    /// mutation of a random script, for every standing query shape, at
    /// parallelism 1 and 4.
    #[test]
    fn maintained_results_equal_recompute_after_every_mutation(
        script in arb_script(), ctx in "[ab]{1,3}", target in "[ab]{1,3}"
    ) {
        for parallelism in [1usize, 4] {
            let mut space = build_space(&script);
            let processor = QueryProcessor::new(
                Arc::clone(&space.store),
                Arc::clone(&space.indexes),
            )
            .with_options(ExecOptions {
                parallelism,
                ..ExecOptions::default()
            });

            let mut standings: Vec<MaintainedPlan> = standing_queries(&ctx, &target)
                .iter()
                .map(|iql| {
                    let plan = processor.plan_iql(iql).unwrap();
                    let (_, standing) = processor
                        .execute_standing(&plan, QueryBudget::none())
                        .unwrap();
                    standing.expect("unbudgeted execution seeds standing state")
                })
                .collect();

            let rx = space.store.subscribe_records();
            for mutation in &script.mutations {
                space.apply(mutation);
                let records: Vec<ChangeRecord> = rx.try_iter().collect();
                for standing in &mut standings {
                    let before = standing.rows();
                    let delta = processor.maintain(standing, &records).unwrap();
                    let fresh = processor.execute_plan(standing.plan()).unwrap();
                    prop_assert_eq!(
                        standing.rows(),
                        fresh.rows,
                        "maintained != recomputed for '{}' after {:?} (parallelism {})",
                        standing.plan().render(),
                        mutation,
                        parallelism
                    );
                    prop_assert_eq!(
                        delta.total,
                        standing.rows().len(),
                        "delta total out of sync"
                    );
                    if delta.is_empty() {
                        prop_assert_eq!(before, standing.rows(), "empty delta changed the rows");
                    }
                }
            }

            // The read/maintain path never corrupted the store.
            let report = space.store.verify_invariants();
            prop_assert!(report.violations.is_empty(), "{:?}", report.violations);
        }
    }

    /// Replaying a batch the standing result already absorbed is a
    /// no-op (state-based maintenance is convergent), and a partial
    /// execution never seeds standing state — under random scripts, not
    /// just the unit fixtures.
    #[test]
    fn replay_is_idempotent_and_partial_never_seeds(
        script in arb_script(), ctx in "[ab]{1,3}", target in "[ab]{1,3}"
    ) {
        let mut space = build_space(&script);
        let processor = QueryProcessor::new(
            Arc::clone(&space.store),
            Arc::clone(&space.indexes),
        );

        let iql = format!(r#"union( "{target}", //{ctx}//* )"#);
        let plan = processor.plan_iql(&iql).unwrap();
        let (_, standing) = processor.execute_standing(&plan, QueryBudget::none()).unwrap();
        let mut standing = standing.expect("seeds");

        let rx = space.store.subscribe_records();
        for mutation in &script.mutations {
            space.apply(mutation);
        }
        let records: Vec<ChangeRecord> = rx.try_iter().collect();
        processor.maintain(&mut standing, &records).unwrap();
        let after_first = standing.rows();
        let replay = processor.maintain(&mut standing, &records).unwrap();
        prop_assert!(replay.is_empty(), "replay produced a delta");
        prop_assert_eq!(after_first, standing.rows());

        // A budget that cancels immediately yields partial state, which
        // must never become a standing result.
        let budget = QueryBudget {
            cancel_after_checks: Some(1),
            partial: true,
            ..QueryBudget::default()
        };
        let (result, seeded) = processor.execute_standing(&plan, budget).unwrap();
        if result.stats.partial {
            prop_assert!(seeded.is_none(), "partial execution seeded standing state");
        }
    }
}
