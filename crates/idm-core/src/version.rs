//! Dataspace versioning (Section 8, issue 1).
//!
//! "Logically, each change creates a new version of the whole dataspace."
//! Because iDM represents the entire dataspace in one model, versioning
//! reduces to recording, per change event, which view changed and what
//! its components looked like afterwards. The log is an observer of the
//! store's change events; a full historic dataspace version is then the
//! latest record of every view at or below a version number.

use std::collections::HashMap;

use crossbeam::channel::Receiver;

use crate::store::{ChangeEvent, ChangeKind, Vid, ViewRecord, ViewStore};

/// Monotonically increasing dataspace version number. Version 0 is the
/// empty dataspace; every change event bumps it by one.
pub type VersionNo = u64;

/// One versioned change.
#[derive(Debug, Clone)]
pub struct VersionEntry {
    /// The dataspace version this change created.
    pub version: VersionNo,
    /// The affected view.
    pub vid: Vid,
    /// What changed.
    pub kind: ChangeKind,
    /// The record after the change (`None` after removal).
    pub after: Option<ViewRecord>,
}

/// A version log attached to a store.
///
/// Events are captured by the store's pub/sub channel and folded into
/// the log by [`VersionLog::drain`]; call it at transaction boundaries
/// (the synchronization manager does so after each sync round).
pub struct VersionLog {
    rx: Receiver<ChangeEvent>,
    entries: Vec<VersionEntry>,
    by_vid: HashMap<Vid, Vec<usize>>,
}

impl VersionLog {
    /// Attaches a new log to a store. Only changes made *after* the
    /// attachment are recorded.
    pub fn attach(store: &ViewStore) -> Self {
        VersionLog {
            rx: store.subscribe(),
            entries: Vec::new(),
            by_vid: HashMap::new(),
        }
    }

    /// Folds all pending change events into the log, snapshotting the
    /// changed records from `store`. Returns the number of new versions.
    ///
    /// Snapshots are taken at drain time; draining at transaction
    /// boundaries makes each entry reflect a consistent dataspace state.
    pub fn drain(&mut self, store: &ViewStore) -> usize {
        let mut count = 0;
        while let Ok(event) = self.rx.try_recv() {
            let after = if event.kind == ChangeKind::Removed {
                None
            } else {
                store.record(event.vid).ok()
            };
            let version = self.entries.len() as VersionNo + 1;
            self.by_vid
                .entry(event.vid)
                .or_default()
                .push(self.entries.len());
            self.entries.push(VersionEntry {
                version,
                vid: event.vid,
                kind: event.kind,
                after,
            });
            count += 1;
        }
        count
    }

    /// The current dataspace version (number of recorded changes).
    pub fn current_version(&self) -> VersionNo {
        self.entries.len() as VersionNo
    }

    /// All changes to one view, oldest first.
    pub fn history(&self, vid: Vid) -> Vec<&VersionEntry> {
        self.by_vid
            .get(&vid)
            .map(|idxs| idxs.iter().map(|&i| &self.entries[i]).collect())
            .unwrap_or_default()
    }

    /// The record of `vid` as of dataspace version `version`
    /// (`None` if the view did not exist or was removed by then).
    pub fn record_at(&self, vid: Vid, version: VersionNo) -> Option<&ViewRecord> {
        self.by_vid.get(&vid).and_then(|idxs| {
            idxs.iter()
                .rev()
                .map(|&i| &self.entries[i])
                .find(|e| e.version <= version)
                .and_then(|e| e.after.as_ref())
        })
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[VersionEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_create_update_remove() {
        let store = ViewStore::new();
        let mut log = VersionLog::attach(&store);

        let vid = store.build("report.tex").insert();
        log.drain(&store);
        assert_eq!(log.current_version(), 1);

        store.set_name(vid, Some("report-v2.tex".into())).unwrap();
        log.drain(&store);
        assert_eq!(log.current_version(), 2);

        store.remove(vid).unwrap();
        assert_eq!(log.drain(&store), 1);

        let history = log.history(vid);
        assert_eq!(history.len(), 3);
        assert_eq!(history[0].kind, ChangeKind::Created);
        assert_eq!(history[2].kind, ChangeKind::Removed);
        assert!(history[2].after.is_none());
    }

    #[test]
    fn record_at_returns_historic_state() {
        let store = ViewStore::new();
        let mut log = VersionLog::attach(&store);
        let vid = store.build("a").insert();
        log.drain(&store); // v1: created as "a"
        store.set_name(vid, Some("b".into())).unwrap();
        log.drain(&store); // v2: renamed to "b"

        // Snapshots are taken at drain time, so v1 reflects the state at
        // its drain: "a".
        assert_eq!(log.record_at(vid, 1).unwrap().name.as_deref(), Some("a"));
        assert_eq!(log.record_at(vid, 2).unwrap().name.as_deref(), Some("b"));
        assert!(log.record_at(vid, 0).is_none());
        assert!(log.record_at(Vid::from_raw(99), 2).is_none());
    }

    #[test]
    fn changes_before_attach_are_invisible() {
        let store = ViewStore::new();
        let before = store.build("old").insert();
        let mut log = VersionLog::attach(&store);
        store.build("new").insert();
        log.drain(&store);
        assert_eq!(log.current_version(), 1);
        assert!(log.history(before).is_empty());
    }
}
