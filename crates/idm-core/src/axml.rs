//! ActiveXML as an iDM use-case (Section 4.3.1).
//!
//! ActiveXML enriches XML documents with calls to web services; when a
//! service is called, its result is inserted into the document. iDM
//! models this with a specialization `axml` of class `xmlelem` whose
//! group is `(∅, ⟨V_sc [, V_scresult]⟩)`: a service-call view and — only
//! after the service has been called — an optional result view.
//!
//! This module provides the service registry and the lazy call mechanics.
//! The service result is stored as raw XML in the result view's content
//! component; converting it into an XML subgraph is the job of the
//! Content2iDM converters in `idm-xml` (layering: the core model does not
//! parse formats).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::class::builtin::names;
use crate::content::Content;
use crate::error::{IdmError, Result};
use crate::group::Group;
use crate::store::{Vid, ViewStore};

/// A (simulated) web service invocable from an ActiveXML document.
pub trait WebService: Send + Sync {
    /// Executes the service and returns its XML result.
    fn call(&self, args: &str) -> Result<String>;
}

impl<F> WebService for F
where
    F: Fn(&str) -> Result<String> + Send + Sync,
{
    fn call(&self, args: &str) -> Result<String> {
        self(args)
    }
}

/// Registry of invocable services, keyed by endpoint name
/// (e.g. `web.server.com/GetDepartments`).
#[derive(Default)]
pub struct ServiceRegistry {
    services: RwLock<HashMap<String, Arc<dyn WebService>>>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ServiceRegistry::default()
    }

    /// Registers (or replaces) a service.
    pub fn register(&self, endpoint: impl Into<String>, service: Arc<dyn WebService>) {
        self.services.write().insert(endpoint.into(), service);
    }

    /// Invokes an endpoint.
    pub fn invoke(&self, endpoint: &str, args: &str) -> Result<String> {
        let service =
            self.services.read().get(endpoint).cloned().ok_or_else(|| {
                IdmError::provider(format!("no service registered at '{endpoint}'"))
            })?;
        service.call(args)
    }
}

/// A parsed service-call expression `endpoint(args)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceCall {
    /// The endpoint, e.g. `web.server.com/GetDepartments`.
    pub endpoint: String,
    /// The raw argument string (may be empty).
    pub args: String,
}

impl ServiceCall {
    /// Parses `web.server.com/GetDepartments()`-style call expressions.
    pub fn parse(expr: &str) -> Result<Self> {
        let expr = expr.trim();
        let open = expr.find('(').ok_or_else(|| IdmError::Parse {
            detail: format!("service call '{expr}' misses '('"),
        })?;
        if !expr.ends_with(')') {
            return Err(IdmError::Parse {
                detail: format!("service call '{expr}' misses ')'"),
            });
        }
        let endpoint = expr[..open].trim();
        if endpoint.is_empty() {
            return Err(IdmError::Parse {
                detail: "empty service endpoint".into(),
            });
        }
        Ok(ServiceCall {
            endpoint: endpoint.to_owned(),
            args: expr[open + 1..expr.len() - 1].trim().to_owned(),
        })
    }
}

/// Builds an AXML element view: class `axml`, named `name`, whose group
/// sequence holds a single `sc` view containing the call expression.
pub fn build_axml_element(store: &ViewStore, name: &str, call_expr: &str) -> Result<Vid> {
    // Validate the expression eagerly so malformed documents fail fast.
    ServiceCall::parse(call_expr)?;
    let sc_class = store.classes().require(names::SERVICE_CALL)?;
    let axml_class = store.classes().require(names::AXML)?;
    let sc = store
        .build("sc")
        .content(Content::text(call_expr))
        .class(sc_class)
        .insert();
    Ok(store
        .build(name)
        .group(Group::of_seq(vec![sc]))
        .class(axml_class)
        .insert())
}

/// Whether the AXML element already carries a materialized service result.
pub fn has_result(store: &ViewStore, axml: Vid) -> Result<bool> {
    let scresult = store.classes().require(names::SERVICE_RESULT)?;
    for member in store.group(axml)?.finite_members() {
        if let Some(class) = store.class(member)? {
            if store.classes().is_subclass(class, scresult) {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// Executes the element's service call (if not already executed) and
/// inserts the result view `V_scresult` into the element's group sequence,
/// exactly as ActiveXML inserts the call result into the document.
///
/// Returns the result view. Idempotent: a second call returns the
/// existing result without re-invoking the service.
pub fn materialize_result(store: &ViewStore, registry: &ServiceRegistry, axml: Vid) -> Result<Vid> {
    let sc_class = store.classes().require(names::SERVICE_CALL)?;
    let scresult_class = store.classes().require(names::SERVICE_RESULT)?;

    let members = store.group(axml)?.finite_members();
    let mut sc_view = None;
    for member in &members {
        match store.class(*member)? {
            Some(c) if store.classes().is_subclass(c, scresult_class) => return Ok(*member),
            Some(c) if store.classes().is_subclass(c, sc_class) && sc_view.is_none() => {
                sc_view = Some(*member);
            }
            _ => {}
        }
    }
    let sc_view = sc_view
        .ok_or_else(|| IdmError::provider(format!("view {axml} has no service-call child")))?;

    let expr = store.content(sc_view)?.text_lossy()?;
    let call = ServiceCall::parse(&expr)?;
    let xml = registry.invoke(&call.endpoint, &call.args)?;

    let result = store
        .build("scresult")
        .content(Content::text(xml))
        .class(scresult_class)
        .insert();
    store.add_group_member(axml, result, true)?;
    Ok(result)
}

/// Re-executes the element's service call and **replaces** the result
/// view's content with the fresh response — the building block of
/// ActiveXML's pub/sub mode (Section 4.3.1 notes the pub/sub features
/// "can also be instantiated in iDM"): a subscription is a periodic
/// refresh, and the store's change events notify downstream push
/// operators that the intensional data changed.
///
/// Returns the result view and whether its content actually changed.
pub fn refresh_result(
    store: &ViewStore,
    registry: &ServiceRegistry,
    axml: Vid,
) -> Result<(Vid, bool)> {
    let result = materialize_result(store, registry, axml)?;

    // Find the call expression again and re-invoke.
    let sc_class = store.classes().require(names::SERVICE_CALL)?;
    let mut expr = None;
    for member in store.group(axml)?.finite_members() {
        if let Some(class) = store.class(member)? {
            if store.classes().is_subclass(class, sc_class) {
                expr = Some(store.content(member)?.text_lossy()?);
                break;
            }
        }
    }
    let expr =
        expr.ok_or_else(|| IdmError::provider(format!("view {axml} has no service-call child")))?;
    let call = ServiceCall::parse(&expr)?;
    let fresh = registry.invoke(&call.endpoint, &call.args)?;

    let old = store.content(result)?.text_lossy()?;
    let changed = old != fresh;
    if changed {
        store.set_content(result, Content::text(fresh))?;
    }
    Ok((result, changed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn departments_service() -> Arc<dyn WebService> {
        Arc::new(|_args: &str| {
            Ok("<deplist><entry><name>Accounting</name></entry></deplist>".to_owned())
        })
    }

    #[test]
    fn parse_service_call() {
        let call = ServiceCall::parse("web.server.com/GetDepartments()").unwrap();
        assert_eq!(call.endpoint, "web.server.com/GetDepartments");
        assert_eq!(call.args, "");
        let call = ServiceCall::parse("svc/Echo( hello )").unwrap();
        assert_eq!(call.args, "hello");
        assert!(ServiceCall::parse("no-parens").is_err());
        assert!(ServiceCall::parse("(x)").is_err());
        assert!(ServiceCall::parse("svc(x").is_err());
    }

    #[test]
    fn paper_example_dep_element() {
        // The <dep> document from Section 4.3.1.
        let store = ViewStore::new();
        let registry = ServiceRegistry::new();
        registry.register("web.server.com/GetDepartments", departments_service());

        let dep = build_axml_element(&store, "dep", "web.server.com/GetDepartments()").unwrap();
        assert!(!has_result(&store, dep).unwrap());
        assert_eq!(store.group(dep).unwrap().finite_members().len(), 1);

        let result = materialize_result(&store, &registry, dep).unwrap();
        assert!(has_result(&store, dep).unwrap());
        let members = store.group(dep).unwrap();
        let data = members.finite().unwrap();
        assert_eq!(data.seq().len(), 2, "⟨V_sc, V_scresult⟩");
        assert_eq!(data.seq()[1], result);
        assert!(store
            .content(result)
            .unwrap()
            .text_lossy()
            .unwrap()
            .contains("Accounting"));
    }

    #[test]
    fn materialize_is_idempotent() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let store = ViewStore::new();
        let registry = ServiceRegistry::new();
        registry.register(
            "svc/Count",
            Arc::new(|_: &str| {
                CALLS.fetch_add(1, Ordering::SeqCst);
                Ok("<n/>".to_owned())
            }),
        );
        let elem = build_axml_element(&store, "e", "svc/Count()").unwrap();
        let r1 = materialize_result(&store, &registry, elem).unwrap();
        let r2 = materialize_result(&store, &registry, elem).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(CALLS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn refresh_detects_changes_and_notifies_subscribers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let store = ViewStore::new();
        let registry = ServiceRegistry::new();
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        registry.register(
            "svc/Departments",
            Arc::new(|_: &str| {
                let n = CALLS.fetch_add(1, Ordering::SeqCst);
                Ok(if n < 2 {
                    "<deplist><entry>Accounting</entry></deplist>".to_owned()
                } else {
                    "<deplist><entry>Accounting</entry><entry>Research</entry></deplist>".to_owned()
                })
            }),
        );

        let dep = build_axml_element(&store, "dep", "svc/Departments()").unwrap();
        let events = store.subscribe();
        let (result, changed) = refresh_result(&store, &registry, dep).unwrap();
        assert!(!changed, "first refresh after materialization: same data");

        // The remote data changes; the next refresh picks it up and the
        // store emits a content-change event (the pub/sub notification).
        let (result2, changed) = refresh_result(&store, &registry, dep).unwrap();
        assert_eq!(result, result2);
        assert!(changed);
        assert!(store
            .content(result)
            .unwrap()
            .text_lossy()
            .unwrap()
            .contains("Research"));
        let kinds: Vec<crate::store::ChangeKind> = events.try_iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&crate::store::ChangeKind::Content));
    }

    #[test]
    fn unknown_endpoint_errors() {
        let store = ViewStore::new();
        let registry = ServiceRegistry::new();
        let elem = build_axml_element(&store, "e", "svc/Missing()").unwrap();
        assert!(materialize_result(&store, &registry, elem).is_err());
    }
}
