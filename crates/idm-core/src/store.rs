//! The resource view store: the physical home of a resource view graph.
//!
//! Views are identified by [`Vid`]s; group components reference other views
//! by `Vid`, which lets the store represent arbitrary directed graphs —
//! trees, DAGs and cyclic graphs (`Projects → PIM → All Projects →
//! Projects` in Figure 1) — without reference-counting cycles.
//!
//! The store realizes the paper's lazy-computation contract (Section 4.1):
//! every component getter may trigger on-demand computation, and a view's
//! record hides *how, when and where* its components are produced. The
//! store also emits change events so push-based stream operators
//! (Section 4.4.2) can subscribe to component updates.

use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use crate::class::{ClassId, ClassRegistry};
use crate::content::Content;
use crate::durability::group_commit::{BulkWalScope, GroupCommitWal};
use crate::durability::record::{ChangeRecord, SerialContent, SerialGroup, SerialView};
use crate::durability::wal::WalStats;
use crate::error::{IdmError, Result};
use crate::group::{Group, GroupData, LazyGroup, ViewSequenceSource};
use crate::value::TupleComponent;

/// Identifier of a resource view within one [`ViewStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vid(u64);

impl Vid {
    /// Sentinel used internally where no view is applicable.
    pub(crate) const INVALID: Vid = Vid(u64::MAX);

    /// Constructs a Vid from a raw index (tests and serialization only).
    pub fn from_raw(raw: u64) -> Self {
        Vid(raw)
    }

    /// The raw index.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The four components of one resource view `V = (η, τ, χ, γ)` plus its
/// optional resource view class.
#[derive(Debug, Clone, Default)]
pub struct ViewRecord {
    /// The name component `η` (`None` = empty).
    pub name: Option<String>,
    /// The tuple component `τ` (`None` = empty).
    pub tuple: Option<TupleComponent>,
    /// The content component `χ`.
    pub content: Content,
    /// The group component `γ`.
    pub group: Group,
    /// The resource view class this view claims, if any.
    pub class: Option<ClassId>,
}

/// What changed about a view (for push-based subscribers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// The view was inserted.
    Created,
    /// The name component changed.
    Name,
    /// The tuple component changed.
    Tuple,
    /// The content component changed.
    Content,
    /// The group component changed (including incremental member adds).
    Group,
    /// The view was removed.
    Removed,
}

/// A change notification delivered to subscribers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChangeEvent {
    /// The affected view.
    pub vid: Vid,
    /// What changed.
    pub kind: ChangeKind,
}

/// Snapshot of a group component as seen by a reader.
#[derive(Clone)]
pub enum GroupSnapshot {
    /// A finite group (possibly empty), fully materialized.
    Finite(Arc<GroupData>),
    /// An infinite sequence; pull elements via the source.
    Infinite(Arc<dyn ViewSequenceSource>),
}

impl GroupSnapshot {
    /// The finite members, or an error for infinite groups.
    pub fn finite(&self) -> Result<&GroupData> {
        match self {
            GroupSnapshot::Finite(data) => Ok(data),
            GroupSnapshot::Infinite(_) => Err(IdmError::InfiniteComponent {
                detail: "group component is an infinite sequence".into(),
            }),
        }
    }

    /// The finite members as a vector; empty for infinite groups.
    /// Use when traversals should simply skip stream tails.
    pub fn finite_members(&self) -> Vec<Vid> {
        match self {
            GroupSnapshot::Finite(data) => data.members().collect(),
            GroupSnapshot::Infinite(_) => Vec::new(),
        }
    }

    /// Whether the group is infinite.
    pub fn is_infinite(&self) -> bool {
        matches!(self, GroupSnapshot::Infinite(_))
    }
}

static EMPTY_GROUP: once::Lazy<Arc<GroupData>> = once::Lazy::new(|| Arc::new(GroupData::default()));

/// Minimal lazy-static helper (avoids a dependency for one cell).
mod once {
    use std::sync::OnceLock;

    pub struct Lazy<T> {
        cell: OnceLock<T>,
        init: fn() -> T,
    }

    impl<T> Lazy<T> {
        pub const fn new(init: fn() -> T) -> Self {
            Lazy {
                cell: OnceLock::new(),
                init,
            }
        }
    }

    impl<T> std::ops::Deref for Lazy<T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.cell.get_or_init(self.init)
        }
    }
}

/// One stored record plus its mutation version. The version starts at 0 on
/// insert and increments on every in-place mutation, letting caches validate
/// entries keyed by `(Vid, version)` without holding store locks.
struct Slot {
    record: ViewRecord,
    version: u64,
}

/// One lock shard. Views map to shards by the low bits of their `Vid`, so
/// consecutive insertions spread round-robin across shards and concurrent
/// readers/writers of unrelated views never contend on the same lock.
struct Shard {
    slots: RwLock<Vec<Option<Slot>>>,
}

/// The resource view store.
///
/// Internally the store is split into a power-of-two number of lock shards
/// (default: the number of available CPUs, rounded up). A view with id `v`
/// lives in shard `v & (shards-1)` at slot `v >> shard_bits`; ids are handed
/// out by a single atomic counter, so `Vid` order is still insertion order.
pub struct ViewStore {
    shards: Box<[Shard]>,
    shard_bits: u32,
    next_vid: AtomicU64,
    classes: Arc<ClassRegistry>,
    subscribers: Mutex<Vec<Sender<ChangeEvent>>>,
    /// Subscribers to the full logical change records (the same records
    /// the WAL persists). Incremental view maintenance consumes these;
    /// the flag keeps the fan-out free for stores nobody watches.
    record_subscribers: Mutex<Vec<Sender<ChangeRecord>>>,
    record_fanout: std::sync::atomic::AtomicBool,
    /// The attached write-ahead log, if this store is durable. Mutators
    /// append their change record under the shard write lock, so WAL
    /// order per view matches commit order.
    wal: RwLock<Option<Arc<GroupCommitWal>>>,
}

/// Default shard count: available parallelism rounded up to a power of two,
/// capped so tiny stores do not pay for hundreds of locks.
fn default_shard_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .next_power_of_two()
        .min(64)
}

impl ViewStore {
    /// A store with the built-in class registry (Table 1 classes).
    pub fn new() -> Self {
        ViewStore::with_registry(Arc::new(ClassRegistry::with_builtins()))
    }

    /// A store with a caller-provided class registry.
    pub fn with_registry(classes: Arc<ClassRegistry>) -> Self {
        ViewStore::with_registry_and_shards(classes, default_shard_count())
    }

    /// A store with an explicit shard count (rounded up to a power of two).
    pub fn with_shards(shards: usize) -> Self {
        ViewStore::with_registry_and_shards(Arc::new(ClassRegistry::with_builtins()), shards)
    }

    /// A store with a caller-provided registry and shard count.
    pub fn with_registry_and_shards(classes: Arc<ClassRegistry>, shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        let shards = (0..count)
            .map(|_| Shard {
                slots: RwLock::new(Vec::new()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ViewStore {
            shards,
            shard_bits: count.trailing_zeros(),
            next_vid: AtomicU64::new(0),
            classes,
            subscribers: Mutex::new(Vec::new()),
            record_subscribers: Mutex::new(Vec::new()),
            record_fanout: std::sync::atomic::AtomicBool::new(false),
            wal: RwLock::new(None),
        }
    }

    /// Attaches a WAL sink: every mutation from now on is logged.
    pub(crate) fn set_wal(&self, wal: Arc<GroupCommitWal>) {
        *self.wal.write() = Some(wal);
    }

    /// Detaches the WAL writer (e.g. after a failed attach).
    pub(crate) fn clear_wal(&self) {
        *self.wal.write() = None;
    }

    /// Whether mutations are currently being logged.
    pub fn wal_armed(&self) -> bool {
        self.wal.read().is_some()
    }

    /// Appends a record to the attached WAL, if any. Append errors are
    /// not surfaced here — the writer goes sticky-dead and the next
    /// checkpoint (or explicit health check) reports the failure; the
    /// in-memory mutation has already committed either way.
    fn wal_append(&self, record: &ChangeRecord) {
        let wal = self.wal.read().clone();
        if let Some(wal) = wal {
            let _ = wal.append(record);
        }
    }

    /// Appends a whole batch of records as one group commit (one
    /// buffered write, one covering sync). Same error discipline as
    /// [`ViewStore::wal_append`]: failures go sticky-dead on the writer.
    fn wal_append_batch(&self, records: &[ChangeRecord]) {
        let wal = self.wal.read().clone();
        if let Some(wal) = wal {
            let _ = wal.append_batch(records);
        }
    }

    /// Opens a bulk-ingest WAL window: while the returned scope is
    /// alive, individual appends defer their covering sync to batch
    /// boundaries and to [`BulkWalScope::finish`]. Returns `None` when
    /// the store is not durable (nothing to defer).
    pub fn wal_bulk_scope(&self) -> Option<BulkWalScope> {
        self.wal.read().as_ref().map(|wal| wal.begin_bulk())
    }

    /// Write-path telemetry of the attached WAL (frames, syncs, group
    /// sizes); `None` when the store is not durable.
    pub fn wal_telemetry(&self) -> Option<WalStats> {
        self.wal.read().as_ref().map(|wal| wal.stats())
    }

    /// The class registry.
    pub fn classes(&self) -> &Arc<ClassRegistry> {
        &self.classes
    }

    /// The number of lock shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, vid: Vid) -> &Shard {
        &self.shards[(vid.0 & (self.shards.len() as u64 - 1)) as usize]
    }

    fn slot_of(&self, vid: Vid) -> usize {
        (vid.0 >> self.shard_bits) as usize
    }

    /// Number of live views.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.slots.read().iter().filter(|n| n.is_some()).count())
            .sum()
    }

    /// Whether the store holds no views.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All live view ids, in insertion order.
    pub fn vids(&self) -> Vec<Vid> {
        let mut vids: Vec<Vid> = Vec::new();
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            let slots = shard.slots.read();
            vids.extend(slots.iter().enumerate().filter_map(|(slot, n)| {
                n.as_ref()
                    .map(|_| Vid(((slot as u64) << self.shard_bits) | shard_idx as u64))
            }));
        }
        // Vids are allocated by one monotone counter, so numeric order is
        // insertion order even though we collected shard-major.
        vids.sort_unstable();
        vids
    }

    /// Whether a view exists.
    pub fn contains(&self, vid: Vid) -> bool {
        self.shard_of(vid)
            .slots
            .read()
            .get(self.slot_of(vid))
            .is_some_and(Option::is_some)
    }

    /// Inserts a view record, returning its new id.
    pub fn insert(&self, record: ViewRecord) -> Vid {
        let vid = Vid(self.next_vid.fetch_add(1, Ordering::Relaxed));
        let slot_idx = self.slot_of(vid);
        let wal_rec = (self.wal_armed() || self.records_wanted()).then(|| ChangeRecord::Insert {
            vid: vid.0,
            view: SerialView::of(&record, &self.classes),
        });
        {
            let mut slots = self.shard_of(vid).slots.write();
            if slots.len() <= slot_idx {
                slots.resize_with(slot_idx + 1, || None);
            }
            slots[slot_idx] = Some(Slot { record, version: 0 });
            if let Some(rec) = wal_rec.as_ref() {
                self.wal_append(rec);
            }
        }
        self.emit(vid, ChangeKind::Created);
        if let Some(rec) = wal_rec {
            self.emit_record(rec);
        }
        vid
    }

    /// Inserts a batch of view records under one shard-lock acquisition
    /// per involved shard and one WAL group commit for the whole batch.
    /// Vids are handed out contiguously by the same monotone counter as
    /// [`ViewStore::insert`], so numeric order is still insertion order
    /// and a bulk load produces the same store image as the equivalent
    /// sequence of single inserts.
    ///
    /// Shard write locks are taken in ascending shard-index order — the
    /// same order `frozen_export` uses — so a bulk insert can never
    /// deadlock against a checkpoint freeze, and the batch commits
    /// atomically with respect to snapshots.
    pub fn insert_batch(&self, records: Vec<ViewRecord>) -> Vec<Vid> {
        if records.is_empty() {
            return Vec::new();
        }
        let n = records.len() as u64;
        let base = self.next_vid.fetch_add(n, Ordering::Relaxed);
        let vids: Vec<Vid> = (base..base + n).map(Vid).collect();
        let armed = self.wal_armed();
        let want_recs = armed || self.records_wanted();
        let mut wal_recs = Vec::with_capacity(if want_recs { records.len() } else { 0 });

        let mask = self.shards.len() as u64 - 1;
        let mut involved: Vec<usize> = vids.iter().map(|v| (v.0 & mask) as usize).collect();
        involved.sort_unstable();
        involved.dedup();
        let mut guard_pos = vec![usize::MAX; self.shards.len()];
        for (pos, &shard) in involved.iter().enumerate() {
            guard_pos[shard] = pos;
        }

        {
            let mut guards: Vec<_> = involved
                .iter()
                .map(|&i| self.shards[i].slots.write())
                .collect();
            for (vid, record) in vids.iter().zip(records) {
                if want_recs {
                    wal_recs.push(ChangeRecord::Insert {
                        vid: vid.0,
                        view: SerialView::of(&record, &self.classes),
                    });
                }
                let slots = &mut guards[guard_pos[(vid.0 & mask) as usize]];
                let slot_idx = self.slot_of(*vid);
                if slots.len() <= slot_idx {
                    slots.resize_with(slot_idx + 1, || None);
                }
                slots[slot_idx] = Some(Slot { record, version: 0 });
            }
            if armed {
                self.wal_append_batch(&wal_recs);
            }
        }
        for &vid in &vids {
            self.emit(vid, ChangeKind::Created);
        }
        for rec in wal_recs {
            self.emit_record(rec);
        }
        vids
    }

    /// Re-inserts a view at an explicit id during recovery: no WAL
    /// logging, no change event, version restored as given. The vid
    /// allocator is advanced past `vid` so future inserts never collide.
    pub(crate) fn restore_insert(&self, vid: Vid, record: ViewRecord, version: u64) -> Result<()> {
        self.next_vid.fetch_max(vid.0 + 1, Ordering::Relaxed);
        let slot_idx = self.slot_of(vid);
        let mut slots = self.shard_of(vid).slots.write();
        if slots.len() <= slot_idx {
            slots.resize_with(slot_idx + 1, || None);
        }
        if slots[slot_idx].is_some() {
            return Err(IdmError::Parse {
                detail: format!("duplicate {vid} during recovery"),
            });
        }
        slots[slot_idx] = Some(Slot { record, version });
        Ok(())
    }

    /// Advances the vid allocator to at least `next` (recovery: a
    /// snapshot's allocator may sit past the highest live vid when views
    /// were removed — their ids must never be reused).
    pub(crate) fn force_next_vid(&self, next: u64) {
        self.next_vid.fetch_max(next, Ordering::Relaxed);
    }

    /// Recovery application of a [`ChangeRecord::GroupForced`] record:
    /// upgrades the stored group handle to the materialized members
    /// without a version bump (forcing is a read, not a mutation).
    pub(crate) fn apply_group_forced(&self, vid: Vid, data: GroupData) -> Result<()> {
        let slot_idx = self.slot_of(vid);
        let mut slots = self.shard_of(vid).slots.write();
        let slot = slots
            .get_mut(slot_idx)
            .and_then(Option::as_mut)
            .ok_or(IdmError::UnknownVid(vid))?;
        slot.record.group = Group::Materialized(Arc::new(data));
        Ok(())
    }

    /// Starts a builder for ergonomic view construction.
    pub fn build(&self, name: impl Into<String>) -> ViewBuilder<'_> {
        ViewBuilder::named(self, name)
    }

    /// Starts a builder for a view with an empty name component.
    pub fn build_unnamed(&self) -> ViewBuilder<'_> {
        ViewBuilder::unnamed(self)
    }

    /// Removes a view. Dangling references from other groups are allowed
    /// by the model (a dataspace is never globally consistent); traversals
    /// skip missing members.
    pub fn remove(&self, vid: Vid) -> Result<ViewRecord> {
        let slot_idx = self.slot_of(vid);
        let record = {
            let mut slots = self.shard_of(vid).slots.write();
            let slot = slots.get_mut(slot_idx).ok_or(IdmError::UnknownVid(vid))?;
            let record = slot.take().ok_or(IdmError::UnknownVid(vid))?.record;
            self.wal_append(&ChangeRecord::Remove { vid: vid.0 });
            record
        };
        self.emit(vid, ChangeKind::Removed);
        self.emit_record(ChangeRecord::Remove { vid: vid.0 });
        Ok(record)
    }

    fn with_slot<T>(&self, vid: Vid, f: impl FnOnce(&Slot) -> T) -> Result<T> {
        let slots = self.shard_of(vid).slots.read();
        slots
            .get(self.slot_of(vid))
            .and_then(Option::as_ref)
            .map(f)
            .ok_or(IdmError::UnknownVid(vid))
    }

    fn with_record<T>(&self, vid: Vid, f: impl FnOnce(&ViewRecord) -> T) -> Result<T> {
        self.with_slot(vid, |s| f(&s.record))
    }

    /// The view's mutation version: 0 at insert, incremented by every
    /// in-place mutation. Caches key entries by `(Vid, version)` and treat
    /// a version change as invalidation.
    pub fn version(&self, vid: Vid) -> Result<u64> {
        self.with_slot(vid, |s| s.version)
    }

    /// Borrow-based access to the name `η` without cloning the `String`.
    pub fn with_name<T>(&self, vid: Vid, f: impl FnOnce(Option<&str>) -> T) -> Result<T> {
        self.with_record(vid, |r| f(r.name.as_deref()))
    }

    /// Borrow-based access to the tuple `τ` without cloning attributes.
    pub fn with_tuple<T>(
        &self,
        vid: Vid,
        f: impl FnOnce(Option<&TupleComponent>) -> T,
    ) -> Result<T> {
        self.with_record(vid, |r| f(r.tuple.as_ref()))
    }

    /// `getNameComponent()`: the name `η`, `None` if empty.
    pub fn name(&self, vid: Vid) -> Result<Option<String>> {
        self.with_record(vid, |r| r.name.clone())
    }

    /// `getTupleComponent()`: the tuple `τ`, `None` if empty.
    pub fn tuple(&self, vid: Vid) -> Result<Option<TupleComponent>> {
        self.with_record(vid, |r| r.tuple.clone())
    }

    /// `getContentComponent()`: a handle to the content `χ`.
    ///
    /// The handle is cheap to clone; materialization (for intensional
    /// content) happens when the caller reads bytes from it.
    pub fn content(&self, vid: Vid) -> Result<Content> {
        self.with_record(vid, |r| r.content.clone())
    }

    /// `getGroupComponent()`: the group `γ`, forcing intensional groups.
    ///
    /// This is the call that turns e.g. the contents of a LaTeX file into
    /// an iDM subgraph on first access (Section 4.1). The provider runs
    /// *outside* the store lock so that it can insert child views.
    pub fn group(&self, vid: Vid) -> Result<GroupSnapshot> {
        let handle = self.with_record(vid, |r| r.group.clone())?;
        match handle {
            Group::Empty => Ok(GroupSnapshot::Finite(Arc::clone(&EMPTY_GROUP))),
            Group::Materialized(data) => Ok(GroupSnapshot::Finite(data)),
            Group::Lazy(lazy) => {
                // Attribute force failures to the view being expanded so a
                // failed lazy force is traceable in logs and reports.
                let data = lazy.force(self, vid).map_err(|e| e.with_vid(vid))?;
                self.promote_forced_group(vid, &lazy, &data);
                Ok(GroupSnapshot::Finite(data))
            }
            Group::InfiniteSeq(source) => Ok(GroupSnapshot::Infinite(source)),
        }
    }

    /// The raw group handle without forcing (introspection, indexing).
    pub fn group_handle(&self, vid: Vid) -> Result<Group> {
        self.with_record(vid, |r| r.group.clone())
    }

    /// The class the view claims, if any.
    pub fn class(&self, vid: Vid) -> Result<Option<ClassId>> {
        self.with_record(vid, |r| r.class)
    }

    /// The name of the view's class, if any.
    pub fn class_name(&self, vid: Vid) -> Result<Option<String>> {
        Ok(self.class(vid)?.map(|c| self.classes.name(c)))
    }

    /// Whether the view conforms to (a specialization of) the named class.
    pub fn conforms_to(&self, vid: Vid, class_name: &str) -> Result<bool> {
        let Some(target) = self.classes.lookup(class_name) else {
            return Ok(false);
        };
        Ok(self
            .class(vid)?
            .is_some_and(|c| self.classes.is_subclass(c, target)))
    }

    /// A full snapshot of the record (components cloned as handles).
    pub fn record(&self, vid: Vid) -> Result<ViewRecord> {
        self.with_record(vid, Clone::clone)
    }

    fn mutate(
        &self,
        vid: Vid,
        kind: ChangeKind,
        f: impl FnOnce(&mut ViewRecord),
        wal_rec: Option<ChangeRecord>,
    ) -> Result<()> {
        let slot_idx = self.slot_of(vid);
        {
            let mut slots = self.shard_of(vid).slots.write();
            let slot = slots
                .get_mut(slot_idx)
                .and_then(Option::as_mut)
                .ok_or(IdmError::UnknownVid(vid))?;
            f(&mut slot.record);
            slot.version += 1;
            if let Some(rec) = wal_rec.as_ref() {
                self.wal_append(rec);
            }
        }
        self.emit(vid, kind);
        if let Some(rec) = wal_rec {
            self.emit_record(rec);
        }
        Ok(())
    }

    /// Replaces the name component.
    pub fn set_name(&self, vid: Vid, name: Option<String>) -> Result<()> {
        let wal_rec = (self.wal_armed() || self.records_wanted()).then(|| ChangeRecord::SetName {
            vid: vid.0,
            name: name.clone(),
        });
        self.mutate(vid, ChangeKind::Name, |r| r.name = name, wal_rec)
    }

    /// Replaces the tuple component.
    pub fn set_tuple(&self, vid: Vid, tuple: Option<TupleComponent>) -> Result<()> {
        let wal_rec = (self.wal_armed() || self.records_wanted()).then(|| ChangeRecord::SetTuple {
            vid: vid.0,
            tuple: tuple.clone(),
        });
        self.mutate(vid, ChangeKind::Tuple, |r| r.tuple = tuple, wal_rec)
    }

    /// Replaces the content component.
    pub fn set_content(&self, vid: Vid, content: Content) -> Result<()> {
        let wal_rec =
            (self.wal_armed() || self.records_wanted()).then(|| ChangeRecord::SetContent {
                vid: vid.0,
                content: SerialContent::of(&content),
            });
        self.mutate(vid, ChangeKind::Content, |r| r.content = content, wal_rec)
    }

    /// Replaces the group component.
    pub fn set_group(&self, vid: Vid, group: Group) -> Result<()> {
        let wal_rec = (self.wal_armed() || self.records_wanted()).then(|| ChangeRecord::SetGroup {
            vid: vid.0,
            group: SerialGroup::of(&group),
        });
        self.mutate(vid, ChangeKind::Group, |r| r.group = group, wal_rec)
    }

    /// Replaces the class.
    pub fn set_class(&self, vid: Vid, class: Option<ClassId>) -> Result<()> {
        let wal_rec = (self.wal_armed() || self.records_wanted()).then(|| ChangeRecord::SetClass {
            vid: vid.0,
            class: class.map(|c| self.classes.name(c)),
        });
        self.mutate(vid, ChangeKind::Tuple, |r| r.class = class, wal_rec)
    }

    /// Adds a member to a finite group component in place (used e.g. when
    /// an ActiveXML service result is inserted next to its service call).
    ///
    /// `ordered` selects the sequence `Q` (true) or the set `S` (false).
    /// Lazy groups are forced first; infinite groups reject the operation.
    ///
    /// The update is atomic under concurrency: the new group is computed
    /// outside the shard locks (so lazy forcing can insert child views)
    /// and committed only if the view's version is still the one the
    /// snapshot was taken at, retrying otherwise. Concurrent adders to the
    /// same parent therefore never lose each other's members.
    pub fn add_group_member(&self, vid: Vid, member: Vid, ordered: bool) -> Result<()> {
        loop {
            let version = self.version(vid)?;
            let snapshot = self.group(vid)?;
            let data = snapshot.finite()?;
            let mut set: Vec<Vid> = data.set().to_vec();
            let mut seq: Vec<Vid> = data.seq().to_vec();
            if ordered {
                seq.push(member);
            } else {
                set.push(member);
            }
            let new_data = GroupData::new(set, seq).map_err(|_| IdmError::GroupOverlap(vid))?;
            let committed = {
                let slot_idx = self.slot_of(vid);
                let mut slots = self.shard_of(vid).slots.write();
                let slot = slots
                    .get_mut(slot_idx)
                    .and_then(Option::as_mut)
                    .ok_or(IdmError::UnknownVid(vid))?;
                if slot.version == version {
                    slot.record.group = Group::Materialized(Arc::new(new_data));
                    slot.version += 1;
                    self.wal_append(&ChangeRecord::AddGroupMember {
                        vid: vid.0,
                        member: member.0,
                        ordered,
                    });
                    true
                } else {
                    false
                }
            };
            if committed {
                self.emit(vid, ChangeKind::Group);
                self.emit_record(ChangeRecord::AddGroupMember {
                    vid: vid.0,
                    member: member.0,
                    ordered,
                });
                return Ok(());
            }
        }
    }

    /// Subscribes to change events (push-based protocol, Section 4.4.2).
    pub fn subscribe(&self) -> Receiver<ChangeEvent> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Subscribes to the full logical [`ChangeRecord`] stream — the same
    /// records the WAL persists, carrying the changed component values
    /// rather than just a [`ChangeKind`]. Incremental view maintenance
    /// (standing queries, the result cache) consumes this. Only records
    /// committed after subscription flow; construction of the records is
    /// skipped entirely while nobody is subscribed and no WAL is armed.
    pub fn subscribe_records(&self) -> Receiver<ChangeRecord> {
        let (tx, rx) = unbounded();
        self.record_subscribers.lock().push(tx);
        self.record_fanout.store(true, Ordering::Release);
        rx
    }

    /// Whether any record subscriber is attached (cheap check mutators
    /// use to decide whether to construct a [`ChangeRecord`] at all).
    fn records_wanted(&self) -> bool {
        self.record_fanout.load(Ordering::Acquire)
    }

    fn emit(&self, vid: Vid, kind: ChangeKind) {
        let mut subs = self.subscribers.lock();
        if subs.is_empty() {
            return;
        }
        let event = ChangeEvent { vid, kind };
        subs.retain(|tx| tx.send(event).is_ok());
    }

    fn emit_record(&self, record: ChangeRecord) {
        if !self.records_wanted() {
            return;
        }
        let mut subs = self.record_subscribers.lock();
        subs.retain(|tx| tx.send(record.clone()).is_ok());
        if subs.is_empty() {
            // Every receiver is gone; stop building records on the next
            // mutation (a later subscribe_records re-arms the flag).
            self.record_fanout.store(false, Ordering::Release);
        }
    }

    /// When a lazy group is first forced on a durable store, upgrade the
    /// stored handle to the materialized members and log the edge set.
    /// Without this a crash would lose child edges created by a
    /// converter force (the lazy cache dies with the process). No
    /// version bump: forcing is a read, the group *value* is unchanged.
    fn promote_forced_group(&self, vid: Vid, lazy: &Arc<LazyGroup>, data: &Arc<GroupData>) {
        if !self.wal_armed() && !self.records_wanted() {
            return;
        }
        let mut forced = None;
        {
            let slot_idx = self.slot_of(vid);
            let mut slots = self.shard_of(vid).slots.write();
            let Some(slot) = slots.get_mut(slot_idx).and_then(Option::as_mut) else {
                return;
            };
            // Only promote the handle we actually forced — a concurrent
            // set_group may have replaced it, and that mutation (already
            // logged) wins.
            match &slot.record.group {
                Group::Lazy(current) if Arc::ptr_eq(current, lazy) => {
                    slot.record.group = Group::Materialized(Arc::clone(data));
                    let rec = ChangeRecord::GroupForced {
                        vid: vid.0,
                        set: data.set().iter().map(|v| v.0).collect(),
                        seq: data.seq().iter().map(|v| v.0).collect(),
                    };
                    self.wal_append(&rec);
                    forced = Some(rec);
                }
                _ => {}
            }
        }
        if let Some(rec) = forced {
            self.emit_record(rec);
        }
    }

    /// Runs `f` with *every* shard read-locked — a frozen, globally
    /// consistent image of the store — and returns the exported state
    /// alongside `f`'s result. Checkpoints use the closure to rotate the
    /// WAL (and on first attach, to write the initial snapshot and arm
    /// logging) at an exact record boundary: no mutation can commit
    /// between the export and whatever `f` does.
    pub fn frozen_export<R>(&self, f: impl FnOnce(&StoreExport) -> R) -> (StoreExport, R) {
        let guards: Vec<_> = self.shards.iter().map(|s| s.slots.read()).collect();
        let mut views = Vec::new();
        for (shard_idx, slots) in guards.iter().enumerate() {
            for (slot_idx, entry) in slots.iter().enumerate() {
                if let Some(slot) = entry {
                    let vid = Vid(((slot_idx as u64) << self.shard_bits) | shard_idx as u64);
                    views.push((vid, slot.version, slot.record.clone()));
                }
            }
        }
        views.sort_unstable_by_key(|(vid, _, _)| *vid);
        let export = StoreExport {
            next_vid: self.next_vid.load(Ordering::Relaxed),
            views,
        };
        let result = f(&export);
        drop(guards);
        (export, result)
    }

    /// Checks the structural invariants of the store and reports on
    /// them. Violations (hard failures): a group whose `S` contains
    /// duplicates or whose `S ∩ Q ≠ ∅`. Warnings (allowed by the model,
    /// Section 4.2 — a dataspace is never globally consistent): group
    /// edges pointing at missing views, which traversals skip. Only
    /// already-materialized groups are inspected; verification never
    /// forces intensional work.
    pub fn verify_invariants(&self) -> InvariantReport {
        let vids = self.vids();
        let live: HashSet<Vid> = vids.iter().copied().collect();
        let mut report = InvariantReport {
            views: vids.len(),
            violations: Vec::new(),
            dangling_edges: 0,
            versions: Vec::new(),
        };
        for vid in vids {
            let Ok((version, group)) = self.with_slot(vid, |s| (s.version, s.record.group.clone()))
            else {
                continue; // removed between vids() and here
            };
            report.versions.push((vid, version));
            let data = match &group {
                Group::Materialized(data) => Some(Arc::clone(data)),
                Group::Lazy(lazy) => lazy.peek(),
                Group::Empty | Group::InfiniteSeq(_) => None,
            };
            let Some(data) = data else { continue };
            let set: HashSet<Vid> = data.set().iter().copied().collect();
            if set.len() != data.set().len() {
                report
                    .violations
                    .push(format!("{vid}: duplicate members in set S"));
            }
            for member in data.seq() {
                if set.contains(member) {
                    report
                        .violations
                        .push(format!("{vid}: member {member} in both S and Q"));
                    break;
                }
            }
            report.dangling_edges += data.members().filter(|m| !live.contains(m)).count();
        }
        report
    }
}

/// A frozen, consistent image of the store, as captured by
/// [`ViewStore::frozen_export`].
#[derive(Debug)]
pub struct StoreExport {
    /// The vid allocator position at freeze time.
    pub next_vid: u64,
    /// Every live view as `(vid, version, record)`, vid-ascending.
    pub views: Vec<(Vid, u64, ViewRecord)>,
}

/// The result of [`ViewStore::verify_invariants`].
#[derive(Debug, Clone)]
pub struct InvariantReport {
    /// Number of live views inspected.
    pub views: usize,
    /// Hard invariant violations (`S ∩ Q ≠ ∅`, duplicates in `S`).
    pub violations: Vec<String>,
    /// Group edges pointing at missing views — allowed by the model
    /// (traversals skip them), reported for diagnostics.
    pub dangling_edges: usize,
    /// Per-view mutation versions at inspection time, vid-ascending.
    pub versions: Vec<(Vid, u64)>,
}

impl InvariantReport {
    /// Whether no hard violation was found.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether every view present in `earlier` is either gone now or at
    /// a version at least as high — i.e. version counters only moved
    /// forward between the two inspections.
    pub fn monotone_since(&self, earlier: &InvariantReport) -> bool {
        let now: std::collections::HashMap<Vid, u64> = self.versions.iter().copied().collect();
        earlier
            .versions
            .iter()
            .all(|(vid, v)| now.get(vid).is_none_or(|cur| cur >= v))
    }
}

impl Default for ViewStore {
    fn default() -> Self {
        ViewStore::new()
    }
}

impl fmt::Debug for ViewStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ViewStore")
            .field("views", &self.len())
            .finish()
    }
}

/// Fluent builder for inserting views.
pub struct ViewBuilder<'a> {
    store: &'a ViewStore,
    record: ViewRecord,
}

impl<'a> ViewBuilder<'a> {
    fn named(store: &'a ViewStore, name: impl Into<String>) -> Self {
        ViewBuilder {
            store,
            record: ViewRecord {
                name: Some(name.into()),
                ..ViewRecord::default()
            },
        }
    }

    fn unnamed(store: &'a ViewStore) -> Self {
        ViewBuilder {
            store,
            record: ViewRecord::default(),
        }
    }

    /// Sets the tuple component.
    pub fn tuple(mut self, tuple: TupleComponent) -> Self {
        self.record.tuple = Some(tuple);
        self
    }

    /// Sets the content component.
    pub fn content(mut self, content: Content) -> Self {
        self.record.content = content;
        self
    }

    /// Sets finite textual content.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.record.content = Content::text(text);
        self
    }

    /// Sets the group component.
    pub fn group(mut self, group: Group) -> Self {
        self.record.group = group;
        self
    }

    /// Sets unordered group members.
    pub fn children(mut self, set: Vec<Vid>) -> Self {
        self.record.group = Group::of_set(set);
        self
    }

    /// Sets ordered group members.
    pub fn sequence(mut self, seq: Vec<Vid>) -> Self {
        self.record.group = Group::of_seq(seq);
        self
    }

    /// Sets the class by id.
    pub fn class(mut self, class: ClassId) -> Self {
        self.record.class = Some(class);
        self
    }

    /// Sets the class by name, erroring on unknown classes at insert time.
    pub fn class_named(mut self, name: &str) -> Self {
        self.record.class = self.store.classes().lookup(name);
        debug_assert!(
            self.record.class.is_some(),
            "unknown resource view class '{name}'"
        );
        self
    }

    /// Inserts the view, returning its id.
    pub fn insert(self) -> Vid {
        self.store.insert(self.record)
    }

    /// Returns the built record without inserting it — for collecting a
    /// batch to hand to [`ViewStore::insert_batch`].
    pub fn into_record(self) -> ViewRecord {
        self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::builtin::names;
    use crate::value::{Timestamp, Value};

    fn fs_tuple(size: i64) -> TupleComponent {
        TupleComponent::of(vec![
            ("size", Value::Integer(size)),
            ("creation time", Value::Date(Timestamp(0))),
            ("last modified time", Value::Date(Timestamp(100))),
        ])
    }

    #[test]
    fn insert_and_read_components() {
        let store = ViewStore::new();
        let vid = store
            .build("PIM")
            .tuple(fs_tuple(4096))
            .class_named(names::FOLDER)
            .insert();
        assert_eq!(store.name(vid).unwrap().as_deref(), Some("PIM"));
        assert_eq!(
            store.tuple(vid).unwrap().unwrap().get("size"),
            Some(&Value::Integer(4096))
        );
        assert!(store.content(vid).unwrap().is_empty());
        assert!(store.group(vid).unwrap().finite().unwrap().is_empty());
        assert_eq!(
            store.class_name(vid).unwrap().as_deref(),
            Some(names::FOLDER)
        );
    }

    #[test]
    fn cyclic_graph_from_figure_1() {
        // Projects → PIM → All Projects → Projects forms a cycle.
        let store = ViewStore::new();
        let projects = store.build("Projects").insert();
        let all_projects = store
            .build("All Projects")
            .children(vec![projects])
            .insert();
        let pim = store.build("PIM").children(vec![all_projects]).insert();
        store.set_group(projects, Group::of_set(vec![pim])).unwrap();

        // Walk the cycle: Projects → PIM → All Projects → Projects.
        let g = store.group(projects).unwrap().finite_members();
        assert_eq!(g, vec![pim]);
        let g = store.group(pim).unwrap().finite_members();
        assert_eq!(g, vec![all_projects]);
        let g = store.group(all_projects).unwrap().finite_members();
        assert_eq!(g, vec![projects]);
    }

    #[test]
    fn lazy_group_forces_once_and_creates_children() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let store = ViewStore::new();
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let provider = Arc::new(|store: &ViewStore, _owner: Vid| {
            CALLS.fetch_add(1, Ordering::SeqCst);
            let child = store.build("Introduction").text("lazy section").insert();
            Ok(GroupData::of_seq(vec![child]))
        });
        let file = store
            .build("vldb2006.tex")
            .group(Group::lazy(provider))
            .insert();
        assert_eq!(store.len(), 1, "child not created before first access");

        let members = store.group(file).unwrap().finite_members();
        assert_eq!(members.len(), 1);
        assert_eq!(store.len(), 2);
        assert_eq!(
            store.name(members[0]).unwrap().as_deref(),
            Some("Introduction")
        );

        let again = store.group(file).unwrap().finite_members();
        assert_eq!(again, members);
        assert_eq!(CALLS.load(Ordering::SeqCst), 1, "provider ran once");
        assert_eq!(store.len(), 2, "no duplicate children");
    }

    #[test]
    fn remove_leaves_dangling_references_skippable() {
        let store = ViewStore::new();
        let child = store.build("doc").insert();
        let parent = store.build("folder").children(vec![child]).insert();
        store.remove(child).unwrap();
        assert!(!store.contains(child));
        let members = store.group(parent).unwrap().finite_members();
        assert_eq!(members, vec![child], "reference remains");
        assert!(store.name(child).is_err(), "resolution fails gracefully");
    }

    #[test]
    fn change_events_reach_subscribers() {
        let store = ViewStore::new();
        let rx = store.subscribe();
        let vid = store.build("inbox").insert();
        store.set_name(vid, Some("INBOX".into())).unwrap();
        store.remove(vid).unwrap();
        let kinds: Vec<ChangeKind> = rx.try_iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![ChangeKind::Created, ChangeKind::Name, ChangeKind::Removed]
        );
    }

    #[test]
    fn record_subscribers_see_logical_changes_in_commit_order() {
        let store = ViewStore::new();
        // Mutations before subscription build no records at all.
        let early = store.build("before").insert();
        let rx = store.subscribe_records();
        let vid = store.build("doc").text("body").insert();
        store.set_name(vid, Some("renamed".into())).unwrap();
        store.add_group_member(vid, early, false).unwrap();
        store.remove(early).unwrap();
        let records: Vec<ChangeRecord> = rx.try_iter().collect();
        assert_eq!(records.len(), 4);
        assert!(
            matches!(&records[0], ChangeRecord::Insert { vid: v, .. } if *v == vid.as_u64()),
            "{records:?}"
        );
        assert!(
            matches!(&records[1], ChangeRecord::SetName { vid: v, name: Some(n) }
                if *v == vid.as_u64() && n == "renamed")
        );
        assert!(
            matches!(&records[2], ChangeRecord::AddGroupMember { vid: v, member, ordered: false }
                if *v == vid.as_u64() && *member == early.as_u64())
        );
        assert!(matches!(&records[3], ChangeRecord::Remove { vid: v } if *v == early.as_u64()));

        // Dropping the receiver turns fan-out back off.
        drop(rx);
        store.set_content(vid, Content::text("again")).unwrap();
        assert!(!store.records_wanted());
    }

    #[test]
    fn batch_inserts_fan_out_one_record_per_view() {
        let store = ViewStore::new();
        let rx = store.subscribe_records();
        let records = vec![
            store.build("a").into_record(),
            store.build("b").into_record(),
            store.build("c").into_record(),
        ];
        let vids = store.insert_batch(records);
        let seen: Vec<u64> = rx
            .try_iter()
            .map(|r| match r {
                ChangeRecord::Insert { vid, .. } => vid,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        assert_eq!(seen, vids.iter().map(|v| v.as_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn add_group_member_preserves_disjointness() {
        let store = ViewStore::new();
        let a = store.build("a").insert();
        let parent = store.build("p").children(vec![a]).insert();
        // Adding `a` again to the sequence would violate S ∩ Q = ∅.
        assert!(store.add_group_member(parent, a, true).is_err());
        // Adding to the set dedups silently (it is a set).
        store.add_group_member(parent, a, false).unwrap();
        assert_eq!(store.group(parent).unwrap().finite_members(), vec![a]);
    }

    #[test]
    fn conforms_to_walks_hierarchy() {
        let store = ViewStore::new();
        let vid = store
            .build("feed.xml")
            .tuple(fs_tuple(10))
            .class_named(names::XMLFILE)
            .insert();
        assert!(store.conforms_to(vid, names::XMLFILE).unwrap());
        assert!(store.conforms_to(vid, names::FILE).unwrap());
        assert!(!store.conforms_to(vid, names::FOLDER).unwrap());
        assert!(!store.conforms_to(vid, "not-a-class").unwrap());
    }

    #[test]
    fn mutations_on_removed_views_error() {
        let store = ViewStore::new();
        let vid = store.build("x").insert();
        store.remove(vid).unwrap();
        assert!(store.set_name(vid, Some("y".into())).is_err());
        assert!(store.set_content(vid, Content::text("z")).is_err());
        assert!(store.set_group(vid, Group::Empty).is_err());
        assert!(store.set_class(vid, None).is_err());
        assert!(store.add_group_member(vid, vid, false).is_err());
    }

    #[test]
    fn add_group_member_to_infinite_group_rejected() {
        struct Never;
        impl crate::group::ViewSequenceSource for Never {
            fn try_next(&self, _s: &ViewStore) -> crate::error::Result<Option<Vid>> {
                Ok(None)
            }
        }
        let store = ViewStore::new();
        let stream = store
            .build_unnamed()
            .group(Group::infinite(Arc::new(Never)))
            .insert();
        let member = store.build("m").insert();
        assert!(matches!(
            store.add_group_member(stream, member, true),
            Err(IdmError::InfiniteComponent { .. })
        ));
    }

    #[test]
    fn group_snapshot_infinite_reports_itself() {
        struct Never;
        impl crate::group::ViewSequenceSource for Never {
            fn try_next(&self, _s: &ViewStore) -> crate::error::Result<Option<Vid>> {
                Ok(None)
            }
        }
        let store = ViewStore::new();
        let stream = store
            .build_unnamed()
            .group(Group::infinite(Arc::new(Never)))
            .insert();
        let snapshot = store.group(stream).unwrap();
        assert!(snapshot.is_infinite());
        assert!(snapshot.finite().is_err());
        assert!(snapshot.finite_members().is_empty());
    }

    #[test]
    fn builder_unnamed_and_class_by_id() {
        let store = ViewStore::new();
        let class = store.classes().lookup(names::FILE).unwrap();
        let vid = store
            .build_unnamed()
            .tuple(fs_tuple(1))
            .text("x")
            .class(class)
            .insert();
        assert!(store.name(vid).unwrap().is_none());
        assert_eq!(store.class(vid).unwrap(), Some(class));
    }

    #[test]
    fn sharded_store_preserves_insertion_order() {
        for shards in [1usize, 2, 4, 8] {
            let store = ViewStore::with_shards(shards);
            assert_eq!(store.shard_count(), shards);
            let mut inserted = Vec::new();
            for i in 0..100 {
                inserted.push(store.build(format!("v{i}")).insert());
            }
            assert_eq!(store.vids(), inserted, "vids() is insertion order");
            assert_eq!(store.len(), 100);
            // Removal leaves order of the remainder intact.
            store.remove(inserted[3]).unwrap();
            store.remove(inserted[97]).unwrap();
            let mut expect = inserted.clone();
            expect.retain(|v| *v != inserted[3] && *v != inserted[97]);
            assert_eq!(store.vids(), expect);
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ViewStore::with_shards(3).shard_count(), 4);
        assert_eq!(ViewStore::with_shards(0).shard_count(), 1);
        assert!(ViewStore::new().shard_count().is_power_of_two());
    }

    #[test]
    fn versions_track_mutations() {
        let store = ViewStore::new();
        let vid = store.build("x").insert();
        assert_eq!(store.version(vid).unwrap(), 0);
        store.set_name(vid, Some("y".into())).unwrap();
        assert_eq!(store.version(vid).unwrap(), 1);
        store.set_content(vid, Content::text("z")).unwrap();
        assert_eq!(store.version(vid).unwrap(), 2);
        let member = store.build("m").insert();
        store.add_group_member(vid, member, false).unwrap();
        assert_eq!(store.version(vid).unwrap(), 3);
        // Reads do not bump the version.
        let _ = store.group(vid).unwrap();
        assert_eq!(store.version(vid).unwrap(), 3);
    }

    #[test]
    fn borrow_accessors_match_cloning_accessors() {
        let store = ViewStore::new();
        let vid = store.build("doc").tuple(fs_tuple(7)).insert();
        assert_eq!(
            store.with_name(vid, |n| n.map(str::to_owned)).unwrap(),
            store.name(vid).unwrap()
        );
        let size = store
            .with_tuple(vid, |t| t.and_then(|t| t.get("size").cloned()))
            .unwrap();
        assert_eq!(size, Some(Value::Integer(7)));
        assert!(store.with_name(Vid::from_raw(999), |_| ()).is_err());
    }

    #[test]
    fn unknown_vid_errors() {
        let store = ViewStore::new();
        let ghost = Vid::from_raw(999);
        assert!(matches!(store.name(ghost), Err(IdmError::UnknownVid(_))));
        assert!(store.remove(ghost).is_err());
    }
}
