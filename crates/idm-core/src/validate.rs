//! Conformance checking of views against resource view classes (Def. 2).
//!
//! When a view claims class `C` it must satisfy the constraints of `C`
//! *and of every generalization of `C`* (Section 3.1: obeying a class
//! means obeying all its generalizations).

use crate::class::{ChildClasses, ClassId, Constraints, Emptiness, Finiteness, SchemaConstraint};
use crate::error::{IdmError, Result};
use crate::group::Group;
use crate::store::{Vid, ViewStore};

/// How to treat intensional components during validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationMode {
    /// Do not force lazy components: a lazy group/content is assumed
    /// non-empty and finite (it logically *is* data; we just have not
    /// computed it). Cheap; suitable for registration-time checks.
    #[default]
    Shallow,
    /// Force lazy groups and check the materialized members, including
    /// restriction 4 (classes of directly related views).
    Deep,
}

/// Validates that `vid` conforms to the class it claims.
///
/// Views without a class vacuously conform (schema-never modeling).
pub fn validate(store: &ViewStore, vid: Vid, mode: ValidationMode) -> Result<()> {
    match store.class(vid)? {
        Some(class) => validate_as(store, vid, class, mode),
        None => Ok(()),
    }
}

/// Validates that `vid` conforms to `class` (regardless of what the view
/// itself claims) and to all of that class's generalizations.
pub fn validate_as(
    store: &ViewStore,
    vid: Vid,
    class: ClassId,
    mode: ValidationMode,
) -> Result<()> {
    for ancestor in store.classes().ancestry(class) {
        let def = store
            .classes()
            .def(ancestor)
            .ok_or_else(|| IdmError::UnknownClass(format!("{ancestor}")))?;
        check_constraints(store, vid, ancestor, &def.constraints, mode).map_err(|detail| {
            IdmError::Conformance {
                vid,
                class: def.name.clone(),
                detail,
            }
        })?;
    }
    Ok(())
}

fn check_emptiness(
    rule: Emptiness,
    is_empty: bool,
    component: &str,
) -> std::result::Result<(), String> {
    match rule {
        Emptiness::Any => Ok(()),
        Emptiness::MustBeEmpty if is_empty => Ok(()),
        Emptiness::MustBeEmpty => Err(format!("{component} component must be empty")),
        Emptiness::MustBeNonEmpty if !is_empty => Ok(()),
        Emptiness::MustBeNonEmpty => Err(format!("{component} component must be non-empty")),
    }
}

fn check_constraints(
    store: &ViewStore,
    vid: Vid,
    _class: ClassId,
    c: &Constraints,
    mode: ValidationMode,
) -> std::result::Result<(), String> {
    let record = store.record(vid).map_err(|e| e.to_string())?;

    // 1. Emptiness of η, τ, χ, γ.
    check_emptiness(
        c.name,
        record.name.as_deref().unwrap_or("").is_empty(),
        "name",
    )?;
    check_emptiness(c.tuple, record.tuple.is_none(), "tuple")?;
    check_emptiness(c.content, record.content.is_empty(), "content")?;
    check_emptiness(c.group, record.group.is_empty(), "group")?;

    // 2. Schema of τ.
    match &c.tuple_schema {
        SchemaConstraint::Any => {}
        SchemaConstraint::Exact(want) => {
            let got = record.tuple.as_ref().map(|t| t.schema());
            if got != Some(want) {
                return Err("tuple schema does not match the exact class schema".into());
            }
        }
        SchemaConstraint::Covers(want) => match record.tuple.as_ref() {
            Some(t) if t.schema().covers(want) => {}
            Some(_) => return Err("tuple schema misses required class attributes".into()),
            None => return Err("class requires a tuple component with a schema".into()),
        },
    }

    // 3. Finiteness of χ and γ.
    match c.content_finiteness {
        Finiteness::Any => {}
        Finiteness::Finite if record.content.is_finite() => {}
        Finiteness::Finite => return Err("content component must be finite".into()),
        Finiteness::Infinite if !record.content.is_finite() => {}
        Finiteness::Infinite => return Err("content component must be infinite".into()),
    }
    match c.group_finiteness {
        Finiteness::Any => {}
        Finiteness::Finite if record.group.is_finite() => {}
        Finiteness::Finite => return Err("group component must be finite".into()),
        Finiteness::Infinite if !record.group.is_finite() => {}
        Finiteness::Infinite => return Err("group component must be infinite".into()),
    }

    // Member-ordering and child-class restrictions need the members.
    let needs_members = c.ordered_members.is_some() || c.child_classes != ChildClasses::Any;
    if !needs_members {
        return Ok(());
    }
    match &record.group {
        Group::Empty => Ok(()),
        Group::InfiniteSeq(_) => {
            // An infinite sequence lives entirely in Q, so it satisfies
            // ordered_members = Some(true) and violates Some(false).
            if c.ordered_members == Some(false) {
                return Err("group members must be unordered (set S) but are a sequence".into());
            }
            // Child classes of an infinite stream are checked per-element
            // by the stream machinery as elements arrive, not here.
            Ok(())
        }
        Group::Lazy(lazy) => {
            if mode == ValidationMode::Shallow && !lazy.is_materialized() {
                return Ok(()); // don't force during shallow validation
            }
            let data = lazy.force(store, vid).map_err(|e| e.to_string())?;
            check_members(store, c, data.set(), data.seq())
        }
        Group::Materialized(data) => check_members(store, c, data.set(), data.seq()),
    }
}

fn check_members(
    store: &ViewStore,
    c: &Constraints,
    set: &[Vid],
    seq: &[Vid],
) -> std::result::Result<(), String> {
    match c.ordered_members {
        Some(true) if !set.is_empty() => {
            return Err(
                "group members must be ordered (sequence Q) but the set S is non-empty".into(),
            )
        }
        Some(false) if !seq.is_empty() => {
            return Err(
                "group members must be unordered (set S) but the sequence Q is non-empty".into(),
            )
        }
        _ => {}
    }
    if let ChildClasses::OneOf(allowed) = &c.child_classes {
        for member in set.iter().chain(seq.iter()) {
            let Ok(Some(member_class)) = store.class(*member) else {
                return Err(format!(
                    "directly related view {member} has no class but the class restricts child classes"
                ));
            };
            let ok = allowed
                .iter()
                .any(|a| store.classes().is_subclass(member_class, *a));
            if !ok {
                return Err(format!(
                    "directly related view {member} has class '{}' which is not acceptable",
                    store.classes().name(member_class)
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::builtin::names;
    use crate::content::Content;
    use crate::value::{Timestamp, TupleComponent, Value};

    fn fs_tuple() -> TupleComponent {
        TupleComponent::of(vec![
            ("size", Value::Integer(1)),
            ("creation time", Value::Date(Timestamp(0))),
            ("last modified time", Value::Date(Timestamp(0))),
        ])
    }

    #[test]
    fn valid_file_conforms() {
        let store = ViewStore::new();
        let vid = store
            .build("a.txt")
            .tuple(fs_tuple())
            .content(Content::text("hello"))
            .class_named(names::FILE)
            .insert();
        validate(&store, vid, ValidationMode::Deep).unwrap();
    }

    #[test]
    fn file_without_tuple_fails() {
        let store = ViewStore::new();
        let vid = store.build("a.txt").class_named(names::FILE).insert();
        let err = validate(&store, vid, ValidationMode::Deep).unwrap_err();
        assert!(matches!(err, IdmError::Conformance { .. }), "{err}");
    }

    #[test]
    fn folder_rejects_non_fs_children() {
        let store = ViewStore::new();
        let reg = store.classes();
        let tuple_class = reg.lookup(names::TUPLE).unwrap();
        let bad_child = store
            .build_unnamed()
            .tuple(TupleComponent::of(vec![("x", Value::Integer(1))]))
            .class(tuple_class)
            .insert();
        let folder = store
            .build("docs")
            .tuple(fs_tuple())
            .children(vec![bad_child])
            .class_named(names::FOLDER)
            .insert();
        let err = validate(&store, folder, ValidationMode::Deep).unwrap_err();
        assert!(err.to_string().contains("not acceptable"), "{err}");
    }

    #[test]
    fn folder_accepts_file_and_subclass_children() {
        let store = ViewStore::new();
        let file = store
            .build("a.xml")
            .tuple(fs_tuple())
            .content(Content::text("<a/>"))
            .class_named(names::XMLFILE) // subclass of file
            .insert();
        // xmlfile requires a non-empty ordered group of xmldoc; give it one.
        let doc = store.build_unnamed().class_named(names::XMLDOC).insert();
        store
            .set_group(file, crate::group::Group::of_seq(vec![doc]))
            .unwrap();
        let folder = store
            .build("docs")
            .tuple(fs_tuple())
            .children(vec![file])
            .class_named(names::FOLDER)
            .insert();
        // Validate only restriction 4 paths on folder (deep).
        // Note: the xmldoc child itself is intentionally left non-conformant
        // (empty group); folder validation does not recurse into grandchildren.
        validate(&store, folder, ValidationMode::Deep).unwrap();
    }

    #[test]
    fn xmlelem_requires_ordered_children() {
        let store = ViewStore::new();
        let t = store
            .build_unnamed()
            .content(Content::text("hi"))
            .class_named(names::XMLTEXT)
            .insert();
        let elem_set = store
            .build("dep")
            .children(vec![t]) // wrong: set instead of sequence
            .class_named(names::XMLELEM)
            .insert();
        assert!(validate(&store, elem_set, ValidationMode::Deep).is_err());

        let elem_seq = store
            .build("dep")
            .sequence(vec![t])
            .class_named(names::XMLELEM)
            .insert();
        validate(&store, elem_seq, ValidationMode::Deep).unwrap();
    }

    #[test]
    fn datstream_requires_infinite_group() {
        let store = ViewStore::new();
        let finite = store
            .build_unnamed()
            .sequence(vec![])
            .class_named(names::DATSTREAM)
            .insert();
        assert!(validate(&store, finite, ValidationMode::Deep).is_err());

        struct Never;
        impl crate::group::ViewSequenceSource for Never {
            fn try_next(&self, _store: &ViewStore) -> crate::error::Result<Option<Vid>> {
                Ok(None)
            }
        }
        let stream = store
            .build_unnamed()
            .group(Group::infinite(std::sync::Arc::new(Never)))
            .class_named(names::DATSTREAM)
            .insert();
        validate(&store, stream, ValidationMode::Deep).unwrap();
    }

    #[test]
    fn shallow_validation_does_not_force_lazy_groups() {
        use std::sync::atomic::{AtomicBool, Ordering};
        static FORCED: AtomicBool = AtomicBool::new(false);
        let store = ViewStore::new();
        let provider = std::sync::Arc::new(|store: &ViewStore, _vid: Vid| {
            FORCED.store(true, Ordering::SeqCst);
            let child = store.build("x").insert();
            Ok(crate::group::GroupData::of_set(vec![child]))
        });
        let folder = store
            .build("lazy-folder")
            .tuple(fs_tuple())
            .group(Group::lazy(provider))
            .class_named(names::FOLDER)
            .insert();
        validate(&store, folder, ValidationMode::Shallow).unwrap();
        assert!(!FORCED.load(Ordering::SeqCst), "shallow must not force");
        // Deep validation forces and then fails: the child has no class.
        assert!(validate(&store, folder, ValidationMode::Deep).is_err());
        assert!(FORCED.load(Ordering::SeqCst));
    }

    #[test]
    fn classless_views_vacuously_conform() {
        let store = ViewStore::new();
        let vid = store.build("anything").insert();
        validate(&store, vid, ValidationMode::Deep).unwrap();
    }
}
