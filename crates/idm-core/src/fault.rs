//! Substrate fault tolerance: deterministic fault injection, bounded
//! retry with backoff, per-source circuit breakers and shared fault
//! counters.
//!
//! The PDSMS sits on inherently unreliable substrates — filesystems,
//! IMAP servers, RSS feeds (Section 5.2) — yet must keep the dataspace
//! as a whole available: a flaky mail server degrades *one* source, not
//! every query. This module provides the building blocks, all
//! deterministic so chaos tests are reproducible:
//!
//! - [`FaultPlan`] / [`FaultInjector`] / [`FaultPoint`] — a scriptable
//!   fault model substrates install behind the `fault-injection` cargo
//!   feature (fail-the-first-N, fail-every-Nth, seeded failure rate,
//!   latency, torn reads).
//! - [`RetryPolicy`] — bounded exponential backoff with deterministic
//!   jitter and a per-call time budget.
//! - [`CircuitBreaker`] — the classic closed/open/half-open state
//!   machine with a trip threshold and cool-down.
//! - [`SourceGuard`] — retry policy + breaker + shared [`FaultStats`],
//!   wrapped around every plugin ingest, sync poll and lazy-provider
//!   force.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::error::{IdmError, Result, SubstrateFaultKind};

/// SplitMix64: tiny, high-quality, seedable — the deterministic PRNG
/// behind failure rates and retry jitter.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from a SplitMix64 state.
fn uniform(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Busy-waits short costs (thread::sleep granularity would distort
/// sub-millisecond delays), sleeps long ones. Mirrors the substrate
/// latency models in `idm-vfs` and `idm-email`.
fn wait_for(cost: Duration) {
    if cost.is_zero() {
        return;
    }
    if cost >= Duration::from_millis(5) {
        std::thread::sleep(cost);
    } else {
        let start = Instant::now();
        while start.elapsed() < cost {
            std::hint::spin_loop();
        }
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// A deterministic fault schedule, installed on a substrate.
///
/// Calls are counted per injector (1-based), so "fail the 3rd call"
/// means the 3rd substrate operation after installation, whatever it is.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlan {
    /// Fail the first `n` calls, then succeed forever (the retry
    /// recovery scenario).
    FailFirst {
        /// How many leading calls fail.
        n: u64,
        /// The classification injected failures carry.
        kind: SubstrateFaultKind,
    },
    /// Fail every `n`-th call (the periodically flaky source).
    FailEveryNth {
        /// The period; every call whose 1-based index is a multiple
        /// fails.
        n: u64,
        /// The classification injected failures carry.
        kind: SubstrateFaultKind,
    },
    /// Fail each call independently with probability `rate`, drawn from
    /// a PRNG seeded with `seed` (reproducible chaos).
    FailRate {
        /// Failure probability in `[0, 1]`.
        rate: f64,
        /// PRNG seed; the same seed yields the same failure sequence.
        seed: u64,
        /// The classification injected failures carry.
        kind: SubstrateFaultKind,
    },
    /// Delay every call by `delay` without failing it (the slow disk /
    /// congested link scenario).
    Latency {
        /// Injected delay per call.
        delay: Duration,
    },
    /// Let reads through but truncate their payload to `keep` bytes
    /// (the torn read: a fetch interrupted mid-transfer). Non-read
    /// operations proceed untouched.
    TornRead {
        /// How many payload bytes survive.
        keep: usize,
    },
    /// Simulate a process crash at call `at`: that call and every call
    /// after it fail permanently, as if the process died mid-operation
    /// and the handle can never be used again.
    CrashAt {
        /// The 1-based call index the crash strikes at.
        at: u64,
    },
    /// Tear exactly one *write*: call `at` persists only the first
    /// `keep` bytes of its payload, and every later call fails
    /// permanently (the process died mid-`write(2)`).
    TornWrite {
        /// The 1-based call index of the torn write.
        at: u64,
        /// How many payload bytes reach the disk.
        keep: usize,
    },
}

impl FaultPlan {
    /// Fail the first `n` calls with transient errors, then succeed.
    pub fn fail_n(n: u64) -> Self {
        FaultPlan::FailFirst {
            n,
            kind: SubstrateFaultKind::Transient,
        }
    }

    /// Fail every `n`-th call with transient errors.
    pub fn fail_every(n: u64) -> Self {
        FaultPlan::FailEveryNth {
            n: n.max(1),
            kind: SubstrateFaultKind::Transient,
        }
    }

    /// Fail each call with probability `rate`, seeded.
    pub fn fail_rate(rate: f64, seed: u64) -> Self {
        FaultPlan::FailRate {
            rate: rate.clamp(0.0, 1.0),
            seed,
            kind: SubstrateFaultKind::Transient,
        }
    }

    /// Delay every call by `delay`.
    pub fn latency(delay: Duration) -> Self {
        FaultPlan::Latency { delay }
    }

    /// Truncate read payloads to `keep` bytes.
    pub fn torn_read(keep: usize) -> Self {
        FaultPlan::TornRead { keep }
    }

    /// Crash the process at call `at`: that call and all later ones
    /// fail permanently.
    pub fn crash_at(at: u64) -> Self {
        FaultPlan::CrashAt { at: at.max(1) }
    }

    /// Tear write number `at` down to `keep` bytes, then crash.
    pub fn torn_write(at: u64, keep: usize) -> Self {
        FaultPlan::TornWrite {
            at: at.max(1),
            keep,
        }
    }

    /// Reclassifies injected failures as permanent (the default is
    /// transient). No effect on latency/torn-read plans.
    pub fn permanent(self) -> Self {
        match self {
            FaultPlan::FailFirst { n, .. } => FaultPlan::FailFirst {
                n,
                kind: SubstrateFaultKind::Permanent,
            },
            FaultPlan::FailEveryNth { n, .. } => FaultPlan::FailEveryNth {
                n,
                kind: SubstrateFaultKind::Permanent,
            },
            FaultPlan::FailRate { rate, seed, .. } => FaultPlan::FailRate {
                rate,
                seed,
                kind: SubstrateFaultKind::Permanent,
            },
            other => other,
        }
    }
}

/// What a substrate should do for the current call, as decided by its
/// installed [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Execute normally.
    Proceed,
    /// Execute, but truncate the returned payload to this many bytes.
    Truncate(usize),
}

/// Executes a [`FaultPlan`] deterministically: counts calls, draws from
/// the seeded PRNG, and tells the substrate what to do.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    calls: AtomicU64,
    rng: Mutex<u64>,
    injected: AtomicU64,
}

impl FaultInjector {
    /// An injector executing `plan` from call 1.
    pub fn new(plan: FaultPlan) -> Self {
        let seed = match &plan {
            FaultPlan::FailRate { seed, .. } => *seed,
            _ => 0,
        };
        FaultInjector {
            plan,
            calls: AtomicU64::new(0),
            rng: Mutex::new(seed),
            injected: AtomicU64::new(0),
        }
    }

    /// Total calls observed.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Total faults injected (errors and truncations; latency is not a
    /// fault, only a delay).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Decides the fate of the next call against `source`/`op`.
    pub fn on_call(&self, source: &str, op: &str) -> Result<FaultAction> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let fail_kind = match &self.plan {
            FaultPlan::FailFirst { n, kind } if call <= *n => Some(*kind),
            FaultPlan::FailEveryNth { n, kind } if call.is_multiple_of(*n) => Some(*kind),
            FaultPlan::FailRate { rate, kind, .. } => {
                let mut rng = self.rng.lock();
                (uniform(&mut rng) < *rate).then_some(*kind)
            }
            FaultPlan::Latency { delay } => {
                wait_for(*delay);
                None
            }
            FaultPlan::TornRead { keep } => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Ok(FaultAction::Truncate(*keep));
            }
            FaultPlan::CrashAt { at } if call >= *at => Some(SubstrateFaultKind::Permanent),
            FaultPlan::TornWrite { at, keep } => {
                if call == *at {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    return Ok(FaultAction::Truncate(*keep));
                }
                (call > *at).then_some(SubstrateFaultKind::Permanent)
            }
            _ => None,
        };
        match fail_kind {
            Some(kind) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(IdmError::Substrate {
                    source: source.to_owned(),
                    kind,
                    attempt: 1,
                    detail: format!("injected fault at {op} (call {call})"),
                })
            }
            None => Ok(FaultAction::Proceed),
        }
    }
}

/// The installation point a substrate embeds: an optional injector
/// behind a mutex, free when no plan is installed.
///
/// Substrates compile the *calls* to [`FaultPoint::check`] behind their
/// `fault-injection` cargo feature; the type itself always exists so
/// plumbing does not need feature-gated struct layouts.
#[derive(Debug, Default)]
pub struct FaultPoint {
    injector: Mutex<Option<Arc<FaultInjector>>>,
}

impl FaultPoint {
    /// An empty fault point (no plan installed).
    pub fn new() -> Self {
        FaultPoint::default()
    }

    /// Installs a plan, replacing any previous one.
    pub fn install(&self, plan: FaultPlan) -> Arc<FaultInjector> {
        let injector = Arc::new(FaultInjector::new(plan));
        *self.injector.lock() = Some(Arc::clone(&injector));
        injector
    }

    /// Removes the installed plan (the substrate heals).
    pub fn clear(&self) {
        *self.injector.lock() = None;
    }

    /// Whether a plan is currently installed.
    pub fn is_armed(&self) -> bool {
        self.injector.lock().is_some()
    }

    /// Consults the installed injector; `Proceed` when none is armed.
    pub fn check(&self, source: &str, op: &str) -> Result<FaultAction> {
        let injector = self.injector.lock().clone();
        match injector {
            Some(injector) => injector.on_call(source, op),
            None => Ok(FaultAction::Proceed),
        }
    }
}

// ---------------------------------------------------------------------------
// Cooperative cancellation
// ---------------------------------------------------------------------------

/// A shared cooperative-cancellation flag.
///
/// The query executor's budget tracker raises it when a deadline or
/// memory limit trips; parallel workers and retry loops poll it at
/// their checkpoints and unwind within one batch. Cloning shares the
/// flag (it is an `Arc` underneath), so one token fans out to any
/// number of scoped worker threads.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested. A relaxed-cost atomic load —
    /// cheap enough to poll per item in hot loops.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Bounded exponential backoff with deterministic jitter and a per-call
/// time budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of *re*tries after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff delay.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter (same seed → same delays).
    pub jitter_seed: u64,
    /// Total time budget for the call including backoff; once exceeded,
    /// the last error is returned reclassified as a timeout.
    pub budget: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            jitter_seed: 0x1d4_7e57,
            budget: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (breaker-only guarding).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// A policy with `max_retries` retries and no backoff sleeping —
    /// what deterministic tests want.
    pub fn immediate(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry number `retry` (1-based): exponential
    /// from `base_delay`, capped at `max_delay`, jittered
    /// deterministically into `[50%, 100%]` of the nominal value.
    pub fn delay_for(&self, retry: u32) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let nominal = self
            .base_delay
            .saturating_mul(
                1u32.checked_shl(retry.saturating_sub(1))
                    .unwrap_or(u32::MAX),
            )
            .min(self.max_delay);
        let mut state = self.jitter_seed ^ u64::from(retry).wrapping_mul(0x9E37_79B9);
        let factor = 0.5 + uniform(&mut state) / 2.0;
        nominal.mul_f64(factor)
    }

    /// Runs `f` under this policy. Retries only [retryable] failures,
    /// sleeps the jittered backoff between attempts, stops when retries
    /// or the time budget are exhausted, and stamps the final error with
    /// the attempt count. Returns the number of retries performed
    /// alongside the outcome.
    ///
    /// [retryable]: IdmError::is_retryable
    pub fn run<T>(&self, mut f: impl FnMut() -> Result<T>) -> (Result<T>, u32) {
        let start = Instant::now();
        let mut retries = 0u32;
        loop {
            match f() {
                Ok(value) => return (Ok(value), retries),
                Err(err) => {
                    let attempt = retries + 1;
                    if !err.is_retryable() || retries >= self.max_retries {
                        return (Err(err.with_attempt(attempt)), retries);
                    }
                    if start.elapsed() >= self.budget {
                        let timed_out = match err {
                            IdmError::Substrate { source, detail, .. } => IdmError::Substrate {
                                source,
                                kind: SubstrateFaultKind::Timeout,
                                attempt,
                                detail: format!("retry budget exhausted: {detail}"),
                            },
                            other => other.with_attempt(attempt),
                        };
                        return (Err(timed_out), retries);
                    }
                    retries += 1;
                    wait_for(self.delay_for(retries));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Breaker states (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Calls fail fast until the cool-down elapses.
    Open,
    /// One probe call is allowed through; success closes the breaker,
    /// failure re-opens it.
    HalfOpen,
}

#[derive(Debug)]
enum BreakerInner {
    Closed { consecutive_failures: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// A per-source circuit breaker: `trip_threshold` consecutive failures
/// open it; after `cooldown` one probe is admitted (half-open); the
/// probe's outcome closes or re-opens it.
#[derive(Debug)]
pub struct CircuitBreaker {
    state: Mutex<BreakerInner>,
    trip_threshold: u32,
    cooldown: Duration,
    trips: AtomicU64,
    fast_failures: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `trip_threshold` consecutive
    /// failures, cooling down for `cooldown`.
    pub fn new(trip_threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            state: Mutex::new(BreakerInner::Closed {
                consecutive_failures: 0,
            }),
            trip_threshold: trip_threshold.max(1),
            cooldown,
            trips: AtomicU64::new(0),
            fast_failures: AtomicU64::new(0),
        }
    }

    /// The current state (open flips to half-open lazily on admission,
    /// so an elapsed cool-down still reports `Open` until probed).
    pub fn state(&self) -> BreakerState {
        match &*self.state.lock() {
            BreakerInner::Closed { .. } => BreakerState::Closed,
            BreakerInner::Open { .. } => BreakerState::Open,
            BreakerInner::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// How often the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// How many calls were rejected while open.
    pub fn fast_failures(&self) -> u64 {
        self.fast_failures.load(Ordering::Relaxed)
    }

    /// Asks to place a call. `Ok` admits it (and may move the breaker
    /// to half-open); `Err` is the fast failure of an open breaker.
    pub fn admit(&self, source: &str) -> Result<()> {
        let mut state = self.state.lock();
        match &*state {
            BreakerInner::Closed { .. } | BreakerInner::HalfOpen => Ok(()),
            BreakerInner::Open { since } => {
                if since.elapsed() >= self.cooldown {
                    *state = BreakerInner::HalfOpen;
                    Ok(())
                } else {
                    self.fast_failures.fetch_add(1, Ordering::Relaxed);
                    Err(IdmError::transient(
                        source,
                        "circuit breaker open: failing fast",
                    ))
                }
            }
        }
    }

    /// Reports a successful call: closes the breaker and resets the
    /// failure count.
    pub fn on_success(&self) {
        *self.state.lock() = BreakerInner::Closed {
            consecutive_failures: 0,
        };
    }

    /// Reports a failed call; returns `true` when this failure tripped
    /// the breaker open.
    pub fn on_failure(&self) -> bool {
        let mut state = self.state.lock();
        match &mut *state {
            BreakerInner::Closed {
                consecutive_failures,
            } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.trip_threshold {
                    *state = BreakerInner::Open {
                        since: Instant::now(),
                    };
                    self.trips.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            BreakerInner::HalfOpen => {
                // Failed probe: straight back to open for another
                // cool-down.
                *state = BreakerInner::Open {
                    since: Instant::now(),
                };
                self.trips.fetch_add(1, Ordering::Relaxed);
                true
            }
            BreakerInner::Open { .. } => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Shared fault statistics
// ---------------------------------------------------------------------------

/// Shared, thread-safe fault counters, aggregated across every guard of
/// one dataspace system. Query execution and sync rounds snapshot these
/// to report per-operation deltas.
#[derive(Debug, Default)]
pub struct FaultStats {
    retries: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_fast_failures: AtomicU64,
    stale_served: AtomicU64,
}

/// A point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Substrate calls retried after a retryable failure.
    pub retries: u64,
    /// Circuit breakers tripped open.
    pub breaker_trips: u64,
    /// Calls rejected fast by an open breaker.
    pub breaker_fast_failures: u64,
    /// Reads answered from a stale last-known-good cache entry.
    pub stale_served: u64,
}

impl FaultStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        FaultStats::default()
    }

    /// Records `n` retries.
    pub fn add_retries(&self, n: u64) {
        self.retries.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a breaker trip.
    pub fn add_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fast failure from an open breaker.
    pub fn add_breaker_fast_failure(&self) {
        self.breaker_fast_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a stale read served in degraded mode.
    pub fn add_stale_served(&self) {
        self.stale_served.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of all counters.
    pub fn snapshot(&self) -> FaultCounters {
        FaultCounters {
            retries: self.retries.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_fast_failures: self.breaker_fast_failures.load(Ordering::Relaxed),
            stale_served: self.stale_served.load(Ordering::Relaxed),
        }
    }
}

impl FaultCounters {
    /// Counter-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: FaultCounters) -> FaultCounters {
        FaultCounters {
            retries: self.retries - earlier.retries,
            breaker_trips: self.breaker_trips - earlier.breaker_trips,
            breaker_fast_failures: self.breaker_fast_failures - earlier.breaker_fast_failures,
            stale_served: self.stale_served - earlier.stale_served,
        }
    }
}

// ---------------------------------------------------------------------------
// Source guard
// ---------------------------------------------------------------------------

/// The fault-tolerance wrapper for one data source: every substrate
/// call goes breaker-first, then through the retry policy, with all
/// outcomes counted in the shared [`FaultStats`].
#[derive(Debug)]
pub struct SourceGuard {
    source: String,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    stats: Arc<FaultStats>,
}

impl SourceGuard {
    /// A guard for `source` with explicit policy and breaker.
    pub fn new(
        source: impl Into<String>,
        policy: RetryPolicy,
        breaker: CircuitBreaker,
        stats: Arc<FaultStats>,
    ) -> Self {
        SourceGuard {
            source: source.into(),
            policy,
            breaker,
            stats,
        }
    }

    /// A guard with the default policy (3 retries, 1 ms base backoff)
    /// and a 5-failure / 100 ms-cool-down breaker.
    pub fn with_defaults(source: impl Into<String>, stats: Arc<FaultStats>) -> Self {
        SourceGuard::new(
            source,
            RetryPolicy::default(),
            CircuitBreaker::new(5, Duration::from_millis(100)),
            stats,
        )
    }

    /// The guarded source's name.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The breaker (state inspection).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The shared stats handle.
    pub fn stats(&self) -> &Arc<FaultStats> {
        &self.stats
    }

    /// Places a guarded call: fail fast if the breaker is open, retry
    /// per policy otherwise, then report the overall outcome to the
    /// breaker. Errors leave attributed to this source.
    pub fn call<T>(&self, f: impl FnMut() -> Result<T>) -> Result<T> {
        if let Err(err) = self.breaker.admit(&self.source) {
            self.stats.add_breaker_fast_failure();
            return Err(err);
        }
        let (result, retries) = self.policy.run(f);
        self.stats.add_retries(u64::from(retries));
        match result {
            Ok(value) => {
                self.breaker.on_success();
                Ok(value)
            }
            Err(err) => {
                if self.breaker.on_failure() {
                    self.stats.add_breaker_trip();
                }
                Err(err.with_source(&self.source))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled(), "clones share one flag");
        token.cancel();
        assert!(token.is_cancelled(), "idempotent");
    }

    #[test]
    fn fail_n_fails_then_heals() {
        let injector = FaultInjector::new(FaultPlan::fail_n(2));
        assert!(injector.on_call("fs", "read").is_err());
        assert!(injector.on_call("fs", "read").is_err());
        assert_eq!(
            injector.on_call("fs", "read").unwrap(),
            FaultAction::Proceed
        );
        assert_eq!(injector.injected(), 2);
        assert_eq!(injector.calls(), 3);
    }

    #[test]
    fn fail_every_nth_is_periodic() {
        let injector = FaultInjector::new(FaultPlan::fail_every(3));
        let outcomes: Vec<bool> = (0..9)
            .map(|_| injector.on_call("imap", "fetch").is_err())
            .collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn fail_rate_is_seed_deterministic() {
        let run = |seed| {
            let injector = FaultInjector::new(FaultPlan::fail_rate(0.5, seed));
            (0..64)
                .map(|_| injector.on_call("rss", "fetch").is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42), "same seed, same faults");
        assert_ne!(run(42), run(43), "different seed, different faults");
        let failures = run(42).iter().filter(|f| **f).count();
        assert!((16..=48).contains(&failures), "rate roughly respected");
    }

    #[test]
    fn torn_read_truncates() {
        let injector = FaultInjector::new(FaultPlan::torn_read(4));
        assert_eq!(
            injector.on_call("fs", "read").unwrap(),
            FaultAction::Truncate(4)
        );
        assert_eq!(injector.injected(), 1);
    }

    #[test]
    fn injected_errors_carry_classification() {
        let injector = FaultInjector::new(FaultPlan::fail_n(1).permanent());
        let err = injector.on_call("imap", "fetch").unwrap_err();
        assert_eq!(err.substrate_kind(), Some(SubstrateFaultKind::Permanent));
        assert!(!err.is_retryable());
    }

    #[test]
    fn fault_point_idle_proceeds() {
        let point = FaultPoint::new();
        assert!(!point.is_armed());
        assert_eq!(point.check("fs", "read").unwrap(), FaultAction::Proceed);
        point.install(FaultPlan::fail_n(1));
        assert!(point.is_armed());
        assert!(point.check("fs", "read").is_err());
        point.clear();
        assert_eq!(point.check("fs", "read").unwrap(), FaultAction::Proceed);
    }

    #[test]
    fn retry_succeeds_on_third_attempt_with_two_retries() {
        let mut attempts = 0;
        let policy = RetryPolicy::immediate(5);
        let (result, retries) = policy.run(|| {
            attempts += 1;
            if attempts <= 2 {
                Err(IdmError::transient("fs", "flaky"))
            } else {
                Ok(attempts)
            }
        });
        assert_eq!(result.unwrap(), 3);
        assert_eq!(retries, 2, "exactly two retries");
    }

    #[test]
    fn retry_stops_on_permanent_errors() {
        let mut attempts = 0;
        let (result, retries) = RetryPolicy::immediate(5).run(|| -> Result<()> {
            attempts += 1;
            Err(IdmError::permanent("imap", "no such mailbox"))
        });
        assert_eq!(attempts, 1, "permanent failures are not retried");
        assert_eq!(retries, 0);
        let err = result.unwrap_err();
        assert_eq!(err.substrate_kind(), Some(SubstrateFaultKind::Permanent));
    }

    #[test]
    fn retry_exhaustion_reports_attempts() {
        let (result, retries) = RetryPolicy::immediate(2)
            .run(|| -> Result<()> { Err(IdmError::transient("fs", "still down")) });
        assert_eq!(retries, 2);
        let IdmError::Substrate { attempt, .. } = result.unwrap_err() else {
            panic!("substrate error expected");
        };
        assert_eq!(attempt, 3, "first attempt plus two retries");
    }

    #[test]
    fn retry_budget_converts_to_timeout() {
        let policy = RetryPolicy {
            max_retries: 100,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            budget: Duration::ZERO, // expires immediately
            ..RetryPolicy::default()
        };
        let (result, retries) =
            policy.run(|| -> Result<()> { Err(IdmError::transient("imap", "slow")) });
        assert_eq!(retries, 0, "budget gate fires before the first retry");
        assert_eq!(
            result.unwrap_err().substrate_kind(),
            Some(SubstrateFaultKind::Timeout)
        );
    }

    #[test]
    fn jittered_backoff_is_deterministic_bounded_and_monotone() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            ..RetryPolicy::default()
        };
        for retry in 1..8 {
            let d = policy.delay_for(retry);
            assert_eq!(d, policy.delay_for(retry), "deterministic");
            let nominal = Duration::from_millis(10 * (1 << (retry - 1).min(3)));
            assert!(d <= nominal.min(Duration::from_millis(80)));
            assert!(d >= nominal.min(Duration::from_millis(80)) / 2);
        }
        assert_eq!(RetryPolicy::immediate(3).delay_for(5), Duration::ZERO);
    }

    #[test]
    fn breaker_trips_fails_fast_and_recovers() {
        let breaker = CircuitBreaker::new(2, Duration::ZERO);
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.admit("fs").is_ok());
        assert!(!breaker.on_failure());
        assert!(breaker.on_failure(), "second failure trips");
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.trips(), 1);

        // Zero cool-down: the next admission is the half-open probe.
        assert!(breaker.admit("fs").is_ok());
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.on_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn open_breaker_fails_fast_until_cooldown() {
        let breaker = CircuitBreaker::new(1, Duration::from_secs(3600));
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(breaker.admit("imap").is_err());
        assert!(breaker.admit("imap").is_err());
        assert_eq!(breaker.fast_failures(), 2);
    }

    #[test]
    fn failed_probe_reopens() {
        let breaker = CircuitBreaker::new(1, Duration::ZERO);
        breaker.on_failure();
        assert!(breaker.admit("rss").is_ok(), "probe admitted");
        assert!(breaker.on_failure(), "failed probe re-trips");
        assert_eq!(breaker.trips(), 2);
        assert_eq!(breaker.state(), BreakerState::Open);
    }

    #[test]
    fn guard_counts_retries_and_trips() {
        let stats = Arc::new(FaultStats::new());
        let guard = SourceGuard::new(
            "imap",
            RetryPolicy::immediate(1),
            CircuitBreaker::new(2, Duration::from_secs(3600)),
            Arc::clone(&stats),
        );

        // Transient failure that heals on retry.
        let mut calls = 0;
        let value = guard
            .call(|| {
                calls += 1;
                if calls == 1 {
                    Err(IdmError::transient("imap", "reset"))
                } else {
                    Ok(7)
                }
            })
            .unwrap();
        assert_eq!(value, 7);
        assert_eq!(stats.snapshot().retries, 1);
        assert_eq!(guard.breaker().state(), BreakerState::Closed);

        // Two exhausted calls trip the breaker; the third fails fast.
        for _ in 0..2 {
            let err = guard
                .call(|| -> Result<()> { Err(IdmError::transient("imap", "down")) })
                .unwrap_err();
            assert!(err.is_retryable());
        }
        assert_eq!(stats.snapshot().breaker_trips, 1);
        let err = guard
            .call(|| -> Result<()> { panic!("must not run: breaker is open") })
            .unwrap_err();
        assert!(err.to_string().contains("circuit breaker open"), "{err}");
        assert_eq!(stats.snapshot().breaker_fast_failures, 1);
    }

    #[test]
    fn guard_attributes_errors_to_source() {
        let stats = Arc::new(FaultStats::new());
        let guard = SourceGuard::new(
            "filesystem",
            RetryPolicy::none(),
            CircuitBreaker::new(99, Duration::ZERO),
            stats,
        );
        let err = guard
            .call(|| -> Result<()> { Err(IdmError::provider("read failed")) })
            .unwrap_err();
        let IdmError::Provider { source, .. } = &err else {
            panic!("provider error expected, got {err:?}");
        };
        assert_eq!(source.as_deref(), Some("filesystem"));
    }

    #[test]
    fn counters_since_computes_deltas() {
        let stats = FaultStats::new();
        stats.add_retries(3);
        let before = stats.snapshot();
        stats.add_retries(2);
        stats.add_breaker_trip();
        stats.add_stale_served();
        let delta = stats.snapshot().since(before);
        assert_eq!(delta.retries, 2);
        assert_eq!(delta.breaker_trips, 1);
        assert_eq!(delta.stale_served, 1);
    }
}
