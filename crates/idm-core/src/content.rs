//! The content component `χ` of a resource view (Def. 1).
//!
//! `χ` is a (finite or infinite) sequence of symbols from an alphabet `Σ_c`.
//! We represent symbols as bytes; textual content is UTF-8. Three paradigms
//! from Section 4 of the paper are supported:
//!
//! - **extensional**: bytes held inline ([`Content::Inline`]),
//! - **intensional**: computed on first access by a [`ContentProvider`]
//!   ([`Content::Lazy`]) — e.g. the result of a query or a remote call,
//! - **infinite**: an unbounded symbol source ([`Content::Infinite`]) such
//!   as a media stream, exposed as a pull cursor that never ends.

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::error::{IdmError, Result};

/// Computes a finite content component on demand (intensional content).
pub trait ContentProvider: Send + Sync {
    /// Produces the content bytes. Called at most once per view; the result
    /// is cached by the [`Content`] handle.
    fn compute(&self) -> Result<Bytes>;

    /// Optional size hint in bytes, available without computing the content
    /// (e.g. a file size from metadata). Used by indexing statistics.
    fn size_hint(&self) -> Option<u64> {
        None
    }
}

impl<F> ContentProvider for F
where
    F: Fn() -> Result<Bytes> + Send + Sync,
{
    fn compute(&self) -> Result<Bytes> {
        self()
    }
}

/// A source of an infinite symbol sequence (e.g. a media stream).
pub trait SymbolSource: Send + Sync {
    /// Returns the next chunk of symbols. An infinite source never returns
    /// an empty chunk of its own accord; callers decide when to stop pulling.
    fn next_chunk(&self) -> Result<Bytes>;
}

/// Shared lazily-computed cell used by lazy content.
struct LazyCell {
    provider: Arc<dyn ContentProvider>,
    cached: Mutex<Option<Bytes>>,
}

/// The content component handle.
#[derive(Clone, Default)]
pub enum Content {
    /// The empty content `⟨⟩`.
    #[default]
    Empty,
    /// Extensional finite content held inline.
    Inline(Bytes),
    /// Intensional finite content, computed (then cached) on first access.
    Lazy(Arc<LazyContent>),
    /// Infinite content delivered chunk-wise by a symbol source.
    Infinite(Arc<dyn SymbolSource>),
}

/// Lazily computed finite content with caching.
pub struct LazyContent {
    cell: LazyCell,
}

impl LazyContent {
    /// Wraps a provider.
    pub fn new(provider: Arc<dyn ContentProvider>) -> Self {
        LazyContent {
            cell: LazyCell {
                provider,
                cached: Mutex::new(None),
            },
        }
    }

    /// Computes (or returns the cached) bytes.
    pub fn get(&self) -> Result<Bytes> {
        let mut cached = self.cell.cached.lock();
        if let Some(bytes) = cached.as_ref() {
            return Ok(bytes.clone());
        }
        let bytes = self.cell.provider.compute()?;
        *cached = Some(bytes.clone());
        Ok(bytes)
    }

    /// Whether the content has been materialized yet.
    pub fn is_materialized(&self) -> bool {
        self.cell.cached.lock().is_some()
    }

    /// The cached bytes, if already materialized — never computes.
    /// Durability snapshots use this to persist what exists without
    /// forcing intensional work.
    pub fn peek(&self) -> Option<Bytes> {
        self.cell.cached.lock().clone()
    }

    fn size_hint(&self) -> Option<u64> {
        if let Some(bytes) = self.cell.cached.lock().as_ref() {
            return Some(bytes.len() as u64);
        }
        self.cell.provider.size_hint()
    }
}

impl Content {
    /// Creates finite extensional content from anything byte-like.
    pub fn inline(bytes: impl Into<Bytes>) -> Self {
        let bytes = bytes.into();
        if bytes.is_empty() {
            Content::Empty
        } else {
            Content::Inline(bytes)
        }
    }

    /// Creates finite extensional content from text.
    pub fn text(text: impl Into<String>) -> Self {
        Content::inline(Bytes::from(text.into()))
    }

    /// Creates intensional content computed on first access.
    pub fn lazy(provider: Arc<dyn ContentProvider>) -> Self {
        Content::Lazy(Arc::new(LazyContent::new(provider)))
    }

    /// Creates infinite content from a symbol source.
    pub fn infinite(source: Arc<dyn SymbolSource>) -> Self {
        Content::Infinite(source)
    }

    /// Whether the component is empty (`⟨⟩`).
    ///
    /// Lazy content is considered non-empty without forcing it: an
    /// intensional component *has* content, we just have not computed it.
    pub fn is_empty(&self) -> bool {
        matches!(self, Content::Empty)
    }

    /// Whether the component is finite.
    pub fn is_finite(&self) -> bool {
        !matches!(self, Content::Infinite(_))
    }

    /// Whether accessing the bytes requires computation (intensional).
    pub fn is_intensional(&self) -> bool {
        matches!(self, Content::Lazy(_))
    }

    /// Materializes finite content as bytes.
    ///
    /// Returns an error for infinite content: callers that can handle
    /// streams should use [`Content::reader`] instead.
    pub fn bytes(&self) -> Result<Bytes> {
        match self {
            Content::Empty => Ok(Bytes::new()),
            Content::Inline(bytes) => Ok(bytes.clone()),
            Content::Lazy(lazy) => lazy.get(),
            Content::Infinite(_) => Err(IdmError::InfiniteComponent {
                detail: "cannot materialize infinite content; use a reader".into(),
            }),
        }
    }

    /// Materializes finite content as UTF-8 text (lossily).
    pub fn text_lossy(&self) -> Result<String> {
        Ok(String::from_utf8_lossy(&self.bytes()?).into_owned())
    }

    /// A pull cursor over the symbol sequence; works for finite and
    /// infinite content alike.
    pub fn reader(&self) -> ContentReader {
        match self {
            Content::Empty => ContentReader::Finite {
                bytes: Bytes::new(),
                pos: 0,
            },
            Content::Inline(bytes) => ContentReader::Finite {
                bytes: bytes.clone(),
                pos: 0,
            },
            Content::Lazy(lazy) => match lazy.get() {
                Ok(bytes) => ContentReader::Finite { bytes, pos: 0 },
                Err(e) => ContentReader::Failed(Some(e)),
            },
            Content::Infinite(source) => ContentReader::Infinite {
                source: Arc::clone(source),
            },
        }
    }

    /// Size in bytes if known without forcing intensional content.
    pub fn size_hint(&self) -> Option<u64> {
        match self {
            Content::Empty => Some(0),
            Content::Inline(bytes) => Some(bytes.len() as u64),
            Content::Lazy(lazy) => lazy.size_hint(),
            Content::Infinite(_) => None,
        }
    }
}

impl fmt::Debug for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Content::Empty => f.write_str("Content::Empty"),
            Content::Inline(bytes) => write!(f, "Content::Inline({} bytes)", bytes.len()),
            Content::Lazy(lazy) => {
                write!(f, "Content::Lazy(materialized: {})", lazy.is_materialized())
            }
            Content::Infinite(_) => f.write_str("Content::Infinite"),
        }
    }
}

/// A pull cursor over a content component's symbol sequence.
pub enum ContentReader {
    /// Cursor over finite bytes.
    Finite {
        /// The materialized bytes.
        bytes: Bytes,
        /// Read position.
        pos: usize,
    },
    /// Cursor over an infinite source.
    Infinite {
        /// The backing source.
        source: Arc<dyn SymbolSource>,
    },
    /// Lazy computation failed; the error is delivered on first read.
    Failed(Option<IdmError>),
}

impl ContentReader {
    /// Pulls the next chunk; `Ok(None)` signals the end of finite content.
    /// Infinite readers never return `Ok(None)`.
    pub fn next_chunk(&mut self) -> Result<Option<Bytes>> {
        match self {
            ContentReader::Finite { bytes, pos } => {
                if *pos >= bytes.len() {
                    return Ok(None);
                }
                // Deliver in bounded chunks so callers can process media-
                // sized content incrementally.
                const CHUNK: usize = 64 * 1024;
                let end = (*pos + CHUNK).min(bytes.len());
                let chunk = bytes.slice(*pos..end);
                *pos = end;
                Ok(Some(chunk))
            }
            ContentReader::Infinite { source } => source.next_chunk().map(Some),
            ContentReader::Failed(err) => Err(err
                .take()
                .unwrap_or(IdmError::provider("content computation failed"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_content() {
        let c = Content::Empty;
        assert!(c.is_empty());
        assert!(c.is_finite());
        assert_eq!(c.bytes().unwrap().len(), 0);
        assert_eq!(c.size_hint(), Some(0));
    }

    #[test]
    fn inline_collapses_empty() {
        assert!(Content::text("").is_empty());
        assert!(!Content::text("x").is_empty());
    }

    #[test]
    fn lazy_content_computes_once() {
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let provider = Arc::new(|| {
            CALLS.fetch_add(1, Ordering::SeqCst);
            Ok(Bytes::from_static(b"intensional"))
        });
        let c = Content::lazy(provider);
        assert!(c.is_intensional());
        assert!(!c.is_empty());
        assert_eq!(c.text_lossy().unwrap(), "intensional");
        assert_eq!(c.text_lossy().unwrap(), "intensional");
        assert_eq!(CALLS.load(Ordering::SeqCst), 1, "provider called once");
        assert_eq!(c.size_hint(), Some(11));
    }

    #[test]
    fn infinite_content_refuses_materialization() {
        struct Ones;
        impl SymbolSource for Ones {
            fn next_chunk(&self) -> Result<Bytes> {
                Ok(Bytes::from_static(b"1"))
            }
        }
        let c = Content::infinite(Arc::new(Ones));
        assert!(!c.is_finite());
        assert!(c.bytes().is_err());
        let mut reader = c.reader();
        for _ in 0..5 {
            assert_eq!(
                reader.next_chunk().unwrap().unwrap(),
                Bytes::from_static(b"1")
            );
        }
    }

    #[test]
    fn reader_chunks_cover_finite_content() {
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let c = Content::inline(data.clone());
        let mut reader = c.reader();
        let mut out = Vec::new();
        while let Some(chunk) = reader.next_chunk().unwrap() {
            out.extend_from_slice(&chunk);
        }
        assert_eq!(out, data);
    }

    #[test]
    fn failed_lazy_reader_reports_error() {
        let provider = Arc::new(|| Err(IdmError::provider("remote host down")));
        let c = Content::lazy(provider);
        assert!(c.bytes().is_err());
        let mut reader = c.reader();
        assert!(reader.next_chunk().is_err());
    }
}
