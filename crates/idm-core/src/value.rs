//! Atomic values, domains, attributes, schemas and the tuple component `τ`.
//!
//! Definition 1 of the paper defines the tuple component `τ = (W, T)` where
//! `W = ⟨a_j⟩` is a sequence of attributes (each the name of a role played by
//! some domain `D_j`) and `T = ⟨v_j⟩` is a sequence of atomic values with
//! `v_j ∈ D_j`. Unlike the relational model, the schema `W` is defined *per
//! tuple*; sets of views sharing a schema are expressed via resource view
//! classes (Section 3 of the paper).

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{IdmError, Result};

/// A domain is a set of atomic values (paper footnote 3; conforms to
/// Elmasri/Navathe's definitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Unicode text.
    Text,
    /// 64-bit signed integers.
    Integer,
    /// 64-bit IEEE floats.
    Float,
    /// Booleans.
    Boolean,
    /// Timestamps with second precision (see [`Timestamp`]).
    Date,
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Domain::Text => "text",
            Domain::Integer => "integer",
            Domain::Float => "float",
            Domain::Boolean => "boolean",
            Domain::Date => "date",
        };
        f.write_str(s)
    }
}

/// A timestamp with second precision, stored as seconds since the Unix epoch.
///
/// The repository deliberately avoids external date-time crates; the civil
/// date conversions below implement the proleptic Gregorian calendar, which
/// is all the paper's `lastmodified < @12.06.2005` style predicates need.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Builds a timestamp from a civil date and time (UTC).
    ///
    /// `month` and `day` are 1-based. Invalid dates return a parse error.
    pub fn from_ymd_hms(year: i32, month: u32, day: u32, h: u32, m: u32, s: u32) -> Result<Self> {
        if !(1..=12).contains(&month) {
            return Err(IdmError::Parse {
                detail: format!("month {month} out of range"),
            });
        }
        if day < 1 || day > days_in_month(year, month) {
            return Err(IdmError::Parse {
                detail: format!("day {day} out of range for {year}-{month:02}"),
            });
        }
        if h > 23 || m > 59 || s > 59 {
            return Err(IdmError::Parse {
                detail: format!("time {h:02}:{m:02}:{s:02} out of range"),
            });
        }
        let days = days_from_civil(year, month, day);
        Ok(Timestamp(
            days * 86_400 + i64::from(h) * 3600 + i64::from(m) * 60 + i64::from(s),
        ))
    }

    /// Builds a timestamp at midnight of the given civil date (UTC).
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Self> {
        Self::from_ymd_hms(year, month, day, 0, 0, 0)
    }

    /// Parses the iQL date literal format `@dd.mm.yyyy` (without the `@`).
    ///
    /// The evaluation in the paper (Table 4, Q3) uses `@12.06.2005`.
    pub fn parse_dmy(text: &str) -> Result<Self> {
        let mut parts = text.splitn(3, '.');
        let (d, m, y) = match (parts.next(), parts.next(), parts.next()) {
            (Some(d), Some(m), Some(y)) => (d, m, y),
            _ => {
                return Err(IdmError::Parse {
                    detail: format!("expected dd.mm.yyyy, got '{text}'"),
                })
            }
        };
        let parse = |s: &str, what: &str| -> Result<i64> {
            s.trim().parse::<i64>().map_err(|_| IdmError::Parse {
                detail: format!("invalid {what} '{s}' in date '{text}'"),
            })
        };
        let (d, m, y) = (parse(d, "day")?, parse(m, "month")?, parse(y, "year")?);
        Self::from_ymd(y as i32, m as u32, d as u32)
    }

    /// Returns the civil date `(year, month, day)` of this timestamp (UTC).
    pub fn to_ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0.div_euclid(86_400))
    }

    /// Returns the `(hour, minute, second)` of this timestamp (UTC).
    pub fn to_hms(self) -> (u32, u32, u32) {
        let secs = self.0.rem_euclid(86_400);
        (
            (secs / 3600) as u32,
            ((secs % 3600) / 60) as u32,
            (secs % 60) as u32,
        )
    }

    /// Returns a timestamp exactly `days` days later.
    pub fn plus_days(self, days: i64) -> Self {
        Timestamp(self.0 + days * 86_400)
    }

    /// Returns a timestamp exactly `secs` seconds later.
    pub fn plus_secs(self, secs: i64) -> Self {
        Timestamp(self.0 + secs)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d) = self.to_ymd();
        let (h, mi, s) = self.to_hms();
        write!(f, "{d:02}/{mo:02}/{y} {h:02}:{mi:02}:{s:02}")
    }
}

fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // March-based month [0, 11]
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since 1970-01-01 (inverse of [`days_from_civil`]).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// An atomic value drawn from one of the supported [`Domain`]s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Unicode text.
    Text(String),
    /// 64-bit signed integer.
    Integer(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Boolean.
    Boolean(bool),
    /// Timestamp.
    Date(Timestamp),
}

impl Value {
    /// The domain this value belongs to.
    pub fn domain(&self) -> Domain {
        match self {
            Value::Text(_) => Domain::Text,
            Value::Integer(_) => Domain::Integer,
            Value::Float(_) => Domain::Float,
            Value::Boolean(_) => Domain::Boolean,
            Value::Date(_) => Domain::Date,
        }
    }

    /// Returns the text content, if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer content, if this is an integer value.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the timestamp content, if this is a date value.
    pub fn as_date(&self) -> Option<Timestamp> {
        match self {
            Value::Date(t) => Some(*t),
            _ => None,
        }
    }

    /// Compares two values for query predicates.
    ///
    /// Numeric domains (integer/float) are mutually comparable; all other
    /// cross-domain comparisons return `None`, which makes predicates on
    /// mistyped attributes evaluate to false rather than erroring — the
    /// schema-agnostic behaviour a dataspace system needs (the same
    /// attribute name may play different roles in different views).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Integer(a), Value::Integer(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Integer(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Integer(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Boolean(a), Value::Boolean(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes, used for index size
    /// accounting (Table 3 of the paper).
    pub fn footprint(&self) -> usize {
        match self {
            Value::Text(s) => s.len() + std::mem::size_of::<String>(),
            _ => 16,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => f.write_str(s),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Date(t) => write!(f, "{t}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Integer(i)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Boolean(b)
    }
}
impl From<Timestamp> for Value {
    fn from(t: Timestamp) -> Self {
        Value::Date(t)
    }
}

/// An attribute: the name of a role played by some domain in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attribute {
    /// The attribute name.
    pub name: String,
    /// The domain the attribute draws its values from.
    pub domain: Domain,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        Attribute {
            name: name.into(),
            domain,
        }
    }
}

/// A schema `W = ⟨a_1, …, a_k⟩`: an ordered sequence of attributes.
///
/// Schemas are cheap to clone (`Arc`-backed) because iDM attaches one to
/// *every* tuple component, and in practice many views share the same
/// filesystem- or class-level schema (`W_FS`, `W_R`, `W_E`, …).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema(Arc<Vec<Attribute>>);

impl Schema {
    /// Creates a schema from an attribute sequence.
    pub fn new(attrs: Vec<Attribute>) -> Self {
        Schema(Arc::new(attrs))
    }

    /// Convenience constructor from `(name, domain)` pairs.
    pub fn of(pairs: &[(&str, Domain)]) -> Self {
        Schema::new(
            pairs
                .iter()
                .map(|(n, d)| Attribute::new(*n, *d))
                .collect::<Vec<_>>(),
        )
    }

    /// The empty schema.
    pub fn empty() -> Self {
        Schema(Arc::new(Vec::new()))
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.0
    }

    /// The position of the attribute with the given name, if any.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.0.iter().position(|a| a.name == name)
    }

    /// Whether this schema contains every attribute of `other`
    /// (same name and domain), regardless of order.
    pub fn covers(&self, other: &Schema) -> bool {
        other.attributes().iter().all(|a| {
            self.position(&a.name)
                .is_some_and(|i| self.0[i].domain == a.domain)
        })
    }
}

/// The tuple component `τ = (W, T)` of a resource view (Def. 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TupleComponent {
    schema: Schema,
    values: Vec<Value>,
}

impl TupleComponent {
    /// Builds a tuple component, validating that `T` conforms to `W`:
    /// same arity, and each `v_j ∈ D_j`.
    pub fn new(schema: Schema, values: Vec<Value>) -> Result<Self> {
        if schema.arity() != values.len() {
            return Err(IdmError::SchemaMismatch {
                detail: format!(
                    "schema has {} attributes but tuple has {} values",
                    schema.arity(),
                    values.len()
                ),
            });
        }
        for (attr, value) in schema.attributes().iter().zip(&values) {
            if attr.domain != value.domain() {
                return Err(IdmError::SchemaMismatch {
                    detail: format!(
                        "attribute '{}' has domain {} but value '{}' has domain {}",
                        attr.name,
                        attr.domain,
                        value,
                        value.domain()
                    ),
                });
            }
        }
        Ok(TupleComponent { schema, values })
    }

    /// Builds a tuple component from `(name, value)` pairs, deriving the
    /// schema from the value domains. Infallible by construction.
    pub fn of(pairs: Vec<(&str, Value)>) -> Self {
        let schema = Schema::new(
            pairs
                .iter()
                .map(|(n, v)| Attribute::new(*n, v.domain()))
                .collect(),
        );
        let values = pairs.into_iter().map(|(_, v)| v).collect();
        TupleComponent { schema, values }
    }

    /// The schema `W`.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The value sequence `T`.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Looks an attribute value up by name.
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.schema.position(attr).map(|i| &self.values[i])
    }

    /// Iterates over `(attribute, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Attribute, &Value)> {
        self.schema.attributes().iter().zip(self.values.iter())
    }

    /// Approximate in-memory footprint in bytes (values only; the schema is
    /// shared and accounted for once per distinct schema by the catalog).
    pub fn footprint(&self) -> usize {
        self.values.iter().map(Value::footprint).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_roundtrip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2000, 2, 29),
            (2005, 6, 12),
            (2006, 9, 12),
            (1969, 12, 31),
            (2100, 3, 1),
        ] {
            let t = Timestamp::from_ymd(y, m, d).unwrap();
            assert_eq!(t.to_ymd(), (y, m, d), "roundtrip for {y}-{m}-{d}");
        }
    }

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Timestamp::from_ymd(1970, 1, 1).unwrap().0, 0);
    }

    #[test]
    fn parse_paper_date_literal() {
        // Q3 in Table 4 uses @12.06.2005 (dd.mm.yyyy).
        let t = Timestamp::parse_dmy("12.06.2005").unwrap();
        assert_eq!(t.to_ymd(), (2005, 6, 12));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Timestamp::parse_dmy("12.06").is_err());
        assert!(Timestamp::parse_dmy("99.99.2005").is_err());
        assert!(Timestamp::parse_dmy("aa.bb.cccc").is_err());
    }

    #[test]
    fn invalid_civil_dates_rejected() {
        assert!(Timestamp::from_ymd(2005, 2, 29).is_err());
        assert!(Timestamp::from_ymd(2005, 13, 1).is_err());
        assert!(Timestamp::from_ymd(2005, 0, 1).is_err());
        assert!(Timestamp::from_ymd_hms(2005, 1, 1, 24, 0, 0).is_err());
    }

    #[test]
    fn leap_year_rules() {
        assert!(Timestamp::from_ymd(2000, 2, 29).is_ok()); // divisible by 400
        assert!(Timestamp::from_ymd(1900, 2, 29).is_err()); // divisible by 100 only
        assert!(Timestamp::from_ymd(2004, 2, 29).is_ok()); // divisible by 4
    }

    #[test]
    fn value_comparisons_respect_domains() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Integer(3).compare(&Value::Integer(4)), Some(Less));
        assert_eq!(Value::Integer(3).compare(&Value::Float(3.0)), Some(Equal));
        assert_eq!(Value::Text("a".into()).compare(&Value::Integer(1)), None);
        let d1 = Value::Date(Timestamp::from_ymd(2005, 6, 11).unwrap());
        let d2 = Value::Date(Timestamp::from_ymd(2005, 6, 12).unwrap());
        assert_eq!(d1.compare(&d2), Some(Less));
    }

    #[test]
    fn tuple_component_validates_schema() {
        let schema = Schema::of(&[("size", Domain::Integer), ("name", Domain::Text)]);
        assert!(TupleComponent::new(
            schema.clone(),
            vec![Value::Integer(4096), Value::Text("PIM".into())]
        )
        .is_ok());
        // Wrong arity.
        assert!(TupleComponent::new(schema.clone(), vec![Value::Integer(1)]).is_err());
        // Wrong domain.
        assert!(TupleComponent::new(
            schema,
            vec![Value::Text("x".into()), Value::Text("PIM".into())]
        )
        .is_err());
    }

    #[test]
    fn tuple_of_derives_schema() {
        let t = TupleComponent::of(vec![
            ("size", Value::Integer(4096)),
            ("creation time", Value::Date(Timestamp(0))),
        ]);
        assert_eq!(t.schema().arity(), 2);
        assert_eq!(t.get("size"), Some(&Value::Integer(4096)));
        assert_eq!(t.get("missing"), None);
    }

    #[test]
    fn schema_covers() {
        let big = Schema::of(&[("a", Domain::Integer), ("b", Domain::Text)]);
        let small = Schema::of(&[("b", Domain::Text)]);
        let wrong = Schema::of(&[("b", Domain::Integer)]);
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(!big.covers(&wrong));
        assert!(big.covers(&Schema::empty()));
    }

    #[test]
    fn pim_folder_tuple_from_paper() {
        // Section 2.3 example: τ_PIM over W_FS.
        let tau = TupleComponent::of(vec![
            (
                "creation time",
                Value::Date(Timestamp::from_ymd_hms(2005, 3, 19, 11, 54, 0).unwrap()),
            ),
            ("size", Value::Integer(4096)),
            (
                "last modified time",
                Value::Date(Timestamp::from_ymd_hms(2005, 9, 22, 16, 14, 0).unwrap()),
            ),
        ]);
        assert_eq!(tau.get("size").unwrap().as_integer(), Some(4096));
        let (y, m, d) = tau
            .get("creation time")
            .unwrap()
            .as_date()
            .unwrap()
            .to_ymd();
        assert_eq!((y, m, d), (2005, 3, 19));
    }
}
