//! Error types shared across the iDM core model.

use std::fmt;

use crate::store::Vid;

/// Errors raised by the iDM core model.
#[derive(Debug, Clone, PartialEq)]
pub enum IdmError {
    /// A tuple did not conform to its schema.
    SchemaMismatch {
        /// Human readable description of the mismatch.
        detail: String,
    },
    /// A referenced view does not exist in the store.
    UnknownVid(Vid),
    /// A referenced resource view class is not registered.
    UnknownClass(String),
    /// A view does not conform to the class it claims.
    Conformance {
        /// The view that failed validation.
        vid: Vid,
        /// Name of the class it was validated against.
        class: String,
        /// Which constraint failed.
        detail: String,
    },
    /// A group component violated the `S ∩ Q = ∅` invariant (Def. 1 (ii)).
    GroupOverlap(Vid),
    /// A lazy provider failed to compute a component.
    Provider {
        /// Description of the failure.
        detail: String,
    },
    /// An operation that requires a finite component met an infinite one.
    InfiniteComponent {
        /// Description of the operation that was attempted.
        detail: String,
    },
    /// A date or value literal could not be parsed.
    Parse {
        /// Description of the parse failure.
        detail: String,
    },
}

impl fmt::Display for IdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdmError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            IdmError::UnknownVid(vid) => write!(f, "unknown resource view id {vid}"),
            IdmError::UnknownClass(name) => write!(f, "unknown resource view class '{name}'"),
            IdmError::Conformance { vid, class, detail } => {
                write!(
                    f,
                    "view {vid} does not conform to class '{class}': {detail}"
                )
            }
            IdmError::GroupOverlap(vid) => {
                write!(f, "group component of view {vid} violates S ∩ Q = ∅")
            }
            IdmError::Provider { detail } => write!(f, "lazy provider failed: {detail}"),
            IdmError::InfiniteComponent { detail } => {
                write!(f, "operation requires a finite component: {detail}")
            }
            IdmError::Parse { detail } => write!(f, "parse error: {detail}"),
        }
    }
}

impl std::error::Error for IdmError {}

/// Convenience result alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, IdmError>;
