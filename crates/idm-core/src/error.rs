//! Error types shared across the iDM core model.

use std::fmt;

use crate::store::Vid;

/// How a substrate failure should be treated by retry and breaker logic.
///
/// Substrates — filesystems, IMAP servers, feed servers, streams — fail
/// in ways the dataspace layer must distinguish: a dropped connection is
/// worth retrying, a missing mailbox is not, and an exceeded deadline is
/// its own signal (the work may still be running remotely).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubstrateFaultKind {
    /// A fault expected to heal on its own (I/O hiccup, torn read,
    /// connection reset). Safe to retry.
    Transient,
    /// A fault that will recur on every attempt (not found, permission,
    /// malformed request). Retrying is wasted work.
    Permanent,
    /// The per-call time budget was exhausted before the substrate
    /// answered. Retryable, but counted separately because the cause is
    /// slowness rather than failure.
    Timeout,
}

impl fmt::Display for SubstrateFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubstrateFaultKind::Transient => write!(f, "transient"),
            SubstrateFaultKind::Permanent => write!(f, "permanent"),
            SubstrateFaultKind::Timeout => write!(f, "timeout"),
        }
    }
}

/// Which per-query resource limit was exhausted.
///
/// Query execution is governed at runtime (the nested model makes
/// plan-time cost prediction unreliable): a query carries a budget of
/// wall-clock time, accounted memory, produced rows and expanded graph
/// nodes, and the admission gate in front of the executor adds queueing
/// limits. Exceeding any of them raises
/// [`IdmError::ResourceExhausted`] tagged with the kind that tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// The wall-clock deadline passed before the query finished.
    WallClock,
    /// The accounted-bytes memory budget was exceeded.
    MemoryBytes,
    /// The produced-row cap was exceeded.
    Rows,
    /// The expanded-graph-node cap was exceeded.
    Nodes,
    /// The query expired while waiting in the admission queue.
    QueueWait,
    /// The admission queue was full — the query was shed, never run.
    Concurrency,
    /// An external cancellation (cancel token) stopped the query.
    Cancelled,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::WallClock => write!(f, "wall-clock deadline"),
            BudgetKind::MemoryBytes => write!(f, "memory bytes"),
            BudgetKind::Rows => write!(f, "result rows"),
            BudgetKind::Nodes => write!(f, "expanded nodes"),
            BudgetKind::QueueWait => write!(f, "admission-queue wait"),
            BudgetKind::Concurrency => write!(f, "concurrent queries"),
            BudgetKind::Cancelled => write!(f, "cancellation"),
        }
    }
}

/// Errors raised by the iDM core model.
#[derive(Debug, Clone, PartialEq)]
pub enum IdmError {
    /// A tuple did not conform to its schema.
    SchemaMismatch {
        /// Human readable description of the mismatch.
        detail: String,
    },
    /// A referenced view does not exist in the store.
    UnknownVid(Vid),
    /// A referenced resource view class is not registered.
    UnknownClass(String),
    /// A view does not conform to the class it claims.
    Conformance {
        /// The view that failed validation.
        vid: Vid,
        /// Name of the class it was validated against.
        class: String,
        /// Which constraint failed.
        detail: String,
    },
    /// A group component violated the `S ∩ Q = ∅` invariant (Def. 1 (ii)).
    GroupOverlap(Vid),
    /// A lazy provider failed to compute a component.
    Provider {
        /// Description of the failure.
        detail: String,
        /// The data source whose provider failed, when known
        /// (`"filesystem"`, `"imap"`, `"rss"`, …).
        source: Option<String>,
        /// The view whose component was being forced, when known.
        vid: Option<Vid>,
    },
    /// A substrate (filesystem, IMAP server, feed server, stream) call
    /// failed. Carries the classification retry/breaker logic needs.
    Substrate {
        /// The data source the call targeted.
        source: String,
        /// Whether the fault is transient, permanent or a timeout.
        kind: SubstrateFaultKind,
        /// Which attempt produced this error (1-based; > 1 means the
        /// call was already retried).
        attempt: u32,
        /// Description of the failure.
        detail: String,
    },
    /// A per-query resource budget was exhausted before the query
    /// finished. Not retryable as-is (the same budget fails the same
    /// way), but degradable: callers that opted into partial results
    /// receive the rows produced so far instead of this error.
    ResourceExhausted {
        /// Which limit tripped.
        budget: BudgetKind,
        /// How much was consumed when it tripped (ms for wall clock,
        /// bytes/rows/nodes for the others, queue depth for shedding).
        consumed: u64,
        /// The configured limit.
        limit: u64,
        /// The execution phase that hit the limit (an operator label
        /// such as `"relate"`, or `"admission"` for queue shedding).
        phase: String,
    },
    /// An operation that requires a finite component met an infinite one.
    InfiniteComponent {
        /// Description of the operation that was attempted.
        detail: String,
    },
    /// A date or value literal could not be parsed.
    Parse {
        /// Description of the parse failure.
        detail: String,
    },
}

impl IdmError {
    /// A provider failure with no attribution yet (the common case at
    /// the raising site; [`IdmError::with_source`] and
    /// [`IdmError::with_vid`] attach attribution as the error bubbles
    /// through layers that know it).
    pub fn provider(detail: impl Into<String>) -> Self {
        IdmError::Provider {
            detail: detail.into(),
            source: None,
            vid: None,
        }
    }

    /// A transient substrate failure (first attempt).
    pub fn transient(source: impl Into<String>, detail: impl Into<String>) -> Self {
        IdmError::Substrate {
            source: source.into(),
            kind: SubstrateFaultKind::Transient,
            attempt: 1,
            detail: detail.into(),
        }
    }

    /// A permanent substrate failure (first attempt).
    pub fn permanent(source: impl Into<String>, detail: impl Into<String>) -> Self {
        IdmError::Substrate {
            source: source.into(),
            kind: SubstrateFaultKind::Permanent,
            attempt: 1,
            detail: detail.into(),
        }
    }

    /// A substrate timeout (first attempt).
    pub fn timeout(source: impl Into<String>, detail: impl Into<String>) -> Self {
        IdmError::Substrate {
            source: source.into(),
            kind: SubstrateFaultKind::Timeout,
            attempt: 1,
            detail: detail.into(),
        }
    }

    /// A resource-budget exhaustion in `phase`.
    pub fn resource_exhausted(
        budget: BudgetKind,
        consumed: u64,
        limit: u64,
        phase: impl Into<String>,
    ) -> Self {
        IdmError::ResourceExhausted {
            budget,
            consumed,
            limit,
            phase: phase.into(),
        }
    }

    /// The exhausted budget kind, if this is a resource-governance error.
    pub fn budget_kind(&self) -> Option<BudgetKind> {
        match self {
            IdmError::ResourceExhausted { budget, .. } => Some(*budget),
            _ => None,
        }
    }

    /// The substrate fault classification, if this is a substrate error.
    pub fn substrate_kind(&self) -> Option<SubstrateFaultKind> {
        match self {
            IdmError::Substrate { kind, .. } => Some(*kind),
            _ => None,
        }
    }

    /// Whether retrying the failed operation may succeed.
    ///
    /// Classified substrate errors answer from their kind. An
    /// unclassified [`IdmError::Provider`] is treated as retryable —
    /// providers wrap substrate calls whose failure mode is unknown, and
    /// a bounded retry of an unknown fault is the safer default. Model
    /// errors (schema, conformance, parse, unknown ids) never are.
    pub fn is_retryable(&self) -> bool {
        match self {
            IdmError::Substrate { kind, .. } => {
                matches!(
                    kind,
                    SubstrateFaultKind::Transient | SubstrateFaultKind::Timeout
                )
            }
            IdmError::Provider { .. } => true,
            _ => false,
        }
    }

    /// Whether a degraded read (serving a stale last-known-good value,
    /// or a partial result) is an acceptable answer to this failure.
    /// True for substrate and provider failures — the data existed, the
    /// access path is down — and for resource exhaustion — the rows
    /// produced before the budget tripped are valid, just incomplete.
    /// False for model errors, which no cache entry can paper over.
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            IdmError::Substrate { .. }
                | IdmError::Provider { .. }
                | IdmError::ResourceExhausted { .. }
        )
    }

    /// Attaches a data source name to a provider/substrate error
    /// (no-op for other variants, and never overwrites attribution
    /// already present).
    pub fn with_source(self, source: impl Into<String>) -> Self {
        match self {
            IdmError::Provider {
                detail,
                source: None,
                vid,
            } => IdmError::Provider {
                detail,
                source: Some(source.into()),
                vid,
            },
            other => other,
        }
    }

    /// Attaches the view whose component force failed to a provider
    /// error (no-op for other variants; never overwrites).
    pub fn with_vid(self, vid: Vid) -> Self {
        match self {
            IdmError::Provider {
                detail,
                source,
                vid: None,
            } => IdmError::Provider {
                detail,
                source,
                vid: Some(vid),
            },
            other => other,
        }
    }

    /// Stamps the attempt number on a substrate error (no-op otherwise).
    pub fn with_attempt(self, attempt: u32) -> Self {
        match self {
            IdmError::Substrate {
                source,
                kind,
                detail,
                ..
            } => IdmError::Substrate {
                source,
                kind,
                attempt,
                detail,
            },
            other => other,
        }
    }
}

impl fmt::Display for IdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdmError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            IdmError::UnknownVid(vid) => write!(f, "unknown resource view id {vid}"),
            IdmError::UnknownClass(name) => write!(f, "unknown resource view class '{name}'"),
            IdmError::Conformance { vid, class, detail } => {
                write!(
                    f,
                    "view {vid} does not conform to class '{class}': {detail}"
                )
            }
            IdmError::GroupOverlap(vid) => {
                write!(f, "group component of view {vid} violates S ∩ Q = ∅")
            }
            IdmError::Provider {
                detail,
                source,
                vid,
            } => {
                write!(f, "lazy provider failed")?;
                if let Some(source) = source {
                    write!(f, " (source '{source}')")?;
                }
                if let Some(vid) = vid {
                    write!(f, " (view {vid})")?;
                }
                write!(f, ": {detail}")
            }
            IdmError::Substrate {
                source,
                kind,
                attempt,
                detail,
            } => {
                write!(
                    f,
                    "substrate '{source}' failed ({kind}, attempt {attempt}): {detail}"
                )
            }
            IdmError::ResourceExhausted {
                budget,
                consumed,
                limit,
                phase,
            } => {
                write!(
                    f,
                    "resource budget exhausted in {phase}: {budget} at {consumed} of {limit}"
                )
            }
            IdmError::InfiniteComponent { detail } => {
                write!(f, "operation requires a finite component: {detail}")
            }
            IdmError::Parse { detail } => write!(f, "parse error: {detail}"),
        }
    }
}

impl std::error::Error for IdmError {}

/// Convenience result alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, IdmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_display_carries_attribution() {
        let bare = IdmError::provider("disk on fire");
        assert_eq!(bare.to_string(), "lazy provider failed: disk on fire");

        let attributed = bare
            .with_source("filesystem")
            .with_vid(Vid::from_raw(7))
            .to_string();
        assert!(attributed.contains("filesystem"), "{attributed}");
        assert!(attributed.contains("v7"), "{attributed}");
        assert!(attributed.contains("disk on fire"), "{attributed}");
    }

    #[test]
    fn attribution_never_overwrites() {
        let e = IdmError::provider("x")
            .with_source("imap")
            .with_source("filesystem");
        let IdmError::Provider { source, .. } = &e else {
            panic!()
        };
        assert_eq!(source.as_deref(), Some("imap"));
    }

    #[test]
    fn classification_helpers() {
        assert!(IdmError::transient("fs", "x").is_retryable());
        assert!(IdmError::timeout("fs", "x").is_retryable());
        assert!(!IdmError::permanent("fs", "x").is_retryable());
        assert!(IdmError::provider("x").is_retryable());
        assert!(!IdmError::Parse { detail: "x".into() }.is_retryable());

        assert!(IdmError::transient("fs", "x").is_degradable());
        assert!(IdmError::permanent("fs", "x").is_degradable());
        assert!(!IdmError::UnknownVid(Vid::from_raw(1)).is_degradable());

        assert_eq!(
            IdmError::timeout("fs", "x").substrate_kind(),
            Some(SubstrateFaultKind::Timeout)
        );
        assert_eq!(IdmError::provider("x").substrate_kind(), None);
    }

    #[test]
    fn resource_exhaustion_is_degradable_but_not_retryable() {
        let e = IdmError::resource_exhausted(BudgetKind::WallClock, 52, 10, "relate");
        assert!(!e.is_retryable(), "rerunning with the same budget fails");
        assert!(
            e.is_degradable(),
            "partial results are an acceptable answer"
        );
        assert_eq!(e.budget_kind(), Some(BudgetKind::WallClock));
        assert_eq!(e.substrate_kind(), None);
        let text = e.to_string();
        assert!(text.contains("relate"), "{text}");
        assert!(text.contains("52 of 10"), "{text}");
        assert!(IdmError::provider("x").budget_kind().is_none());
    }

    #[test]
    fn attempt_is_stamped_and_displayed() {
        let e = IdmError::transient("imap", "reset").with_attempt(3);
        assert!(e.to_string().contains("attempt 3"), "{e}");
        assert!(IdmError::provider("x").with_attempt(9).is_retryable());
    }
}
