//! Crash-safe dataspace durability: write-ahead logging, checkpoint
//! snapshots and verified recovery (ARIES-style log-then-checkpoint,
//! redo-only).
//!
//! A durable dataspace directory contains:
//!
//! - `snap-<N>.idmsnap` — checkpoint snapshots ([`snapshot`]), each the
//!   full store image as of one log sequence number;
//! - `wal-<N>.idmlog` — WAL segments ([`wal`]); segment `N` holds every
//!   change committed after snapshot `N` was begun.
//!
//! The protocol, end to end:
//!
//! 1. **Attach** ([`DurabilityManager::attach`]): under one store
//!    freeze, write `snap-1` and arm logging into a fresh `wal-1` — no
//!    mutation can slip between the image and the log.
//! 2. **Log**: every `ViewStore` mutator appends one logical
//!    [`record::ChangeRecord`] under its shard write lock.
//! 3. **Checkpoint** ([`DurabilityManager::checkpoint`]): freeze just
//!    long enough to export the store and rotate the WAL into a new
//!    segment, then write the snapshot outside the freeze (temp file +
//!    fsync + atomic rename) and prune segments no recovery will need.
//! 4. **Recover** ([`DurabilityManager::open`]): load the newest *valid*
//!    snapshot (corrupt ones are skipped and counted), replay every WAL
//!    segment at or after it, truncate at the first torn or corrupt
//!    record, and report what happened in a [`RecoveryReport`].
//!
//! What survives a `kill -9`: every extensional component of every
//! committed mutation, class bindings, version counters, the vid
//! allocator, and lineage edges as of the last checkpoint. Intensional
//! (lazy) components that were never forced recover as empty — their
//! providers are process-local closures; forced *groups* are made
//! durable at force time via [`record::ChangeRecord::GroupForced`].

pub mod codec;
pub mod group_commit;
pub mod record;
pub mod scrub;
pub mod snapshot;
pub mod wal;

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::class::ClassRegistry;
use crate::fault::FaultPoint;
use crate::lineage::LineageGraph;
use crate::store::{StoreExport, Vid, ViewStore};

use record::{group_data, ChangeRecord, SerialView};
use snapshot::SnapshotData;
use wal::{read_segment, WalWriter};

pub use group_commit::{BulkWalScope, GroupCommitConfig, GroupCommitWal};
pub use scrub::{
    quarantine, Artifact, ArtifactKind, RoundOutcome, ScrubBudget, ScrubFinding, ScrubTotals,
    Scrubber, Verdict,
};
pub use wal::{SyncPolicy, WalStats, GROUP_HISTOGRAM_BUCKETS};

/// How a dataspace directory is attached or opened: the sync discipline
/// plus the (optional) group-commit coalescing configuration. The
/// plain [`DurabilityManager::attach`]/[`DurabilityManager::open`]
/// entry points use the default — group commit enabled with
/// `max_delay == 0`, which is byte-for-byte identical to the ungrouped
/// writer for single-threaded callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// When appends are made durable ([`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// Group-commit coalescing; `None` disables the queue entirely and
    /// every append goes straight to the raw writer.
    pub group_commit: Option<GroupCommitConfig>,
}

impl DurabilityOptions {
    /// The default options for a given sync policy.
    pub fn new(sync: SyncPolicy) -> Self {
        DurabilityOptions {
            sync,
            group_commit: Some(GroupCommitConfig::default()),
        }
    }
}

/// What recovery found and did, returned by [`DurabilityManager::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the snapshot recovery started from, if any.
    pub snapshot_seq: Option<u64>,
    /// Snapshot files that existed but failed validation and were
    /// skipped in favor of an older one.
    pub snapshots_skipped: usize,
    /// WAL segments replayed (including empty ones).
    pub wal_segments: usize,
    /// Change records replayed from the WAL tail.
    pub records_replayed: u64,
    /// Records that decoded but failed to apply (counted, not fatal).
    pub replay_errors: u64,
    /// Bytes of torn/corrupt WAL tail discarded (including orphaned
    /// segments after a mid-chain tear).
    pub bytes_truncated: u64,
    /// The log sequence number after recovery.
    pub lsn: u64,
    /// Group edges pointing at missing views (allowed by the model;
    /// reported for diagnostics).
    pub dangling_group_edges: usize,
    /// Live views after recovery.
    pub views: usize,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.snapshot_seq {
            Some(seq) => write!(f, "recovered from snapshot {seq}")?,
            None => write!(f, "recovered without a snapshot")?,
        }
        if self.snapshots_skipped > 0 {
            write!(
                f,
                " ({} corrupt snapshot(s) skipped)",
                self.snapshots_skipped
            )?;
        }
        write!(
            f,
            ", replayed {} record(s) from {} wal segment(s)",
            self.records_replayed, self.wal_segments
        )?;
        if self.replay_errors > 0 {
            write!(f, " ({} failed to apply)", self.replay_errors)?;
        }
        if self.bytes_truncated > 0 {
            write!(f, ", truncated {} torn byte(s)", self.bytes_truncated)?;
        }
        write!(
            f,
            "; {} view(s) live at lsn {}, {} dangling group edge(s)",
            self.views, self.lsn, self.dangling_group_edges
        )
    }
}

/// What one checkpoint wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Sequence number of the snapshot written.
    pub seq: u64,
    /// Views captured in the snapshot.
    pub views: usize,
    /// Snapshot size in bytes.
    pub bytes: u64,
    /// The log sequence number the snapshot is consistent as of. Doubles
    /// as the index epoch for the `IDMIDX02` handshake.
    pub lsn: u64,
}

/// What one [`DurabilityManager::scrub_round`] verified, found and
/// repaired.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Artifacts fully verified this round.
    pub artifacts_checked: usize,
    /// Bytes read and checksummed this round.
    pub bytes_verified: u64,
    /// Cooperative slices taken.
    pub slices: u64,
    /// Damage found (paths are pre-quarantine names).
    pub findings: Vec<ScrubFinding>,
    /// Where each damaged artifact was moved.
    pub quarantined: Vec<PathBuf>,
    /// The proactive repair checkpoint, when damage was found.
    pub repaired: Option<CheckpointStats>,
    /// The byte budget ran out before covering every artifact; the next
    /// round resumes from the scrubber's cursor.
    pub exhausted: bool,
}

impl fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scrubbed {} artifact(s), {} byte(s) in {} slice(s)",
            self.artifacts_checked, self.bytes_verified, self.slices
        )?;
        if !self.findings.is_empty() {
            write!(f, "; {} damaged", self.findings.len())?;
        }
        if !self.quarantined.is_empty() {
            write!(f, ", {} quarantined", self.quarantined.len())?;
        }
        if let Some(stats) = &self.repaired {
            write!(f, ", repaired via checkpoint {}", stats.seq)?;
        }
        if self.exhausted {
            write!(f, " (budget exhausted, resuming next round)")?;
        }
        Ok(())
    }
}

/// Owns the durable state of one dataspace directory: the current WAL
/// writer and the snapshot/segment sequence numbers.
#[derive(Debug)]
pub struct DurabilityManager {
    dir: PathBuf,
    /// Sequence of the newest snapshot on disk.
    seq: u64,
    /// Sequence of the segment the WAL currently appends to. Tracked
    /// separately from `seq`: if a snapshot write fails after a
    /// successful rotation, the next checkpoint must rotate *forward*,
    /// never reuse (and truncate) a live segment name.
    wal_seq: u64,
    sink: Arc<GroupCommitWal>,
    sync: SyncPolicy,
    /// Fault point consulted between WAL rotation and snapshot write
    /// during [`DurabilityManager::checkpoint`] (the double-fault crash
    /// matrix injects here). The field always exists; the check is
    /// compiled behind the `fault-injection` feature.
    checkpoint_fault: FaultPoint,
}

fn snap_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq}.idmsnap"))
}

fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq}.idmlog"))
}

/// Scans a dataspace directory for `snap-N.idmsnap` / `wal-N.idmlog`
/// files, returning `(snapshot seqs, wal seqs)` ascending.
fn scan_dir(dir: &Path) -> io::Result<(Vec<u64>, Vec<u64>)> {
    let mut snaps = Vec::new();
    let mut wals = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("snap-")
            .and_then(|r| r.strip_suffix(".idmsnap"))
            .and_then(|r| r.parse::<u64>().ok())
        {
            snaps.push(seq);
        } else if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|r| r.strip_suffix(".idmlog"))
            .and_then(|r| r.parse::<u64>().ok())
        {
            wals.push(seq);
        }
    }
    snaps.sort_unstable();
    wals.sort_unstable();
    Ok((snaps, wals))
}

fn snapshot_of(
    export: &StoreExport,
    store: &ViewStore,
    lineage: &LineageGraph,
    base_lsn: u64,
) -> SnapshotData {
    SnapshotData {
        base_lsn,
        next_vid: export.next_vid,
        classes: store.classes().export_defs(),
        views: export
            .views
            .iter()
            .map(|(vid, version, record)| {
                (
                    vid.as_u64(),
                    *version,
                    SerialView::of(record, store.classes()),
                )
            })
            .collect(),
        lineage: SnapshotData::lineage_from(lineage.export_edges()),
    }
}

/// Applies one replayed change record through the store's ordinary
/// mutators (the WAL is not armed during replay, so nothing re-logs).
fn apply_record(store: &ViewStore, record: ChangeRecord) -> crate::error::Result<()> {
    let classes = Arc::clone(store.classes());
    match record {
        ChangeRecord::Insert { vid, view } => {
            let rec = view.into_record(&classes)?;
            store.restore_insert(Vid::from_raw(vid), rec, 0)
        }
        ChangeRecord::Remove { vid } => store.remove(Vid::from_raw(vid)).map(|_| ()),
        ChangeRecord::SetName { vid, name } => store.set_name(Vid::from_raw(vid), name),
        ChangeRecord::SetTuple { vid, tuple } => store.set_tuple(Vid::from_raw(vid), tuple),
        ChangeRecord::SetContent { vid, content } => {
            store.set_content(Vid::from_raw(vid), content.into_content())
        }
        ChangeRecord::SetGroup { vid, group } => {
            store.set_group(Vid::from_raw(vid), group.into_group()?)
        }
        ChangeRecord::SetClass { vid, class } => store.set_class(
            Vid::from_raw(vid),
            class.map(|name| classes.lookup_or_register(&name)),
        ),
        ChangeRecord::AddGroupMember {
            vid,
            member,
            ordered,
        } => store.add_group_member(Vid::from_raw(vid), Vid::from_raw(member), ordered),
        ChangeRecord::GroupForced { vid, set, seq } => {
            store.apply_group_forced(Vid::from_raw(vid), group_data(set, seq)?)
        }
    }
}

impl DurabilityManager {
    /// Makes a live in-memory store durable in `dir` (which must not
    /// already hold a dataspace): under one store freeze, writes the
    /// initial snapshot `snap-1` *and* arms logging into a fresh
    /// `wal-1` — so there is no window in which a mutation could land in
    /// neither the image nor the log.
    pub fn attach(
        dir: &Path,
        store: &Arc<ViewStore>,
        lineage: &LineageGraph,
        sync: SyncPolicy,
    ) -> io::Result<(DurabilityManager, CheckpointStats)> {
        DurabilityManager::attach_with(dir, store, lineage, DurabilityOptions::new(sync))
    }

    /// [`DurabilityManager::attach`] with explicit [`DurabilityOptions`]
    /// (group-commit tuning).
    pub fn attach_with(
        dir: &Path,
        store: &Arc<ViewStore>,
        lineage: &LineageGraph,
        options: DurabilityOptions,
    ) -> io::Result<(DurabilityManager, CheckpointStats)> {
        let sync = options.sync;
        std::fs::create_dir_all(dir)?;
        let (snaps, wals) = scan_dir(dir)?;
        if !snaps.is_empty() || !wals.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "{} already holds a dataspace; open it instead",
                    dir.display()
                ),
            ));
        }

        let (export, frozen) =
            store.frozen_export(|export| -> io::Result<(Arc<GroupCommitWal>, u64)> {
                let data = snapshot_of(export, store, lineage, 0);
                let bytes = snapshot::write(&snap_path(dir, 1), &data)?;
                let wal = Arc::new(WalWriter::create(&wal_path(dir, 1), 0, sync)?);
                let sink = Arc::new(GroupCommitWal::new(wal, options.group_commit));
                store.set_wal(Arc::clone(&sink));
                Ok((sink, bytes))
            });
        let (sink, bytes) = match frozen {
            Ok(parts) => parts,
            Err(e) => {
                store.clear_wal();
                return Err(e);
            }
        };

        let stats = CheckpointStats {
            seq: 1,
            views: export.views.len(),
            bytes,
            lsn: 0,
        };
        Ok((
            DurabilityManager {
                dir: dir.to_path_buf(),
                seq: 1,
                wal_seq: 1,
                sink,
                sync,
                checkpoint_fault: FaultPoint::new(),
            },
            stats,
        ))
    }

    /// Opens (recovers) a durable dataspace: newest valid snapshot, WAL
    /// tail replay, torn-tail truncation. Returns the recovered store,
    /// its lineage graph, the manager now appending to the live segment,
    /// and the recovery report.
    pub fn open(
        dir: &Path,
        sync: SyncPolicy,
    ) -> io::Result<(
        Arc<ViewStore>,
        Arc<LineageGraph>,
        DurabilityManager,
        RecoveryReport,
    )> {
        DurabilityManager::open_with(dir, DurabilityOptions::new(sync))
    }

    /// [`DurabilityManager::open`] with explicit [`DurabilityOptions`]
    /// (group-commit tuning).
    pub fn open_with(
        dir: &Path,
        options: DurabilityOptions,
    ) -> io::Result<(
        Arc<ViewStore>,
        Arc<LineageGraph>,
        DurabilityManager,
        RecoveryReport,
    )> {
        let sync = options.sync;
        let (snaps, wals) = scan_dir(dir)?;
        if snaps.is_empty() && wals.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "{} holds no dataspace (no snapshots, no wal)",
                    dir.display()
                ),
            ));
        }

        // Newest valid snapshot wins; corrupt ones are skipped, counted
        // and quarantined (renamed, never deleted) so the evidence
        // survives for forensics.
        let mut snapshots_skipped = 0usize;
        let mut found: Option<(u64, SnapshotData)> = None;
        for &seq in snaps.iter().rev() {
            match snapshot::read(&snap_path(dir, seq)) {
                Ok(data) => {
                    found = Some((seq, data));
                    break;
                }
                Err(_) => {
                    snapshots_skipped += 1;
                    let _ = scrub::quarantine(&snap_path(dir, seq));
                }
            }
        }

        let (base_seq, registry, base_lsn, views, next_vid, lineage_edges) = match found {
            Some((seq, data)) => {
                let registry = ClassRegistry::from_defs(data.classes)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                (
                    Some(seq),
                    registry,
                    data.base_lsn,
                    data.views,
                    data.next_vid,
                    data.lineage,
                )
            }
            None => (
                None,
                ClassRegistry::with_builtins(),
                0,
                Vec::new(),
                0,
                Vec::new(),
            ),
        };

        let store = Arc::new(ViewStore::with_registry(Arc::new(registry)));
        for (vid, version, view) in views {
            let record = view
                .into_record(store.classes())
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            store
                .restore_insert(Vid::from_raw(vid), record, version)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        }
        store.force_next_vid(next_vid);
        let lineage = Arc::new(LineageGraph::new());
        lineage.import_edges(
            SnapshotData {
                base_lsn: 0,
                next_vid: 0,
                classes: Vec::new(),
                views: Vec::new(),
                lineage: lineage_edges,
            }
            .lineage_edges(),
        );

        // Replay segments at or after the snapshot, in contiguous
        // ascending order. A torn segment ends the chain there; later
        // (orphaned) segments can hold no replayable history and are
        // deleted, their bytes counted as truncated.
        let first_seq = base_seq.unwrap_or_else(|| wals.first().copied().unwrap_or(1));
        let chain: BTreeMap<u64, PathBuf> = wals
            .iter()
            .filter(|&&s| s >= first_seq)
            .map(|&s| (s, wal_path(dir, s)))
            .collect();

        let mut report = RecoveryReport {
            snapshot_seq: base_seq,
            snapshots_skipped,
            wal_segments: 0,
            records_replayed: 0,
            replay_errors: 0,
            bytes_truncated: 0,
            lsn: base_lsn,
            dangling_group_edges: 0,
            views: 0,
        };

        let mut live: Option<(u64, u64)> = None; // (seq, valid_len)
        let mut expected = first_seq;
        let mut broken = false;
        for (&seq, path) in &chain {
            if broken || seq != expected {
                // Orphaned segment after a tear or a gap: no record in it
                // can be contiguous with recovered history. Quarantined,
                // not deleted — the bytes still count as truncated but
                // stay on disk for forensics.
                let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                report.bytes_truncated += len;
                let _ = scrub::quarantine(path);
                continue;
            }
            expected += 1;
            let segment = read_segment(path)?;
            let torn = segment.torn_bytes();
            report.wal_segments += 1;
            report.bytes_truncated += torn;
            for record in segment.records {
                report.records_replayed += 1;
                if apply_record(&store, record).is_err() {
                    report.replay_errors += 1;
                }
            }
            live = Some((seq, segment.valid_len));
            if torn > 0 {
                broken = true;
            }
        }
        report.lsn = base_lsn + report.records_replayed;

        // Reopen the live segment for appending (truncating its torn
        // tail), or start a fresh one if none survived.
        let (wal_seq, wal) = match live {
            Some((seq, valid_len)) if valid_len >= 8 => {
                let writer =
                    WalWriter::open_append(&wal_path(dir, seq), valid_len, report.lsn, sync)?;
                (seq, writer)
            }
            Some((seq, _)) => {
                // Magic itself was torn — the segment held nothing.
                (
                    seq,
                    WalWriter::create(&wal_path(dir, seq), report.lsn, sync)?,
                )
            }
            None => {
                let seq = first_seq;
                (
                    seq,
                    WalWriter::create(&wal_path(dir, seq), report.lsn, sync)?,
                )
            }
        };
        let sink = Arc::new(GroupCommitWal::new(Arc::new(wal), options.group_commit));
        store.set_wal(Arc::clone(&sink));

        let invariants = store.verify_invariants();
        report.dangling_group_edges = invariants.dangling_edges;
        report.views = invariants.views;

        Ok((
            store,
            lineage,
            DurabilityManager {
                dir: dir.to_path_buf(),
                seq: base_seq.unwrap_or(0),
                wal_seq,
                sink,
                sync,
                checkpoint_fault: FaultPoint::new(),
            },
            report,
        ))
    }

    /// Writes a checkpoint: freeze the store just long enough to export
    /// it and rotate the WAL, write the snapshot outside the freeze
    /// (temp + fsync + atomic rename), then prune history no recovery
    /// will need (everything older than the previous snapshot stays
    /// until the *next* checkpoint, so one corrupt snapshot never
    /// strands recovery).
    pub fn checkpoint(
        &mut self,
        store: &Arc<ViewStore>,
        lineage: &LineageGraph,
    ) -> io::Result<CheckpointStats> {
        self.sink.ensure_healthy()?;
        let new_seq = self.wal_seq + 1;
        let (export, rotated) = store.frozen_export(|_| -> io::Result<u64> {
            let lsn = self.sink.lsn();
            self.sink.rotate(&wal_path(&self.dir, new_seq))?;
            Ok(lsn)
        });
        let lsn = rotated?;
        self.wal_seq = new_seq;

        // Double-fault injection site: the WAL has rotated but the
        // snapshot is not yet on disk. A crash here must still recover
        // an exact mutation prefix (previous snapshot + full chain).
        #[cfg(feature = "fault-injection")]
        self.checkpoint_fault
            .check("durability", "checkpoint-snapshot")
            .map_err(|e| io::Error::other(e.to_string()))?;

        let data = snapshot_of(&export, store, lineage, lsn);
        let bytes = snapshot::write(&snap_path(&self.dir, new_seq), &data)?;
        let previous = self.seq;
        self.seq = new_seq;

        // Retention rule: keep the new and the previous snapshot (and
        // their WAL segments); everything older is superseded. A
        // superseded artifact that still verifies is deleted; one that
        // is damaged is quarantined instead, so the evidence of *what*
        // rotted survives even though recovery no longer needs it.
        let (snaps, wals) = scan_dir(&self.dir)?;
        for seq in snaps.into_iter().filter(|&s| s < previous) {
            let path = snap_path(&self.dir, seq);
            match scrub::verify_artifact(&Artifact::Snapshot(path.clone())) {
                Ok(Verdict::Clean) => {
                    let _ = std::fs::remove_file(&path);
                }
                Ok(Verdict::Damaged(_)) => {
                    let _ = scrub::quarantine(&path);
                }
                Err(_) => {}
            }
        }
        for seq in wals.into_iter().filter(|&s| s < previous) {
            let path = wal_path(&self.dir, seq);
            match scrub::verify_artifact(&Artifact::SealedWal(path.clone())) {
                Ok(Verdict::Clean) => {
                    let _ = std::fs::remove_file(&path);
                }
                Ok(Verdict::Damaged(_)) => {
                    let _ = scrub::quarantine(&path);
                }
                Err(_) => {}
            }
        }

        Ok(CheckpointStats {
            seq: new_seq,
            views: export.views.len(),
            bytes,
            lsn,
        })
    }

    /// Runs one budgeted scrub round over every artifact in the
    /// dataspace directory (snapshots, sealed WAL segments, the live
    /// segment), then **self-heals** on damage:
    ///
    /// 1. every damaged artifact except the live WAL segment is
    ///    [quarantined](scrub::quarantine) immediately;
    /// 2. a proactive [checkpoint](DurabilityManager::checkpoint)
    ///    rotates the WAL and writes a fresh snapshot from the
    ///    in-memory store, re-establishing a clean recovery chain that
    ///    does not involve any damaged file;
    /// 3. a damaged live segment — now sealed by the rotation — is
    ///    quarantined last, so the writer is never left appending to a
    ///    name outside the chain while the chain still needs it.
    ///
    /// Keep-last-two retention makes step 1 always safe: even if the
    /// *newest* snapshot is quarantined and the repair checkpoint then
    /// fails, the previous snapshot plus the intact WAL chain still
    /// recovers everything.
    pub fn scrub_round(
        &mut self,
        store: &Arc<ViewStore>,
        lineage: &LineageGraph,
        scrubber: &mut Scrubber,
    ) -> io::Result<ScrubReport> {
        let (snaps, wals) = scan_dir(&self.dir)?;
        let mut artifacts = Vec::with_capacity(snaps.len() + wals.len());
        for seq in snaps {
            artifacts.push(Artifact::Snapshot(snap_path(&self.dir, seq)));
        }
        for seq in wals {
            let path = wal_path(&self.dir, seq);
            if seq == self.wal_seq {
                artifacts.push(Artifact::LiveWal(path));
            } else {
                artifacts.push(Artifact::SealedWal(path));
            }
        }
        let live = wal_path(&self.dir, self.wal_seq);
        let outcome = scrubber.round(&artifacts)?;
        let mut report = ScrubReport {
            artifacts_checked: outcome.artifacts_checked,
            bytes_verified: outcome.bytes_verified,
            slices: outcome.slices,
            findings: outcome.damaged.clone(),
            quarantined: Vec::new(),
            repaired: None,
            exhausted: outcome.exhausted,
        };
        if outcome.damaged.is_empty() {
            return Ok(report);
        }
        for finding in &outcome.damaged {
            if finding.path != live {
                report.quarantined.push(scrub::quarantine(&finding.path)?);
            }
        }
        let stats = self.checkpoint(store, lineage)?;
        for finding in &outcome.damaged {
            if finding.path == live {
                report.quarantined.push(scrub::quarantine(&finding.path)?);
            }
        }
        report.repaired = Some(stats);
        scrubber.reset_cursor();
        Ok(report)
    }

    /// The dataspace directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current log sequence number.
    pub fn lsn(&self) -> u64 {
        self.sink.lsn()
    }

    /// The raw WAL writer (fault injection and health checks).
    pub fn wal(&self) -> &Arc<WalWriter> {
        self.sink.raw()
    }

    /// The group-commit front end every store mutation flows through.
    pub fn sink(&self) -> &Arc<GroupCommitWal> {
        &self.sink
    }

    /// Write-path telemetry for the current WAL writer (frames, syncs,
    /// group-size histogram). Counters reset on open/rotate of the
    /// process, not of the segment.
    pub fn wal_stats(&self) -> WalStats {
        self.sink.stats()
    }

    /// The sequence number of the newest snapshot.
    pub fn snapshot_seq(&self) -> u64 {
        self.seq
    }

    /// The sync policy the WAL was opened with.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// The fault point consulted mid-checkpoint, between WAL rotation
    /// and snapshot write (crash-matrix tests inject here; the check is
    /// compiled behind the `fault-injection` feature).
    pub fn checkpoint_fault_point(&self) -> &FaultPoint {
        &self.checkpoint_fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::Content;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("idm-dur-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn attach_checkpoint_open_roundtrip() {
        let dir = tmp("roundtrip");
        let store = Arc::new(ViewStore::new());
        let a = store.build("a.txt").text("alpha").insert();
        let lineage = LineageGraph::new();

        let (mut mgr, stats) =
            DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
        assert_eq!(stats.seq, 1);
        assert_eq!(stats.views, 1);
        assert_eq!(stats.lsn, 0);

        // Post-attach mutations are logged.
        let b = store.build("b.txt").text("beta").insert();
        store.set_name(a, Some("a2.txt".into())).unwrap();
        lineage.record(b, a, "copy");
        assert_eq!(mgr.lsn(), 2);

        let stats = mgr.checkpoint(&store, &lineage).unwrap();
        assert_eq!(stats.seq, 2);
        assert_eq!(stats.views, 2);
        assert_eq!(stats.lsn, 2);
        drop(store);
        drop(mgr);

        let (store2, lineage2, mgr2, report) =
            DurabilityManager::open(&dir, SyncPolicy::WriteBack).unwrap();
        assert_eq!(report.snapshot_seq, Some(2));
        assert_eq!(report.records_replayed, 0, "checkpoint folded the log");
        assert_eq!(report.views, 2);
        assert_eq!(report.lsn, 2);
        assert_eq!(store2.name(a).unwrap().as_deref(), Some("a2.txt"));
        assert_eq!(store2.name(b).unwrap().as_deref(), Some("b.txt"));
        assert_eq!(store2.version(a).unwrap(), 1);
        assert_eq!(lineage2.provenance(b).len(), 1);
        assert_eq!(mgr2.lsn(), 2);
    }

    #[test]
    fn wal_tail_replays_without_checkpoint() {
        let dir = tmp("tail");
        let store = Arc::new(ViewStore::new());
        let lineage = LineageGraph::new();
        let (_mgr, _) =
            DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();

        let v = store.build("doc").insert();
        store.set_content(v, Content::text("hello")).unwrap();
        store.set_name(v, Some("doc2".into())).unwrap();
        drop(store);

        let (store2, _, _, report) = DurabilityManager::open(&dir, SyncPolicy::WriteBack).unwrap();
        assert_eq!(report.records_replayed, 3);
        assert_eq!(report.replay_errors, 0);
        assert_eq!(store2.name(v).unwrap().as_deref(), Some("doc2"));
        assert_eq!(
            store2.content(v).unwrap().bytes().unwrap().as_ref(),
            b"hello"
        );
        assert_eq!(store2.version(v).unwrap(), 2);
    }

    #[test]
    fn attach_rejects_populated_directory() {
        let dir = tmp("populated");
        let store = Arc::new(ViewStore::new());
        let lineage = LineageGraph::new();
        DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
        let store2 = Arc::new(ViewStore::new());
        let err =
            DurabilityManager::attach(&dir, &store2, &lineage, SyncPolicy::WriteBack).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert!(!store2.wal_armed());
    }

    #[test]
    fn open_empty_directory_errors() {
        let dir = tmp("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let err = DurabilityManager::open(&dir, SyncPolicy::WriteBack).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous() {
        let dir = tmp("fallback");
        let store = Arc::new(ViewStore::new());
        let lineage = LineageGraph::new();
        let (mut mgr, _) =
            DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
        store.build("one").insert();
        mgr.checkpoint(&store, &lineage).unwrap();
        store.build("two").insert();
        mgr.checkpoint(&store, &lineage).unwrap();
        drop(store);
        drop(mgr);

        // Corrupt the newest snapshot (seq 3).
        let newest = snap_path(&dir, 3);
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let (store2, _, _, report) = DurabilityManager::open(&dir, SyncPolicy::WriteBack).unwrap();
        assert_eq!(report.snapshots_skipped, 1);
        assert_eq!(report.snapshot_seq, Some(2));
        // Snapshot 2 plus wal-2's replay ("two" insert) and wal-3 (empty).
        assert_eq!(report.records_replayed, 1);
        assert_eq!(store2.len(), 2);
    }

    #[test]
    fn checkpoint_prunes_old_history_but_keeps_previous() {
        let dir = tmp("prune");
        let store = Arc::new(ViewStore::new());
        let lineage = LineageGraph::new();
        let (mut mgr, _) =
            DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
        for i in 0..4 {
            store.build(format!("v{i}")).insert();
            mgr.checkpoint(&store, &lineage).unwrap();
        }
        let (snaps, wals) = scan_dir(&dir).unwrap();
        assert_eq!(snaps, vec![4, 5], "current + previous snapshots kept");
        assert_eq!(wals, vec![4, 5]);
    }

    fn flip_byte(path: &Path, from_end: usize) {
        let mut bytes = std::fs::read(path).unwrap();
        let at = bytes.len() - from_end;
        bytes[at] ^= 0x40;
        std::fs::write(path, &bytes).unwrap();
    }

    fn names_of(store: &ViewStore) -> Vec<String> {
        let mut names: Vec<String> = store
            .vids()
            .into_iter()
            .filter_map(|v| store.name(v).ok().flatten())
            .collect();
        names.sort();
        names
    }

    #[test]
    fn clean_scrub_round_finds_nothing_and_repairs_nothing() {
        let dir = tmp("scrubclean");
        let store = Arc::new(ViewStore::new());
        let lineage = LineageGraph::new();
        let (mut mgr, _) =
            DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
        store.build("a").insert();
        mgr.checkpoint(&store, &lineage).unwrap();
        store.build("b").insert();

        let mut scrubber = Scrubber::new(ScrubBudget::default());
        let report = mgr.scrub_round(&store, &lineage, &mut scrubber).unwrap();
        assert!(report.findings.is_empty(), "{report}");
        assert!(report.quarantined.is_empty());
        assert!(report.repaired.is_none());
        assert!(report.artifacts_checked >= 3, "{report}");
        assert!(report.bytes_verified > 0);
        assert!(!report.exhausted);
    }

    /// The corruption-repair matrix: a single byte flip in each artifact
    /// class is detected online, quarantined, repaired without restart,
    /// and the next open recovers the full state.
    #[test]
    fn scrub_round_heals_a_flipped_snapshot_byte() {
        let dir = tmp("scrubsnap");
        let store = Arc::new(ViewStore::new());
        let lineage = LineageGraph::new();
        let (mut mgr, _) =
            DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
        store.build("a").insert();
        mgr.checkpoint(&store, &lineage).unwrap();
        store.build("b").insert();
        flip_byte(&snap_path(&dir, 2), 20);

        let mut scrubber = Scrubber::new(ScrubBudget::default());
        let report = mgr.scrub_round(&store, &lineage, &mut scrubber).unwrap();
        assert_eq!(report.findings.len(), 1, "{report}");
        assert_eq!(report.findings[0].kind, ArtifactKind::Snapshot);
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.quarantined[0]
            .to_string_lossy()
            .ends_with("snap-2.idmsnap.quarantine"));
        assert!(report.repaired.is_some());
        drop(store);
        drop(mgr);

        let (store2, _, _, recovery) =
            DurabilityManager::open(&dir, SyncPolicy::WriteBack).unwrap();
        assert_eq!(recovery.snapshots_skipped, 0, "repair left a clean chain");
        assert_eq!(names_of(&store2), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn scrub_round_heals_a_flipped_sealed_wal_byte() {
        let dir = tmp("scrubwal");
        let store = Arc::new(ViewStore::new());
        let lineage = LineageGraph::new();
        let (mut mgr, _) =
            DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
        store.build("a").insert();
        mgr.checkpoint(&store, &lineage).unwrap(); // seals wal-1
        store.build("b").insert();
        flip_byte(&wal_path(&dir, 1), 5);

        let mut scrubber = Scrubber::new(ScrubBudget::default());
        let report = mgr.scrub_round(&store, &lineage, &mut scrubber).unwrap();
        assert_eq!(report.findings.len(), 1, "{report}");
        assert_eq!(report.findings[0].kind, ArtifactKind::WalSegment);
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.repaired.is_some());
        drop(store);
        drop(mgr);

        let (store2, _, _, _) = DurabilityManager::open(&dir, SyncPolicy::WriteBack).unwrap();
        assert_eq!(names_of(&store2), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn scrub_round_heals_a_flipped_live_wal_byte() {
        let dir = tmp("scrublive");
        let store = Arc::new(ViewStore::new());
        let lineage = LineageGraph::new();
        let (mut mgr, _) =
            DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
        store.build("a").insert();
        store.build("b").insert();
        // Damage a committed frame in the segment being appended to.
        flip_byte(&wal_path(&dir, 1), 10);

        let mut scrubber = Scrubber::new(ScrubBudget::default());
        let report = mgr.scrub_round(&store, &lineage, &mut scrubber).unwrap();
        assert_eq!(report.findings.len(), 1, "{report}");
        assert!(report.repaired.is_some());
        // The damaged segment was quarantined only after the repair
        // checkpoint rotated the writer off it.
        assert!(report.quarantined[0]
            .to_string_lossy()
            .contains("wal-1.idmlog.quarantine"));

        // The store keeps working: post-repair appends land in the new
        // segment and survive.
        store.build("c").insert();
        drop(store);
        drop(mgr);
        let (store2, _, _, recovery) =
            DurabilityManager::open(&dir, SyncPolicy::WriteBack).unwrap();
        assert_eq!(recovery.snapshots_skipped, 0);
        assert_eq!(
            names_of(&store2),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
    }

    #[test]
    fn pruning_quarantines_damaged_superseded_artifacts() {
        let dir = tmp("prunequarantine");
        let store = Arc::new(ViewStore::new());
        let lineage = LineageGraph::new();
        let (mut mgr, _) =
            DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
        store.build("v0").insert();
        mgr.checkpoint(&store, &lineage).unwrap(); // snap-2
        store.build("v1").insert();
        // Damage snap-1 while it is still retained (previous = 1 set it
        // out of pruning range so far).
        flip_byte(&snap_path(&dir, 1), 12);
        mgr.checkpoint(&store, &lineage).unwrap(); // snap-3: prunes < 2
        let (snaps, _) = scan_dir(&dir).unwrap();
        assert_eq!(snaps, vec![2, 3]);
        assert!(
            dir.join("snap-1.idmsnap.quarantine").exists(),
            "damaged superseded snapshot kept as evidence"
        );
        assert!(!snap_path(&dir, 1).exists());
    }

    #[test]
    fn recovery_quarantines_corrupt_snapshots_and_orphan_segments() {
        let dir = tmp("recoveryquarantine");
        let store = Arc::new(ViewStore::new());
        let lineage = LineageGraph::new();
        let (mut mgr, _) =
            DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
        store.build("one").insert();
        mgr.checkpoint(&store, &lineage).unwrap();
        store.build("two").insert();
        mgr.checkpoint(&store, &lineage).unwrap();
        drop(store);
        drop(mgr);

        // Corrupt the newest snapshot and tear wal-2 so wal-3 orphans.
        flip_byte(&snap_path(&dir, 3), 10);
        let wal2 = wal_path(&dir, 2);
        let bytes = std::fs::read(&wal2).unwrap();
        std::fs::write(&wal2, &bytes[..bytes.len() - 3]).unwrap();

        let (_, _, _, report) = DurabilityManager::open(&dir, SyncPolicy::WriteBack).unwrap();
        assert_eq!(report.snapshots_skipped, 1);
        assert!(report.bytes_truncated > 0);
        assert!(dir.join("snap-3.idmsnap.quarantine").exists());
        assert!(
            dir.join("wal-3.idmlog.quarantine").exists(),
            "orphaned segment quarantined, not deleted"
        );
    }

    #[test]
    fn recovery_truncates_torn_tail_and_resumes_appending() {
        let dir = tmp("resume");
        let store = Arc::new(ViewStore::new());
        let lineage = LineageGraph::new();
        DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
        store.build("a").insert();
        store.build("b").insert();
        drop(store);

        // Tear the tail of wal-1 mid-record.
        let path = wal_path(&dir, 1);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (store2, lineage2, mut mgr, report) =
            DurabilityManager::open(&dir, SyncPolicy::WriteBack).unwrap();
        assert_eq!(report.records_replayed, 1, "torn insert discarded");
        assert!(report.bytes_truncated > 0);
        assert_eq!(store2.len(), 1);

        // The store keeps working and the next recovery sees new writes.
        store2.build("c").insert();
        mgr.checkpoint(&store2, &lineage2).unwrap();
        drop(store2);
        let (store3, _, _, report) = DurabilityManager::open(&dir, SyncPolicy::WriteBack).unwrap();
        assert_eq!(report.records_replayed, 0);
        assert_eq!(store3.len(), 2);
    }
}
