//! Online integrity scrub: budgeted, resumable checksum verification of
//! durable artifacts, and the quarantine path for damaged ones.
//!
//! A dataspace that lives for years *will* see bit rot. Recovery-time
//! validation ([`super::DurabilityManager::open`]) only helps after a
//! restart; the scrubber finds damage while the system is up, so it can
//! be repaired from live state instead of discovered after a crash.
//!
//! Design, mirroring the cooperative checkpoints of the query budget
//! (`idm-query::budget`):
//!
//! - Work is metered in **slices** ([`ScrubBudget::slice_bytes`] read at
//!   a time) against an optional per-round byte budget. A round that
//!   exhausts its budget saves a [cursor](Scrubber) — artifact path,
//!   byte offset, running hash — and the next round resumes exactly
//!   there, so foreground work is never stalled by a large artifact.
//! - Verification is **streaming**: trailing-checksum artifacts
//!   (snapshots, `IDMIDX02` index bundles) hash every byte up to the
//!   trailer and compare; WAL segments are walked frame by frame with
//!   each frame's own checksum. A single flipped bit anywhere in any
//!   artifact class changes a covered checksum, so it is always
//!   detected.
//! - Damage is never destroyed: [`quarantine`] renames the artifact to
//!   `*.quarantine` (keeping forensic evidence) and the caller
//!   re-establishes a clean chain with a proactive checkpoint.
//!
//! The live WAL segment is scrubbed too: its length is captured first
//! and only frames *fully contained* in that prefix are checked —
//! appends are sequential, so a complete frame inside the captured
//! prefix is final and must verify; an in-flight tail is left alone.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use super::snapshot::{sync_parent_dir, SNAP_MAGIC};
use super::wal::{MAX_RECORD_LEN, WAL_MAGIC};

/// FNV-1a 64-bit offset basis (matches [`super::codec::fnv1a64`]).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

// ---------------------------------------------------------------------------
// Budget
// ---------------------------------------------------------------------------

/// How much a scrub round may read, and in what increments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubBudget {
    /// Bytes read per slice before the budget is consulted again.
    pub slice_bytes: usize,
    /// Total bytes one round may verify; `None` scrubs everything in a
    /// single round. A round may overshoot by at most one WAL frame
    /// (frames are only left mid-way for trailing-checksum artifacts).
    pub max_bytes_per_round: Option<u64>,
}

impl Default for ScrubBudget {
    fn default() -> Self {
        ScrubBudget {
            slice_bytes: 256 * 1024,
            max_bytes_per_round: None,
        }
    }
}

impl ScrubBudget {
    /// A budget that verifies at most `max_bytes` per round.
    pub fn bounded(max_bytes: u64) -> Self {
        ScrubBudget {
            max_bytes_per_round: Some(max_bytes),
            ..ScrubBudget::default()
        }
    }
}

/// Per-round byte meter (the scrub analogue of `BudgetTracker`).
struct Meter {
    max: Option<u64>,
    bytes: u64,
    slices: u64,
}

impl Meter {
    fn new(budget: &ScrubBudget) -> Meter {
        Meter {
            max: budget.max_bytes_per_round,
            bytes: 0,
            slices: 0,
        }
    }

    fn charge(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.slices += 1;
    }

    fn exhausted(&self) -> bool {
        self.max.is_some_and(|m| self.bytes >= m)
    }
}

// ---------------------------------------------------------------------------
// Artifacts and verdicts
// ---------------------------------------------------------------------------

/// One durable artifact the scrubber knows how to verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Artifact {
    /// A checkpoint snapshot (`IDMSNAP1` + payload + trailing FNV).
    Snapshot(PathBuf),
    /// A WAL segment no writer appends to: any torn or corrupt frame,
    /// including a torn tail, is damage.
    SealedWal(PathBuf),
    /// The WAL segment currently appended to: only frames fully inside
    /// the length captured at scan start are checked; an in-flight tail
    /// is not damage.
    LiveWal(PathBuf),
    /// Any other magic-prefixed, trailing-FNV artifact (index bundles).
    TrailingChecksum {
        /// Artifact path.
        path: PathBuf,
        /// Expected 8-byte magic.
        magic: [u8; 8],
    },
}

impl Artifact {
    /// The artifact's path.
    pub fn path(&self) -> &Path {
        match self {
            Artifact::Snapshot(p) | Artifact::SealedWal(p) | Artifact::LiveWal(p) => p,
            Artifact::TrailingChecksum { path, .. } => path,
        }
    }

    /// The artifact class, for reports.
    pub fn kind(&self) -> ArtifactKind {
        match self {
            Artifact::Snapshot(_) => ArtifactKind::Snapshot,
            Artifact::SealedWal(_) | Artifact::LiveWal(_) => ArtifactKind::WalSegment,
            Artifact::TrailingChecksum { .. } => ArtifactKind::Index,
        }
    }
}

/// Artifact class, for findings and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// Checkpoint snapshot.
    Snapshot,
    /// WAL segment.
    WalSegment,
    /// Index bundle (or other trailing-checksum artifact).
    Index,
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactKind::Snapshot => write!(f, "snapshot"),
            ArtifactKind::WalSegment => write!(f, "wal"),
            ArtifactKind::Index => write!(f, "index"),
        }
    }
}

/// One-shot verification outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every covered byte verified.
    Clean,
    /// The artifact is damaged; the string says how.
    Damaged(String),
}

/// Internal outcome of one budgeted scan of one artifact.
enum Scan {
    Clean,
    Damaged(String),
    /// Budget ran out; resume at `offset` with running `hash`.
    Paused {
        offset: u64,
        hash: u64,
    },
}

// ---------------------------------------------------------------------------
// Streaming verifiers
// ---------------------------------------------------------------------------

/// Verifies a `magic + payload + trailing fnv1a64 (LE)` artifact in
/// budgeted slices. `offset`/`hash` resume a previous pause (both zero
/// to start; `hash` of 0 means "fresh" and is replaced by the FNV
/// offset basis).
fn scan_trailing(
    path: &Path,
    magic: &[u8; 8],
    start_offset: u64,
    start_hash: u64,
    slice: usize,
    meter: &mut Meter,
) -> io::Result<Scan> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    if len < 16 {
        return Ok(Scan::Damaged(format!("truncated: {len} byte(s)")));
    }
    let hashed_end = len - 8;
    let mut offset = start_offset.min(hashed_end);
    let mut hash = if offset == 0 { FNV_OFFSET } else { start_hash };
    if offset > 0 {
        file.seek(SeekFrom::Start(offset))?;
    }
    let mut buf = vec![0u8; slice.max(16)];
    let mut first = offset == 0;
    while offset < hashed_end {
        let want =
            usize::try_from((hashed_end - offset).min(buf.len() as u64)).unwrap_or(buf.len());
        let chunk = &mut buf[..want];
        file.read_exact(chunk)?;
        if first {
            if chunk.len() >= 8 && &chunk[..8] != magic {
                return Ok(Scan::Damaged("bad magic".into()));
            }
            first = false;
        }
        hash = fnv1a64_update(hash, chunk);
        offset += chunk.len() as u64;
        meter.charge(chunk.len() as u64);
        if meter.exhausted() && offset < hashed_end {
            return Ok(Scan::Paused { offset, hash });
        }
    }
    let mut trailer = [0u8; 8];
    file.seek(SeekFrom::Start(hashed_end))?;
    file.read_exact(&mut trailer)?;
    meter.charge(8);
    if u64::from_le_bytes(trailer) != hash {
        return Ok(Scan::Damaged("checksum mismatch".into()));
    }
    Ok(Scan::Clean)
}

/// Walks WAL frames (`[len u32][fnv u64][payload]` after the 8-byte
/// magic) verifying each frame checksum. For the live segment only the
/// prefix captured at open is checked and an incomplete tail is not
/// damage; for sealed segments any torn byte is.
fn scan_wal(
    path: &Path,
    sealed: bool,
    start_offset: u64,
    slice: usize,
    meter: &mut Meter,
) -> io::Result<Scan> {
    let mut file = File::open(path)?;
    let limit = file.metadata()?.len();
    if limit < 8 {
        return if sealed {
            Ok(Scan::Damaged(format!("truncated magic: {limit} byte(s)")))
        } else {
            // A live segment this short is still being created.
            Ok(Scan::Clean)
        };
    }
    let mut offset = start_offset;
    if offset == 0 {
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        meter.charge(8);
        if &magic != WAL_MAGIC {
            return Ok(Scan::Damaged("bad magic".into()));
        }
        offset = 8;
    } else {
        file.seek(SeekFrom::Start(offset))?;
    }
    let mut buf = vec![0u8; slice.max(64)];
    loop {
        if offset == limit {
            return Ok(Scan::Clean);
        }
        if offset + 12 > limit {
            return if sealed {
                Ok(Scan::Damaged(format!("torn frame header at {offset}")))
            } else {
                Ok(Scan::Clean)
            };
        }
        let mut header = [0u8; 12];
        file.read_exact(&mut header)?;
        meter.charge(12);
        let payload_len = u64::from(u32::from_le_bytes([
            header[0], header[1], header[2], header[3],
        ]));
        let expect = u64::from_le_bytes([
            header[4], header[5], header[6], header[7], header[8], header[9], header[10],
            header[11],
        ]);
        if payload_len > u64::from(MAX_RECORD_LEN) {
            return Ok(Scan::Damaged(format!(
                "frame at {offset} claims {payload_len} bytes"
            )));
        }
        let end = offset + 12 + payload_len;
        if end > limit {
            return if sealed {
                Ok(Scan::Damaged(format!("torn frame payload at {offset}")))
            } else {
                Ok(Scan::Clean)
            };
        }
        let mut hash = FNV_OFFSET;
        let mut remaining = payload_len;
        while remaining > 0 {
            let want = usize::try_from(remaining.min(buf.len() as u64)).unwrap_or(buf.len());
            let chunk = &mut buf[..want];
            file.read_exact(chunk)?;
            hash = fnv1a64_update(hash, chunk);
            remaining -= chunk.len() as u64;
            meter.charge(chunk.len() as u64);
        }
        if hash != expect {
            return Ok(Scan::Damaged(format!(
                "frame checksum mismatch at {offset}"
            )));
        }
        offset = end;
        // Pause only at frame boundaries: the cursor then needs no
        // partial-frame hash state. A round overshoots by at most one
        // frame.
        if meter.exhausted() && offset < limit {
            return Ok(Scan::Paused { offset, hash: 0 });
        }
    }
}

fn scan_artifact(
    artifact: &Artifact,
    start_offset: u64,
    start_hash: u64,
    slice: usize,
    meter: &mut Meter,
) -> io::Result<Scan> {
    match artifact {
        Artifact::Snapshot(path) => {
            scan_trailing(path, SNAP_MAGIC, start_offset, start_hash, slice, meter)
        }
        Artifact::TrailingChecksum { path, magic } => {
            scan_trailing(path, magic, start_offset, start_hash, slice, meter)
        }
        Artifact::SealedWal(path) => scan_wal(path, true, start_offset, slice, meter),
        Artifact::LiveWal(path) => scan_wal(path, false, start_offset, slice, meter),
    }
}

/// Fully verifies one artifact, unbudgeted. Used by checkpoint pruning
/// (decide delete vs quarantine) and by tests.
pub fn verify_artifact(artifact: &Artifact) -> io::Result<Verdict> {
    let mut meter = Meter::new(&ScrubBudget::default());
    match scan_artifact(
        artifact,
        0,
        0,
        ScrubBudget::default().slice_bytes,
        &mut meter,
    )? {
        Scan::Clean => Ok(Verdict::Clean),
        Scan::Damaged(detail) => Ok(Verdict::Damaged(detail)),
        Scan::Paused { .. } => unreachable!("unbudgeted scan cannot pause"),
    }
}

// ---------------------------------------------------------------------------
// Quarantine
// ---------------------------------------------------------------------------

/// Renames a damaged artifact to `<name>.quarantine` (suffixing `.2`,
/// `.3`, … if that name is taken). The bytes are never deleted: the
/// quarantined file no longer matches the `snap-*/wal-*` patterns, so
/// recovery, pruning and scrubbing all ignore it, but forensic evidence
/// of what was damaged survives on disk.
pub fn quarantine(path: &Path) -> io::Result<PathBuf> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unnamed artifact"))?
        .to_owned();
    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    let mut target = parent.join(format!("{name}.quarantine"));
    let mut n = 1u32;
    while target.exists() {
        n += 1;
        target = parent.join(format!("{name}.quarantine.{n}"));
    }
    std::fs::rename(path, &target)?;
    let _ = sync_parent_dir(&target);
    Ok(target)
}

// ---------------------------------------------------------------------------
// Scrubber
// ---------------------------------------------------------------------------

/// One damaged artifact found by a round.
#[derive(Debug, Clone)]
pub struct ScrubFinding {
    /// Path of the damaged artifact (pre-quarantine).
    pub path: PathBuf,
    /// Artifact class.
    pub kind: ArtifactKind,
    /// What failed to verify.
    pub detail: String,
}

/// What one [`Scrubber::round`] did.
#[derive(Debug, Clone, Default)]
pub struct RoundOutcome {
    /// Artifacts fully verified this round.
    pub artifacts_checked: usize,
    /// Bytes read and verified this round.
    pub bytes_verified: u64,
    /// Cooperative slices taken.
    pub slices: u64,
    /// Damaged artifacts (not yet quarantined — the caller decides).
    pub damaged: Vec<ScrubFinding>,
    /// The byte budget ran out before the artifact list was covered;
    /// the next round resumes from the saved cursor.
    pub exhausted: bool,
}

/// Lifetime totals across every round of one [`Scrubber`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubTotals {
    /// Rounds run.
    pub rounds: u64,
    /// Bytes verified across all rounds.
    pub bytes_verified: u64,
    /// Cooperative slices across all rounds.
    pub slices: u64,
    /// Artifacts fully verified across all rounds.
    pub artifacts_checked: u64,
    /// Damaged artifacts found across all rounds.
    pub findings: u64,
}

/// Resume point between budgeted rounds.
#[derive(Debug, Clone)]
struct Cursor {
    path: PathBuf,
    /// Artifact length when the cursor was taken; a changed length
    /// (artifact rewritten) restarts it from zero.
    len: u64,
    offset: u64,
    hash: u64,
}

/// The budgeted, resumable scrub driver. Owns the cursor that carries
/// progress across rounds; pass the same `Scrubber` to every round.
#[derive(Debug)]
pub struct Scrubber {
    budget: ScrubBudget,
    cursor: Option<Cursor>,
    totals: ScrubTotals,
}

impl Scrubber {
    /// A scrubber with the given per-round budget.
    pub fn new(budget: ScrubBudget) -> Scrubber {
        Scrubber {
            budget,
            cursor: None,
            totals: ScrubTotals::default(),
        }
    }

    /// Lifetime totals.
    pub fn totals(&self) -> ScrubTotals {
        self.totals
    }

    /// The configured budget.
    pub fn budget(&self) -> ScrubBudget {
        self.budget
    }

    /// Drops the resume cursor (after the artifact set changed, e.g. a
    /// repair checkpoint rewrote the chain).
    pub fn reset_cursor(&mut self) {
        self.cursor = None;
    }

    /// Runs one budgeted round over `artifacts`, resuming from the
    /// saved cursor. Artifacts are visited in list order starting at
    /// the cursor's artifact, wrapping around, so repeated rounds cover
    /// the whole set even when each round's budget is small.
    pub fn round(&mut self, artifacts: &[Artifact]) -> io::Result<RoundOutcome> {
        let mut outcome = RoundOutcome::default();
        self.totals.rounds += 1;
        if artifacts.is_empty() {
            return Ok(outcome);
        }
        let mut meter = Meter::new(&self.budget);
        let start = self
            .cursor
            .as_ref()
            .and_then(|c| artifacts.iter().position(|a| a.path() == c.path))
            .unwrap_or(0);
        let mut resume = self.cursor.take();
        for step in 0..artifacts.len() {
            let artifact = &artifacts[(start + step) % artifacts.len()];
            let (mut offset, mut hash) = (0u64, 0u64);
            if let Some(cursor) = resume.take() {
                if cursor.path == artifact.path() {
                    let len = std::fs::metadata(artifact.path()).map(|m| m.len());
                    if len.is_ok_and(|l| l == cursor.len || !artifact_is_immutable(artifact)) {
                        offset = cursor.offset;
                        hash = cursor.hash;
                    }
                }
            }
            match scan_artifact(artifact, offset, hash, self.budget.slice_bytes, &mut meter) {
                Ok(Scan::Clean) => outcome.artifacts_checked += 1,
                Ok(Scan::Damaged(detail)) => {
                    outcome.artifacts_checked += 1;
                    outcome.damaged.push(ScrubFinding {
                        path: artifact.path().to_path_buf(),
                        kind: artifact.kind(),
                        detail,
                    });
                }
                Ok(Scan::Paused { offset, hash }) => {
                    let len = std::fs::metadata(artifact.path())
                        .map(|m| m.len())
                        .unwrap_or(0);
                    self.cursor = Some(Cursor {
                        path: artifact.path().to_path_buf(),
                        len,
                        offset,
                        hash,
                    });
                    outcome.exhausted = true;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    // Raced with pruning/quarantine; nothing to verify.
                }
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                    // The artifact shrank under us (rewrite race): treat
                    // as unverifiable this round, retry next round.
                }
                Err(e) => return Err(e),
            }
            if meter.exhausted() && step + 1 < artifacts.len() {
                // Budget gone between artifacts: remember where to pick
                // up (start of the next artifact).
                let next = &artifacts[(start + step + 1) % artifacts.len()];
                self.cursor = Some(Cursor {
                    path: next.path().to_path_buf(),
                    len: 0,
                    offset: 0,
                    hash: 0,
                });
                outcome.exhausted = true;
                break;
            }
        }
        outcome.bytes_verified = meter.bytes;
        outcome.slices = meter.slices;
        self.totals.bytes_verified += meter.bytes;
        self.totals.slices += meter.slices;
        self.totals.artifacts_checked += outcome.artifacts_checked as u64;
        self.totals.findings += outcome.damaged.len() as u64;
        Ok(outcome)
    }
}

/// Whether a changed file length invalidates a resume cursor. The live
/// WAL legitimately grows; everything else is written atomically and a
/// length change means the artifact was replaced.
fn artifact_is_immutable(artifact: &Artifact) -> bool {
    !matches!(artifact, Artifact::LiveWal(_))
}

#[cfg(test)]
mod tests {
    use super::super::codec;
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("idm-scrub-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_trailing(path: &Path, magic: &[u8; 8], payload: &[u8]) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(magic);
        bytes.extend_from_slice(payload);
        let sum = codec::fnv1a64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        std::fs::write(path, &bytes).unwrap();
    }

    fn write_wal(path: &Path, payloads: &[&[u8]]) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(WAL_MAGIC);
        for p in payloads {
            bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&codec::fnv1a64(p).to_le_bytes());
            bytes.extend_from_slice(p);
        }
        std::fs::write(path, &bytes).unwrap();
    }

    #[test]
    fn incremental_fnv_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut hash = FNV_OFFSET;
        for chunk in data.chunks(5) {
            hash = fnv1a64_update(hash, chunk);
        }
        assert_eq!(hash, codec::fnv1a64(data));
    }

    #[test]
    fn clean_trailing_artifact_verifies() {
        let dir = tmp("trailclean");
        let path = dir.join("snap-1.idmsnap");
        write_trailing(&path, SNAP_MAGIC, &vec![7u8; 4096]);
        let verdict = verify_artifact(&Artifact::Snapshot(path)).unwrap();
        assert_eq!(verdict, Verdict::Clean);
    }

    #[test]
    fn every_single_byte_flip_is_detected_in_a_snapshot() {
        let dir = tmp("snapflip");
        let path = dir.join("snap-1.idmsnap");
        write_trailing(&path, SNAP_MAGIC, b"some snapshot payload bytes");
        let good = std::fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            let verdict = verify_artifact(&Artifact::Snapshot(path.clone())).unwrap();
            assert!(
                matches!(verdict, Verdict::Damaged(_)),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected_in_a_sealed_wal() {
        let dir = tmp("walflip");
        let path = dir.join("wal-1.idmlog");
        write_wal(&path, &[b"first record", b"second record payload"]);
        let good = std::fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x80;
            std::fs::write(&path, &bad).unwrap();
            let verdict = verify_artifact(&Artifact::SealedWal(path.clone())).unwrap();
            assert!(
                matches!(verdict, Verdict::Damaged(_)),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn live_wal_tolerates_inflight_tail_but_not_interior_damage() {
        let dir = tmp("livewal");
        let path = dir.join("wal-1.idmlog");
        write_wal(&path, &[b"complete frame"]);
        // Append half a frame: header promising more bytes than exist.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(b"partial");
        std::fs::write(&path, &bytes).unwrap();
        let live = verify_artifact(&Artifact::LiveWal(path.clone())).unwrap();
        assert_eq!(live, Verdict::Clean, "in-flight tail is not damage");
        let sealed = verify_artifact(&Artifact::SealedWal(path.clone())).unwrap();
        assert!(matches!(sealed, Verdict::Damaged(_)), "sealed tear is");

        // But a flip inside the complete frame is damage even live.
        bytes[12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let live = verify_artifact(&Artifact::LiveWal(path)).unwrap();
        assert!(matches!(live, Verdict::Damaged(_)));
    }

    #[test]
    fn budgeted_rounds_resume_and_cover_the_whole_artifact() {
        let dir = tmp("resume");
        let path = dir.join("snap-1.idmsnap");
        write_trailing(&path, SNAP_MAGIC, &vec![42u8; 64 * 1024]);
        let mut scrubber = Scrubber::new(ScrubBudget {
            slice_bytes: 4 * 1024,
            max_bytes_per_round: Some(8 * 1024),
        });
        let artifacts = vec![Artifact::Snapshot(path)];
        let mut rounds = 0;
        loop {
            let outcome = scrubber.round(&artifacts).unwrap();
            rounds += 1;
            assert!(outcome.damaged.is_empty());
            if !outcome.exhausted && outcome.artifacts_checked == 1 {
                break;
            }
            assert!(rounds < 100, "never converged");
        }
        assert!(rounds > 2, "budget forced multiple rounds, got {rounds}");
        assert_eq!(scrubber.totals().artifacts_checked, 1);
        assert!(scrubber.totals().bytes_verified >= 64 * 1024);
    }

    #[test]
    fn budgeted_rounds_still_detect_damage_past_the_first_slice() {
        let dir = tmp("resumedmg");
        let path = dir.join("snap-1.idmsnap");
        write_trailing(&path, SNAP_MAGIC, &vec![42u8; 64 * 1024]);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 20; // deep in the payload, near the trailer
        bytes[at] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let mut scrubber = Scrubber::new(ScrubBudget {
            slice_bytes: 4 * 1024,
            max_bytes_per_round: Some(8 * 1024),
        });
        let artifacts = vec![Artifact::Snapshot(path)];
        for _ in 0..100 {
            let outcome = scrubber.round(&artifacts).unwrap();
            if !outcome.damaged.is_empty() {
                return;
            }
        }
        panic!("damage never found");
    }

    #[test]
    fn quarantine_renames_and_never_clobbers() {
        let dir = tmp("quarantine");
        let path = dir.join("snap-3.idmsnap");
        std::fs::write(&path, b"damaged").unwrap();
        let q1 = quarantine(&path).unwrap();
        assert_eq!(q1, dir.join("snap-3.idmsnap.quarantine"));
        assert!(!path.exists());
        assert!(q1.exists());

        std::fs::write(&path, b"damaged again").unwrap();
        let q2 = quarantine(&path).unwrap();
        assert_eq!(q2, dir.join("snap-3.idmsnap.quarantine.2"));
        assert_eq!(std::fs::read(&q1).unwrap(), b"damaged");
        assert_eq!(std::fs::read(&q2).unwrap(), b"damaged again");
    }

    #[test]
    fn round_skips_vanished_artifacts() {
        let dir = tmp("vanish");
        let mut scrubber = Scrubber::new(ScrubBudget::default());
        let outcome = scrubber
            .round(&[Artifact::Snapshot(dir.join("snap-9.idmsnap"))])
            .unwrap();
        assert_eq!(outcome.artifacts_checked, 0);
        assert!(outcome.damaged.is_empty());
    }
}
