//! Logical change records — the unit of the write-ahead log.
//!
//! Every [`crate::store::ViewStore`] mutator appends exactly one record
//! describing the change it committed, under the same shard lock that
//! serialized the change itself. Records are *logical* (redo-only,
//! ARIES-style): replaying them through the ordinary mutators against
//! the last snapshot reproduces the store byte for byte, including the
//! per-slot version counters.
//!
//! Intensional and infinite components are not durable by themselves:
//! a lazy component is serialized with its *materialized* value when one
//! is cached ([`SerialContent::Inline`] / [`SerialGroup::Finite`]) and
//! as an `Unforced` marker otherwise, which recovers as the empty
//! component. The store closes the important half of that gap for
//! groups by logging a [`ChangeRecord::GroupForced`] record the moment
//! a lazy group is first forced, so child edges created by converters
//! survive a crash.

use std::io;
use std::sync::Arc;

use bytes::Bytes;

use crate::class::ClassRegistry;
use crate::content::Content;
use crate::durability::codec::{get_tuple, put_tuple, Decoder, Encoder};
use crate::error::{IdmError, Result};
use crate::group::{Group, GroupData};
use crate::store::ViewRecord;
use crate::value::TupleComponent;

/// A durable image of a content component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerialContent {
    /// The empty content.
    Empty,
    /// Extensional bytes (including materialized intensional content).
    Inline(Bytes),
    /// Intensional content never forced — recovers as empty.
    Unforced,
    /// Infinite content — sources are process-local, recovers as empty.
    Infinite,
}

impl SerialContent {
    /// Captures a content handle without forcing it.
    pub fn of(content: &Content) -> Self {
        match content {
            Content::Empty => SerialContent::Empty,
            Content::Inline(bytes) => SerialContent::Inline(bytes.clone()),
            Content::Lazy(lazy) => match lazy.peek() {
                Some(bytes) => SerialContent::Inline(bytes),
                None => SerialContent::Unforced,
            },
            Content::Infinite(_) => SerialContent::Infinite,
        }
    }

    /// The recovered content handle.
    pub fn into_content(self) -> Content {
        match self {
            SerialContent::Inline(bytes) => Content::inline(bytes),
            SerialContent::Empty | SerialContent::Unforced | SerialContent::Infinite => {
                Content::Empty
            }
        }
    }

    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            SerialContent::Empty => enc.put_u8(0),
            SerialContent::Inline(bytes) => {
                enc.put_u8(1);
                enc.put_bytes(bytes);
            }
            SerialContent::Unforced => enc.put_u8(2),
            SerialContent::Infinite => enc.put_u8(3),
        }
    }

    fn decode_from(dec: &mut Decoder) -> io::Result<Self> {
        Ok(match dec.get_u8()? {
            0 => SerialContent::Empty,
            1 => SerialContent::Inline(Bytes::from(dec.get_raw()?.to_vec())),
            2 => SerialContent::Unforced,
            3 => SerialContent::Infinite,
            other => return Err(Decoder::err(&format!("unknown content tag {other}"))),
        })
    }
}

/// A durable image of a group component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerialGroup {
    /// The empty group.
    Empty,
    /// Finite members (including materialized intensional groups).
    Finite {
        /// The unordered set `S`, as raw vids.
        set: Vec<u64>,
        /// The ordered sequence `Q`, as raw vids.
        seq: Vec<u64>,
    },
    /// Intensional group never forced — recovers as empty.
    Unforced,
    /// Infinite sequence — sources are process-local, recovers as empty.
    Infinite,
}

impl SerialGroup {
    /// Captures a group handle without forcing it.
    pub fn of(group: &Group) -> Self {
        match group {
            Group::Empty => SerialGroup::Empty,
            Group::Materialized(data) => SerialGroup::of_data(data),
            Group::Lazy(lazy) => match lazy.peek() {
                Some(data) => SerialGroup::of_data(&data),
                None => SerialGroup::Unforced,
            },
            Group::InfiniteSeq(_) => SerialGroup::Infinite,
        }
    }

    fn of_data(data: &GroupData) -> Self {
        SerialGroup::Finite {
            set: data.set().iter().map(|v| v.as_u64()).collect(),
            seq: data.seq().iter().map(|v| v.as_u64()).collect(),
        }
    }

    /// The recovered group handle. Errors if the serialized members
    /// violate `S ∩ Q = ∅` (only possible on a corrupt record).
    pub fn into_group(self) -> Result<Group> {
        Ok(match self {
            SerialGroup::Finite { set, seq } => {
                Group::Materialized(Arc::new(group_data(set, seq)?))
            }
            SerialGroup::Empty | SerialGroup::Unforced | SerialGroup::Infinite => Group::Empty,
        })
    }

    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            SerialGroup::Empty => enc.put_u8(0),
            SerialGroup::Finite { set, seq } => {
                enc.put_u8(1);
                put_vids(enc, set);
                put_vids(enc, seq);
            }
            SerialGroup::Unforced => enc.put_u8(2),
            SerialGroup::Infinite => enc.put_u8(3),
        }
    }

    fn decode_from(dec: &mut Decoder) -> io::Result<Self> {
        Ok(match dec.get_u8()? {
            0 => SerialGroup::Empty,
            1 => SerialGroup::Finite {
                set: get_vids(dec)?,
                seq: get_vids(dec)?,
            },
            2 => SerialGroup::Unforced,
            3 => SerialGroup::Infinite,
            other => return Err(Decoder::err(&format!("unknown group tag {other}"))),
        })
    }
}

/// Builds validated group data from raw vid lists.
pub fn group_data(set: Vec<u64>, seq: Vec<u64>) -> Result<GroupData> {
    GroupData::new(
        set.into_iter().map(crate::store::Vid::from_raw).collect(),
        seq.into_iter().map(crate::store::Vid::from_raw).collect(),
    )
}

fn put_vids(enc: &mut Encoder, vids: &[u64]) {
    enc.put_u64(vids.len() as u64);
    let mut prev = 0u64;
    for &vid in vids {
        enc.put_u64(vid.wrapping_sub(prev));
        prev = vid;
    }
}

fn get_vids(dec: &mut Decoder) -> io::Result<Vec<u64>> {
    let count = dec.get_u64()? as usize;
    let mut vids = Vec::with_capacity(count.min(1 << 20));
    let mut prev = 0u64;
    for _ in 0..count {
        prev = prev.wrapping_add(dec.get_u64()?);
        vids.push(prev);
    }
    Ok(vids)
}

/// A durable image of a whole [`ViewRecord`]. Classes are carried by
/// *name* so records stay valid across registries with different
/// interned [`crate::class::ClassId`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct SerialView {
    /// The name component.
    pub name: Option<String>,
    /// The tuple component.
    pub tuple: Option<TupleComponent>,
    /// The content component.
    pub content: SerialContent,
    /// The group component.
    pub group: SerialGroup,
    /// The claimed class, by name.
    pub class: Option<String>,
}

impl SerialView {
    /// Captures a record without forcing any lazy component.
    pub fn of(record: &ViewRecord, classes: &ClassRegistry) -> Self {
        SerialView {
            name: record.name.clone(),
            tuple: record.tuple.clone(),
            content: SerialContent::of(&record.content),
            group: SerialGroup::of(&record.group),
            class: record.class.map(|c| classes.name(c)),
        }
    }

    /// Rebuilds the in-memory record. Unknown class names are registered
    /// with default (unconstrained) definitions — schema-later modeling.
    pub fn into_record(self, classes: &ClassRegistry) -> Result<ViewRecord> {
        Ok(ViewRecord {
            name: self.name,
            tuple: self.tuple,
            content: self.content.into_content(),
            group: self.group.into_group()?,
            class: self.class.map(|n| classes.lookup_or_register(&n)),
        })
    }

    /// Serializes into an encoder.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_opt_str(self.name.as_deref());
        match &self.tuple {
            Some(tuple) => {
                enc.put_u8(1);
                put_tuple(enc, tuple);
            }
            None => enc.put_u8(0),
        }
        self.content.encode_into(enc);
        self.group.encode_into(enc);
        enc.put_opt_str(self.class.as_deref());
    }

    /// Deserializes from a decoder.
    pub fn decode_from(dec: &mut Decoder) -> io::Result<Self> {
        let name = dec.get_opt_str()?;
        let tuple = match dec.get_u8()? {
            0 => None,
            1 => Some(get_tuple(dec)?),
            other => return Err(Decoder::err(&format!("bad tuple flag {other}"))),
        };
        let content = SerialContent::decode_from(dec)?;
        let group = SerialGroup::decode_from(dec)?;
        let class = dec.get_opt_str()?;
        Ok(SerialView {
            name,
            tuple,
            content,
            group,
            class,
        })
    }
}

/// The canonical serialized form of a live record — the byte string the
/// crash-recovery suite compares across stores (the model types carry
/// shared lazy state and so do not implement `PartialEq` themselves).
pub fn view_bytes(record: &ViewRecord, classes: &ClassRegistry) -> Vec<u8> {
    let mut enc = Encoder::new();
    SerialView::of(record, classes).encode_into(&mut enc);
    enc.into_bytes()
}

/// One logical change, as appended to the WAL by the store mutators.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeRecord {
    /// A view was inserted with this id and initial record.
    Insert {
        /// The allocated vid.
        vid: u64,
        /// The inserted record.
        view: SerialView,
    },
    /// A view was removed.
    Remove {
        /// The removed vid.
        vid: u64,
    },
    /// The name component was replaced.
    SetName {
        /// The mutated vid.
        vid: u64,
        /// The new name.
        name: Option<String>,
    },
    /// The tuple component was replaced.
    SetTuple {
        /// The mutated vid.
        vid: u64,
        /// The new tuple.
        tuple: Option<TupleComponent>,
    },
    /// The content component was replaced.
    SetContent {
        /// The mutated vid.
        vid: u64,
        /// The new content.
        content: SerialContent,
    },
    /// The group component was replaced.
    SetGroup {
        /// The mutated vid.
        vid: u64,
        /// The new group.
        group: SerialGroup,
    },
    /// The class was replaced (by name).
    SetClass {
        /// The mutated vid.
        vid: u64,
        /// The new class name.
        class: Option<String>,
    },
    /// A member was added to a finite group.
    AddGroupMember {
        /// The parent vid.
        vid: u64,
        /// The added member.
        member: u64,
        /// Sequence (`true`) or set (`false`).
        ordered: bool,
    },
    /// A lazy group was forced for the first time; the stored handle was
    /// upgraded to these materialized members (no version bump).
    GroupForced {
        /// The owner vid.
        vid: u64,
        /// The materialized set `S`.
        set: Vec<u64>,
        /// The materialized sequence `Q`.
        seq: Vec<u64>,
    },
}

impl ChangeRecord {
    /// The vid this record mutates.
    pub fn vid(&self) -> u64 {
        match self {
            ChangeRecord::Insert { vid, .. }
            | ChangeRecord::Remove { vid }
            | ChangeRecord::SetName { vid, .. }
            | ChangeRecord::SetTuple { vid, .. }
            | ChangeRecord::SetContent { vid, .. }
            | ChangeRecord::SetGroup { vid, .. }
            | ChangeRecord::SetClass { vid, .. }
            | ChangeRecord::AddGroupMember { vid, .. }
            | ChangeRecord::GroupForced { vid, .. } => *vid,
        }
    }

    /// Serializes the record payload (unframed; the WAL adds the length
    /// prefix and checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            ChangeRecord::Insert { vid, view } => {
                enc.put_u8(0);
                enc.put_u64(*vid);
                view.encode_into(&mut enc);
            }
            ChangeRecord::Remove { vid } => {
                enc.put_u8(1);
                enc.put_u64(*vid);
            }
            ChangeRecord::SetName { vid, name } => {
                enc.put_u8(2);
                enc.put_u64(*vid);
                enc.put_opt_str(name.as_deref());
            }
            ChangeRecord::SetTuple { vid, tuple } => {
                enc.put_u8(3);
                enc.put_u64(*vid);
                match tuple {
                    Some(tuple) => {
                        enc.put_u8(1);
                        put_tuple(&mut enc, tuple);
                    }
                    None => enc.put_u8(0),
                }
            }
            ChangeRecord::SetContent { vid, content } => {
                enc.put_u8(4);
                enc.put_u64(*vid);
                content.encode_into(&mut enc);
            }
            ChangeRecord::SetGroup { vid, group } => {
                enc.put_u8(5);
                enc.put_u64(*vid);
                group.encode_into(&mut enc);
            }
            ChangeRecord::SetClass { vid, class } => {
                enc.put_u8(6);
                enc.put_u64(*vid);
                enc.put_opt_str(class.as_deref());
            }
            ChangeRecord::AddGroupMember {
                vid,
                member,
                ordered,
            } => {
                enc.put_u8(7);
                enc.put_u64(*vid);
                enc.put_u64(*member);
                enc.put_u8(u8::from(*ordered));
            }
            ChangeRecord::GroupForced { vid, set, seq } => {
                enc.put_u8(8);
                enc.put_u64(*vid);
                put_vids(&mut enc, set);
                put_vids(&mut enc, seq);
            }
        }
        enc.into_bytes()
    }

    /// Deserializes a record payload, requiring full consumption.
    pub fn decode(bytes: &[u8]) -> io::Result<ChangeRecord> {
        let mut dec = Decoder::new(bytes);
        let record = match dec.get_u8()? {
            0 => ChangeRecord::Insert {
                vid: dec.get_u64()?,
                view: SerialView::decode_from(&mut dec)?,
            },
            1 => ChangeRecord::Remove {
                vid: dec.get_u64()?,
            },
            2 => ChangeRecord::SetName {
                vid: dec.get_u64()?,
                name: dec.get_opt_str()?,
            },
            3 => {
                let vid = dec.get_u64()?;
                let tuple = match dec.get_u8()? {
                    0 => None,
                    1 => Some(get_tuple(&mut dec)?),
                    other => return Err(Decoder::err(&format!("bad tuple flag {other}"))),
                };
                ChangeRecord::SetTuple { vid, tuple }
            }
            4 => ChangeRecord::SetContent {
                vid: dec.get_u64()?,
                content: SerialContent::decode_from(&mut dec)?,
            },
            5 => ChangeRecord::SetGroup {
                vid: dec.get_u64()?,
                group: SerialGroup::decode_from(&mut dec)?,
            },
            6 => ChangeRecord::SetClass {
                vid: dec.get_u64()?,
                class: dec.get_opt_str()?,
            },
            7 => ChangeRecord::AddGroupMember {
                vid: dec.get_u64()?,
                member: dec.get_u64()?,
                ordered: dec.get_u8()? != 0,
            },
            8 => ChangeRecord::GroupForced {
                vid: dec.get_u64()?,
                set: get_vids(&mut dec)?,
                seq: get_vids(&mut dec)?,
            },
            other => return Err(Decoder::err(&format!("unknown record tag {other}"))),
        };
        if dec.remaining() != 0 {
            return Err(Decoder::err("trailing bytes in change record"));
        }
        Ok(record)
    }
}

/// Maps a group-overlap construction failure to an [`IdmError`] carrying
/// the owner vid (used by recovery when applying records).
pub fn overlap_at(vid: u64) -> IdmError {
    IdmError::GroupOverlap(crate::store::Vid::from_raw(vid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample_records() -> Vec<ChangeRecord> {
        vec![
            ChangeRecord::Insert {
                vid: 7,
                view: SerialView {
                    name: Some("doc.txt".into()),
                    tuple: Some(TupleComponent::of(vec![("size", Value::Integer(9))])),
                    content: SerialContent::Inline(Bytes::from_static(b"hello")),
                    group: SerialGroup::Finite {
                        set: vec![1, 2],
                        seq: vec![3],
                    },
                    class: Some("file".into()),
                },
            },
            ChangeRecord::Remove { vid: 3 },
            ChangeRecord::SetName { vid: 1, name: None },
            ChangeRecord::SetName {
                vid: 1,
                name: Some("renamed".into()),
            },
            ChangeRecord::SetTuple {
                vid: 2,
                tuple: None,
            },
            ChangeRecord::SetContent {
                vid: 4,
                content: SerialContent::Unforced,
            },
            ChangeRecord::SetGroup {
                vid: 5,
                group: SerialGroup::Infinite,
            },
            ChangeRecord::SetClass {
                vid: 6,
                class: Some("folder".into()),
            },
            ChangeRecord::AddGroupMember {
                vid: 8,
                member: 9,
                ordered: true,
            },
            ChangeRecord::GroupForced {
                vid: 10,
                set: vec![11],
                seq: vec![12, 13],
            },
        ]
    }

    #[test]
    fn records_roundtrip() {
        for record in sample_records() {
            let bytes = record.encode();
            let back = ChangeRecord::decode(&bytes).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn truncated_records_error() {
        for record in sample_records() {
            let bytes = record.encode();
            for cut in 0..bytes.len() {
                assert!(
                    ChangeRecord::decode(&bytes[..cut]).is_err(),
                    "{record:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = ChangeRecord::Remove { vid: 1 }.encode();
        bytes.push(0);
        assert!(ChangeRecord::decode(&bytes).is_err());
    }

    #[test]
    fn unforced_components_recover_as_empty() {
        assert!(SerialContent::Unforced.into_content().is_empty());
        assert!(SerialGroup::Unforced.into_group().unwrap().is_empty());
        assert!(SerialContent::Infinite.into_content().is_empty());
    }
}
