//! The write-ahead log: length-prefixed, per-record checksummed frames
//! in an append-only segment file.
//!
//! ## On-disk format
//!
//! A segment starts with the 8-byte magic `IDMWAL01`, followed by zero
//! or more frames:
//!
//! ```text
//! [len: u32 LE] [checksum: u64 LE] [payload: len bytes]
//! ```
//!
//! `checksum` is FNV-1a-64 over the payload, and the payload is an
//! encoded [`ChangeRecord`]. Each frame is written with a *single*
//! `write_all` call so a crash tears at most one frame; recovery scans
//! frames in order and stops at the first that is short, oversized,
//! checksum-mismatched, or undecodable — the torn tail is discarded and
//! everything before it is replayed (the classic torn-write discipline).

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::durability::codec::fnv1a64;
use crate::durability::record::ChangeRecord;
#[cfg(feature = "fault-injection")]
use crate::fault::FaultAction;
use crate::fault::FaultPoint;

/// Magic bytes opening every WAL segment.
pub const WAL_MAGIC: &[u8; 8] = b"IDMWAL01";

/// Sanity cap on a single record: frames claiming more are treated as
/// corruption, not as a 4 GiB allocation request.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// Number of power-of-two buckets in the group-size histogram: bucket
/// `i` counts groups of `2^i ..= 2^(i+1)-1` records (the last bucket is
/// open-ended).
pub const GROUP_HISTOGRAM_BUCKETS: usize = 12;

/// When appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Hand frames to the OS page cache and move on. Survives `kill -9`
    /// of the *process* (the kernel still owns the bytes); a power cut
    /// may lose the unsynced tail. The default.
    #[default]
    WriteBack,
    /// `fdatasync` after every frame. Survives power loss; much slower.
    Fsync,
}

struct WalInner {
    file: Option<File>,
    path: PathBuf,
}

/// Write-path telemetry of one [`WalWriter`]: how many record frames it
/// wrote, how many `fsync`/`fdatasync` calls it issued for them, and how
/// the frames were grouped. The bulk-ingest bench derives its
/// "fsyncs saved" figure from `frames - syncs` under
/// [`SyncPolicy::Fsync`], where the record-at-a-time discipline would
/// have issued one sync per frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Record frames written (equals appended records).
    pub frames: u64,
    /// `sync_data`/`sync_all` calls issued by this writer.
    pub syncs: u64,
    /// Write groups committed (an [`WalWriter::append`] is a group of
    /// one; an [`WalWriter::append_batch`] is one group of many).
    pub groups: u64,
    /// Largest group committed so far, in records.
    pub largest_group: u64,
    /// Power-of-two histogram of group sizes (bucket `i` counts groups
    /// of `2^i ..` records; the last bucket is open-ended).
    pub histogram: [u64; GROUP_HISTOGRAM_BUCKETS],
    /// The writer's sync policy.
    pub sync_policy: SyncPolicy,
}

impl WalStats {
    /// Syncs a one-fsync-per-record discipline would have issued but
    /// this writer did not, thanks to grouping and deferred syncs.
    /// Zero under [`SyncPolicy::WriteBack`], where no per-record sync
    /// would have happened anyway.
    pub fn syncs_saved(&self) -> u64 {
        match self.sync_policy {
            SyncPolicy::Fsync => self.frames.saturating_sub(self.syncs),
            SyncPolicy::WriteBack => 0,
        }
    }
}

fn histogram_bucket(group: u64) -> usize {
    (63 - group.max(1).leading_zeros() as usize).min(GROUP_HISTOGRAM_BUCKETS - 1)
}

/// The append half of the WAL, shared by every store mutator.
///
/// Errors are *sticky*: once an append fails the writer is dead and all
/// further appends fail too, because a WAL with a hole in it can no
/// longer promise prefix consistency. The owner must checkpoint into a
/// fresh segment (or reopen the dataspace) to resume.
pub struct WalWriter {
    inner: Mutex<WalInner>,
    /// Log sequence number: total records ever appended to this
    /// dataspace (snapshot base + appended here).
    lsn: AtomicU64,
    sync: SyncPolicy,
    dead: AtomicBool,
    error: Mutex<Option<String>>,
    /// Crash/torn-write injection point (`source = "durability"`,
    /// `op = "wal-append"`), consulted only with `fault-injection` on.
    fault: FaultPoint,
    /// Telemetry counters (see [`WalStats`]). `largest_group` and the
    /// histogram are updated under the inner lock; the plain counters
    /// are relaxed atomics read by reporting code only.
    frames: AtomicU64,
    syncs: AtomicU64,
    groups: AtomicU64,
    largest_group: AtomicU64,
    histogram: [AtomicU64; GROUP_HISTOGRAM_BUCKETS],
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.inner.lock().path)
            .field("lsn", &self.lsn())
            .field("sync", &self.sync)
            .field("dead", &self.dead.load(Ordering::Relaxed))
            .finish()
    }
}

impl WalWriter {
    /// Creates a fresh segment at `path` (truncating any existing file),
    /// writes and syncs the magic, and counts from `base_lsn`.
    pub fn create(path: &Path, base_lsn: u64, sync: SyncPolicy) -> io::Result<WalWriter> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_all()?;
        Ok(WalWriter::from_parts(file, path, base_lsn, sync))
    }

    /// Reopens an existing, already-validated segment for appending.
    /// `valid_len` is where [`read_segment`] stopped; anything after it
    /// is a torn tail and is truncated away before appending resumes.
    pub fn open_append(
        path: &Path,
        valid_len: u64,
        base_lsn: u64,
        sync: SyncPolicy,
    ) -> io::Result<WalWriter> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_all()?;
        let writer = WalWriter::from_parts(file, path, base_lsn, sync);
        // Position at the end; File::set_len does not move the cursor.
        {
            let mut inner = writer.inner.lock();
            if let Some(f) = inner.file.as_mut() {
                use std::io::Seek;
                f.seek(io::SeekFrom::End(0))?;
            }
        }
        Ok(writer)
    }

    fn from_parts(file: File, path: &Path, base_lsn: u64, sync: SyncPolicy) -> WalWriter {
        WalWriter {
            inner: Mutex::new(WalInner {
                file: Some(file),
                path: path.to_path_buf(),
            }),
            lsn: AtomicU64::new(base_lsn),
            sync,
            dead: AtomicBool::new(false),
            error: Mutex::new(None),
            fault: FaultPoint::new(),
            frames: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            groups: AtomicU64::new(0),
            largest_group: AtomicU64::new(0),
            histogram: Default::default(),
        }
    }

    fn encode_frame(buf: &mut Vec<u8>, record: &ChangeRecord) {
        let payload = record.encode();
        buf.reserve(12 + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
    }

    /// Appends one record. Callers hold their shard's write lock, so
    /// per-vid record order in the log matches commit order; the inner
    /// mutex serializes frames across shards.
    pub fn append(&self, record: &ChangeRecord) -> io::Result<()> {
        let mut frames = Vec::new();
        WalWriter::encode_frame(&mut frames, record);
        self.write_frames(&frames, 1, None)
    }

    /// Appends a batch of records as one buffered write and (under
    /// [`SyncPolicy::Fsync`]) one covering `sync_data` — the group-commit
    /// write path. A crash tears the concatenated buffer at most once,
    /// so recovery still sees an exact frame prefix.
    pub fn append_batch(&self, records: &[ChangeRecord]) -> io::Result<()> {
        if records.is_empty() {
            return self.ensure_healthy();
        }
        let mut frames = Vec::new();
        for record in records {
            WalWriter::encode_frame(&mut frames, record);
        }
        self.write_frames(&frames, records.len() as u64, None)
    }

    /// [`WalWriter::append_batch`] without the covering sync — for bulk
    /// windows whose sync is deferred to [`WalWriter::sync_now`].
    pub fn append_batch_unsynced(&self, records: &[ChangeRecord]) -> io::Result<()> {
        if records.is_empty() {
            return self.ensure_healthy();
        }
        let mut frames = Vec::new();
        for record in records {
            WalWriter::encode_frame(&mut frames, record);
        }
        self.write_frames(&frames, records.len() as u64, Some(false))
    }

    /// Appends one record without syncing regardless of policy — the
    /// bulk-ingest path defers the covering sync to [`WalWriter::sync_now`]
    /// (every N records and at scope end). Under
    /// [`SyncPolicy::WriteBack`] this is identical to `append`.
    pub fn append_unsynced(&self, record: &ChangeRecord) -> io::Result<()> {
        let mut frames = Vec::new();
        WalWriter::encode_frame(&mut frames, record);
        self.write_frames(&frames, 1, Some(false))
    }

    /// Writes `count` already-encoded frames in one `write_all`.
    /// `sync_override` forces syncing on/off; `None` follows the policy.
    fn write_frames(
        &self,
        frames: &[u8],
        count: u64,
        sync_override: Option<bool>,
    ) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if self.dead.load(Ordering::Acquire) {
            return Err(self.dead_error());
        }

        #[cfg(feature = "fault-injection")]
        match self.fault.check("durability", "wal-append") {
            Ok(FaultAction::Proceed) => {}
            Ok(FaultAction::Truncate(keep)) => {
                // Torn write: part of the buffer reaches the disk, then
                // the process "dies" — persist the prefix faithfully so
                // recovery sees exactly what a real tear would leave.
                // For a batch the tear can land inside any frame of the
                // group, which is what the group-commit crash matrix
                // exercises.
                let keep = keep.min(frames.len());
                let result = match inner.file.as_mut() {
                    Some(file) => file
                        .write_all(&frames[..keep])
                        .and_then(|()| file.sync_data()),
                    None => Err(io::Error::other("wal file closed")),
                };
                self.kill("torn write injected");
                return result.and_then(|()| Err(self.dead_error()));
            }
            Err(e) => {
                self.kill(&format!("crash injected: {e}"));
                return Err(self.dead_error());
            }
        }

        let do_sync = sync_override.unwrap_or(matches!(self.sync, SyncPolicy::Fsync));
        let result = match inner.file.as_mut() {
            Some(file) => {
                file.write_all(frames).and_then(
                    |()| {
                        if do_sync {
                            file.sync_data()
                        } else {
                            Ok(())
                        }
                    },
                )
            }
            None => Err(io::Error::other("wal file closed")),
        };
        match result {
            Ok(()) => {
                self.lsn.fetch_add(count, Ordering::Release);
                self.frames.fetch_add(count, Ordering::Relaxed);
                self.groups.fetch_add(1, Ordering::Relaxed);
                self.largest_group.fetch_max(count, Ordering::Relaxed);
                self.histogram[histogram_bucket(count)].fetch_add(1, Ordering::Relaxed);
                if do_sync {
                    self.syncs.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            }
            Err(e) => {
                self.kill(&e.to_string());
                Err(e)
            }
        }
    }

    /// Issues a `sync_data` on the current segment, making every frame
    /// written so far durable (the covering sync of a deferred-sync
    /// window).
    pub fn sync_now(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if self.dead.load(Ordering::Acquire) {
            return Err(self.dead_error());
        }
        match inner.file.as_mut() {
            Some(file) => match file.sync_data() {
                Ok(()) => {
                    self.syncs.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
                Err(e) => {
                    self.kill(&e.to_string());
                    Err(e)
                }
            },
            None => Ok(()),
        }
    }

    /// A snapshot of the write-path telemetry counters.
    pub fn stats(&self) -> WalStats {
        let mut histogram = [0u64; GROUP_HISTOGRAM_BUCKETS];
        for (bucket, counter) in histogram.iter_mut().zip(&self.histogram) {
            *bucket = counter.load(Ordering::Relaxed);
        }
        WalStats {
            frames: self.frames.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            groups: self.groups.load(Ordering::Relaxed),
            largest_group: self.largest_group.load(Ordering::Relaxed),
            histogram,
            sync_policy: self.sync,
        }
    }

    /// The writer's sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// Syncs and closes the current segment, then starts a fresh one at
    /// `new_path` — the checkpoint rotation. The LSN continues counting.
    pub fn rotate(&self, new_path: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if self.dead.load(Ordering::Acquire) {
            return Err(self.dead_error());
        }
        if let Some(file) = inner.file.as_mut() {
            file.sync_all()?;
            self.syncs.fetch_add(1, Ordering::Relaxed);
        }
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(new_path)?;
        if let Err(e) = file
            .write_all(WAL_MAGIC)
            .and_then(|()| file.sync_all())
            .and_then(|()| super::snapshot::sync_parent_dir(new_path))
        {
            // A segment whose directory entry may not survive a crash
            // must not accept appends.
            self.kill(&e.to_string());
            return Err(e);
        }
        inner.file = Some(file);
        inner.path = new_path.to_path_buf();
        Ok(())
    }

    /// The current log sequence number.
    pub fn lsn(&self) -> u64 {
        self.lsn.load(Ordering::Acquire)
    }

    /// Errors if the writer has died (a previous append failed).
    pub fn ensure_healthy(&self) -> io::Result<()> {
        if self.dead.load(Ordering::Acquire) {
            Err(self.dead_error())
        } else {
            Ok(())
        }
    }

    /// The error that killed the writer, if any.
    pub fn last_error(&self) -> Option<String> {
        self.error.lock().clone()
    }

    /// Flushes the OS buffers of the current segment.
    pub fn sync(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        match inner.file.as_mut() {
            Some(file) => {
                file.sync_all()?;
                self.syncs.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// The crash/torn-write injection point of this writer.
    pub fn fault_point(&self) -> &FaultPoint {
        &self.fault
    }

    fn kill(&self, reason: &str) {
        *self.error.lock() = Some(reason.to_owned());
        self.dead.store(true, Ordering::Release);
    }

    fn dead_error(&self) -> io::Error {
        let detail = self
            .error
            .lock()
            .clone()
            .unwrap_or_else(|| "unknown".to_owned());
        io::Error::other(format!("wal writer is dead: {detail}"))
    }
}

/// One scanned WAL segment: the valid record prefix plus where (and how)
/// validity ended.
#[derive(Debug)]
pub struct WalSegment {
    /// The decoded records of the valid prefix, in append order.
    pub records: Vec<ChangeRecord>,
    /// Byte offset after each valid record (the truncation points of
    /// the crash matrix); `boundaries[0]` would be the offset after
    /// record 0. The magic header ends at offset 8.
    pub boundaries: Vec<u64>,
    /// Length of the valid prefix — magic plus whole frames.
    pub valid_len: u64,
    /// Actual file length; `file_len > valid_len` means a torn tail.
    pub file_len: u64,
}

impl WalSegment {
    /// Bytes of torn tail after the last valid frame.
    pub fn torn_bytes(&self) -> u64 {
        self.file_len - self.valid_len
    }
}

/// Scans a segment leniently: decodes frames until the first torn or
/// corrupt one, which ends the valid prefix (no error — that is the
/// expected crash shape). A missing or torn *magic* makes the whole
/// segment invalid (`valid_len` covers nothing; all bytes are torn).
pub fn read_segment(path: &Path) -> io::Result<WalSegment> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let file_len = bytes.len() as u64;

    if bytes.len() < 8 || &bytes[..8] != WAL_MAGIC {
        return Ok(WalSegment {
            records: Vec::new(),
            boundaries: Vec::new(),
            valid_len: 0,
            file_len,
        });
    }

    let mut records = Vec::new();
    let mut boundaries = Vec::new();
    let mut pos = 8usize;
    // A short header ends the scan: torn tail.
    while let Some(header) = bytes.get(pos..pos + 12) {
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        if len > MAX_RECORD_LEN {
            break; // insane length → corrupt frame
        }
        let expect = u64::from_le_bytes([
            header[4], header[5], header[6], header[7], header[8], header[9], header[10],
            header[11],
        ]);
        let start = pos + 12;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            break; // short payload → torn tail
        };
        if fnv1a64(payload) != expect {
            break; // bit rot or interleaved tear
        }
        let Ok(record) = ChangeRecord::decode(payload) else {
            break; // checksum ok but undecodable — treat as corrupt
        };
        records.push(record);
        pos = start + len as usize;
        boundaries.push(pos as u64);
    }

    Ok(WalSegment {
        records,
        boundaries,
        valid_len: pos as u64,
        file_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("idm-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.idmlog")
    }

    fn records(n: u64) -> Vec<ChangeRecord> {
        (0..n)
            .map(|i| ChangeRecord::SetName {
                vid: i,
                name: Some(format!("view-{i}")),
            })
            .collect()
    }

    #[test]
    fn append_and_read_back() {
        let path = tmp("roundtrip");
        let wal = WalWriter::create(&path, 0, SyncPolicy::WriteBack).unwrap();
        for r in records(5) {
            wal.append(&r).unwrap();
        }
        assert_eq!(wal.lsn(), 5);
        wal.sync().unwrap();

        let segment = read_segment(&path).unwrap();
        assert_eq!(segment.records, records(5));
        assert_eq!(segment.boundaries.len(), 5);
        assert_eq!(segment.valid_len, segment.file_len);
        assert_eq!(segment.torn_bytes(), 0);
    }

    #[test]
    fn truncation_at_any_offset_yields_a_prefix() {
        let path = tmp("truncate");
        let wal = WalWriter::create(&path, 0, SyncPolicy::WriteBack).unwrap();
        for r in records(4) {
            wal.append(&r).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();

        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let segment = read_segment(&path).unwrap();
            // The recovered records are always a prefix of the log.
            assert_eq!(
                segment.records[..],
                records(4)[..segment.records.len()],
                "cut at {cut}"
            );
            // Cutting exactly at a boundary keeps everything before it.
            if let Some(idx) = segment.boundaries.iter().position(|&b| b == cut as u64) {
                assert_eq!(segment.records.len(), idx + 1);
                assert_eq!(segment.torn_bytes(), 0);
            }
        }
    }

    #[test]
    fn corrupt_byte_ends_the_prefix_there() {
        let path = tmp("corrupt");
        let wal = WalWriter::create(&path, 0, SyncPolicy::WriteBack).unwrap();
        for r in records(3) {
            wal.append(&r).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();

        // Flip one payload byte of the middle record.
        let boundary_0 = read_segment(&path).unwrap().boundaries[0] as usize;
        let mut bent = full.clone();
        bent[boundary_0 + 13] ^= 0xFF;
        std::fs::write(&path, &bent).unwrap();
        let segment = read_segment(&path).unwrap();
        assert_eq!(segment.records, records(1));
        assert!(segment.torn_bytes() > 0);
    }

    #[test]
    fn missing_magic_invalidates_segment() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTMAGIC").unwrap();
        let segment = read_segment(&path).unwrap();
        assert_eq!(segment.valid_len, 0);
        assert!(segment.records.is_empty());
    }

    #[test]
    fn dead_writer_stays_dead() {
        let path = tmp("dead");
        let wal = WalWriter::create(&path, 0, SyncPolicy::WriteBack).unwrap();
        wal.kill("test");
        assert!(wal.append(&records(1)[0]).is_err());
        assert!(wal.ensure_healthy().is_err());
        assert_eq!(wal.last_error().as_deref(), Some("test"));
    }

    #[test]
    fn open_append_truncates_torn_tail_and_continues() {
        let path = tmp("reopen");
        let wal = WalWriter::create(&path, 0, SyncPolicy::WriteBack).unwrap();
        for r in records(3) {
            wal.append(&r).unwrap();
        }
        drop(wal);
        // Tear the tail by hand.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let segment = read_segment(&path).unwrap();
        assert_eq!(segment.records.len(), 2);
        let wal = WalWriter::open_append(
            &path,
            segment.valid_len,
            segment.records.len() as u64,
            SyncPolicy::WriteBack,
        )
        .unwrap();
        wal.append(&ChangeRecord::Remove { vid: 9 }).unwrap();
        assert_eq!(wal.lsn(), 3);
        drop(wal);

        let segment = read_segment(&path).unwrap();
        assert_eq!(segment.records.len(), 3);
        assert_eq!(segment.records[2], ChangeRecord::Remove { vid: 9 });
        assert_eq!(segment.torn_bytes(), 0);
    }

    #[test]
    fn rotation_moves_appends_to_the_new_segment() {
        let dir = tmp("rotate");
        let dir = dir.parent().unwrap();
        let first = dir.join("wal-1.idmlog");
        let second = dir.join("wal-2.idmlog");
        let wal = WalWriter::create(&first, 0, SyncPolicy::WriteBack).unwrap();
        wal.append(&ChangeRecord::Remove { vid: 1 }).unwrap();
        wal.rotate(&second).unwrap();
        wal.append(&ChangeRecord::Remove { vid: 2 }).unwrap();
        assert_eq!(wal.lsn(), 2);
        drop(wal);

        assert_eq!(read_segment(&first).unwrap().records.len(), 1);
        let segment = read_segment(&second).unwrap();
        assert_eq!(segment.records, vec![ChangeRecord::Remove { vid: 2 }]);
    }
}
