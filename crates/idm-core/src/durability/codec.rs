//! The binary codec shared by every durable file format in the system:
//! the write-ahead log and checkpoint snapshots here, and the index
//! bundle format in `idm-index` (which re-exports these types so its
//! `IDMIDX02` files speak the same dialect).
//!
//! Primitives are LEB128 varints (zigzag for signed), length-prefixed
//! strings/bytes and little-endian IEEE-754 doubles. On top of those sit
//! the value/tuple/schema codecs for the iDM model types, and the
//! FNV-1a 64 checksum used to detect torn or corrupt records.

use std::io;

use crate::value::{Attribute, Domain, Schema, Timestamp, TupleComponent, Value};

/// FNV-1a 64-bit hash — the content checksum of every durable record
/// and file in the system. Not cryptographic; it detects torn writes
/// and bit rot, which is all recovery needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A growable binary writer with varint primitives.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Raw bytes, no length prefix (headers, magics).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// LEB128 unsigned varint.
    pub fn put_u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zigzag-encoded signed varint.
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Raw bytes with length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// One byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// IEEE-754 double, little endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Optional string: presence flag, then the string.
    pub fn put_opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.put_u8(1);
                self.put_str(s);
            }
            None => self.put_u8(0),
        }
    }
}

/// A binary reader matching [`Encoder`].
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// An `InvalidData` error with a codec-level message. Public so the
    /// file formats built on this codec produce uniform errors.
    pub fn err(message: &str) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, format!("idm codec: {message}"))
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Skips `n` bytes (header fields already validated by the caller).
    pub fn skip(&mut self, n: usize) -> io::Result<()> {
        if self.remaining() < n {
            return Err(Self::err("truncated header"));
        }
        self.pos += n;
        Ok(())
    }

    /// LEB128 unsigned varint.
    pub fn get_u64(&mut self) -> io::Result<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| Self::err("truncated varint"))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(Self::err("varint overflow"));
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Zigzag-encoded signed varint.
    pub fn get_i64(&mut self) -> io::Result<i64> {
        let v = self.get_u64()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> io::Result<String> {
        let bytes = self.get_raw()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Self::err("invalid utf-8"))
    }

    /// Length-prefixed raw bytes.
    pub fn get_raw(&mut self) -> io::Result<&'a [u8]> {
        let len = self.get_u64()? as usize;
        if self.remaining() < len {
            return Err(Self::err("truncated bytes"));
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// One byte.
    pub fn get_u8(&mut self) -> io::Result<u8> {
        let byte = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| Self::err("truncated byte"))?;
        self.pos += 1;
        Ok(byte)
    }

    /// IEEE-754 double, little endian.
    pub fn get_f64(&mut self) -> io::Result<f64> {
        if self.remaining() < 8 {
            return Err(Self::err("truncated f64"));
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// Optional string: presence flag, then the string.
    pub fn get_opt_str(&mut self) -> io::Result<Option<String>> {
        Ok(match self.get_u8()? {
            0 => None,
            1 => Some(self.get_str()?),
            other => return Err(Self::err(&format!("bad option flag {other}"))),
        })
    }
}

// ---- value / tuple / schema codec ---------------------------------------

/// Serializes a [`Value`] with a one-byte type tag.
pub fn put_value(enc: &mut Encoder, value: &Value) {
    match value {
        Value::Text(s) => {
            enc.put_u8(0);
            enc.put_str(s);
        }
        Value::Integer(i) => {
            enc.put_u8(1);
            enc.put_i64(*i);
        }
        Value::Float(f) => {
            enc.put_u8(2);
            enc.put_f64(*f);
        }
        Value::Boolean(b) => {
            enc.put_u8(3);
            enc.put_u8(u8::from(*b));
        }
        Value::Date(t) => {
            enc.put_u8(4);
            enc.put_i64(t.0);
        }
    }
}

/// Deserializes a [`Value`].
pub fn get_value(dec: &mut Decoder) -> io::Result<Value> {
    Ok(match dec.get_u8()? {
        0 => Value::Text(dec.get_str()?),
        1 => Value::Integer(dec.get_i64()?),
        2 => Value::Float(dec.get_f64()?),
        3 => Value::Boolean(dec.get_u8()? != 0),
        4 => Value::Date(Timestamp(dec.get_i64()?)),
        other => return Err(Decoder::err(&format!("unknown value tag {other}"))),
    })
}

/// The one-byte tag of a [`Domain`].
pub fn domain_tag(domain: Domain) -> u8 {
    match domain {
        Domain::Text => 0,
        Domain::Integer => 1,
        Domain::Float => 2,
        Domain::Boolean => 3,
        Domain::Date => 4,
    }
}

/// The [`Domain`] of a one-byte tag.
pub fn tag_domain(tag: u8) -> io::Result<Domain> {
    Ok(match tag {
        0 => Domain::Text,
        1 => Domain::Integer,
        2 => Domain::Float,
        3 => Domain::Boolean,
        4 => Domain::Date,
        other => return Err(Decoder::err(&format!("unknown domain tag {other}"))),
    })
}

/// Serializes a [`Schema`] as arity + (name, domain) pairs.
pub fn put_schema(enc: &mut Encoder, schema: &Schema) {
    enc.put_u64(schema.arity() as u64);
    for attr in schema.attributes() {
        enc.put_str(&attr.name);
        enc.put_u8(domain_tag(attr.domain));
    }
}

/// Deserializes a [`Schema`].
pub fn get_schema(dec: &mut Decoder) -> io::Result<Schema> {
    let arity = dec.get_u64()? as usize;
    let mut attrs = Vec::with_capacity(arity.min(1 << 16));
    for _ in 0..arity {
        let name = dec.get_str()?;
        let domain = tag_domain(dec.get_u8()?)?;
        attrs.push(Attribute::new(name, domain));
    }
    Ok(Schema::new(attrs))
}

/// Serializes a [`TupleComponent`] as interleaved attribute/value rows.
pub fn put_tuple(enc: &mut Encoder, tuple: &TupleComponent) {
    enc.put_u64(tuple.schema().arity() as u64);
    for (attr, value) in tuple.iter() {
        enc.put_str(&attr.name);
        enc.put_u8(domain_tag(attr.domain));
        put_value(enc, value);
    }
}

/// Deserializes a [`TupleComponent`], validating values against domains.
pub fn get_tuple(dec: &mut Decoder) -> io::Result<TupleComponent> {
    let arity = dec.get_u64()? as usize;
    let mut attrs = Vec::with_capacity(arity.min(1 << 16));
    let mut values = Vec::with_capacity(arity.min(1 << 16));
    for _ in 0..arity {
        let name = dec.get_str()?;
        let domain = tag_domain(dec.get_u8()?)?;
        let value = get_value(dec)?;
        attrs.push(Attribute::new(name, domain));
        values.push(value);
    }
    TupleComponent::new(Schema::new(attrs), values)
        .map_err(|e| Decoder::err(&format!("tuple does not validate: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut enc = Encoder::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            enc.put_u64(v);
        }
        let signed = [0i64, -1, 1, i64::MIN, i64::MAX, -123456789];
        for &v in &signed {
            enc.put_i64(v);
        }
        enc.put_str("héllo wörld");
        enc.put_f64(std::f64::consts::PI);
        enc.put_opt_str(None);
        enc.put_opt_str(Some("x"));
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        for &v in &values {
            assert_eq!(dec.get_u64().unwrap(), v);
        }
        for &v in &signed {
            assert_eq!(dec.get_i64().unwrap(), v);
        }
        assert_eq!(dec.get_str().unwrap(), "héllo wörld");
        assert_eq!(dec.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(dec.get_opt_str().unwrap(), None);
        assert_eq!(dec.get_opt_str().unwrap().as_deref(), Some("x"));
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn tuple_and_schema_roundtrip() {
        let tuple = TupleComponent::of(vec![
            ("size", Value::Integer(42)),
            ("name", Value::Text("x".into())),
            ("ratio", Value::Float(0.5)),
            ("flag", Value::Boolean(true)),
            ("when", Value::Date(Timestamp(1234))),
        ]);
        let mut enc = Encoder::new();
        put_tuple(&mut enc, &tuple);
        put_schema(&mut enc, tuple.schema());
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = get_tuple(&mut dec).unwrap();
        assert_eq!(back, tuple);
        let schema = get_schema(&mut dec).unwrap();
        assert_eq!(&schema, tuple.schema());
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        let payload = b"the quick brown fox";
        let mut tampered = payload.to_vec();
        tampered[3] ^= 1;
        assert_ne!(fnv1a64(payload), fnv1a64(&tampered));
    }

    #[test]
    fn truncated_inputs_error() {
        let mut enc = Encoder::new();
        enc.put_str("hello");
        enc.put_f64(1.0);
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            let r = dec.get_str().and_then(|_| dec.get_f64());
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }
}
