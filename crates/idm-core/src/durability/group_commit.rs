//! Group commit: coalescing concurrent WAL appends into one fsync.
//!
//! PR 5 made every mutation durable with an fsync-per-append discipline —
//! correct, but the fsync dominates the write path as soon as more than
//! one thread (or one bulk load) is appending. [`GroupCommitWal`] wraps
//! the raw [`WalWriter`] with two coalescing strategies:
//!
//! * **Leader/follower groups** for concurrent appenders: each appender
//!   enqueues its record and takes a sequence number; the first appender
//!   to find no flush in flight becomes the *leader*, drains the whole
//!   pending queue, and writes it as one buffered
//!   [`WalWriter::append_batch`] (one `write_all`, one covering
//!   `sync_data`). Followers block until the acknowledged sequence
//!   passes their own. An append returns `Ok` **only after the covering
//!   fsync**, so the PR 5 crash-matrix guarantee — recovery yields an
//!   exact prefix containing every acknowledged record — is preserved.
//!
//! * **Bulk scopes** for single-threaded mass ingest: inside a
//!   [`BulkWalScope`] every append is written immediately but unsynced
//!   (preserving WAL-before-memory ordering), and a covering
//!   [`WalWriter::sync_now`] is issued every `sync_every` records and at
//!   [`BulkWalScope::finish`]. Records are only *acknowledged to the
//!   caller of `finish`* once the final sync lands.
//!
//! With `max_delay == 0` and a single appending thread, every group has
//! exactly one record, so the log byte stream and all observable
//! behavior match the ungrouped writer — tests stay deterministic.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
// The workspace's parking_lot shim has no Condvar, so the queue uses
// std::sync primitives directly (poison swallowed, matching the shim).
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use super::record::ChangeRecord;
use super::wal::{WalStats, WalWriter};

/// Tuning knobs for the leader/follower group-commit path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Largest number of records a leader will flush as one group.
    pub max_batch: usize,
    /// How long a leader waits for followers to join before flushing.
    /// `Duration::ZERO` (the default) means "flush whatever is queued
    /// right now" — with one appender that degenerates to groups of
    /// one, keeping single-threaded runs deterministic.
    pub max_delay: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_batch: 128,
            max_delay: Duration::ZERO,
        }
    }
}

/// Queue state shared between appenders. Protected by one mutex; the
/// actual file write happens *outside* the lock so followers can keep
/// enqueueing while the leader is in `write_all`/`sync_data`.
struct Queue {
    pending: Vec<ChangeRecord>,
    /// Sequence number handed to the next enqueued record.
    next_seq: u64,
    /// All records with sequence `< acked_seq` are durable.
    acked_seq: u64,
    /// A leader is currently flushing outside the lock.
    flushing: bool,
}

/// A [`WalWriter`] front end that coalesces appends into group commits.
pub struct GroupCommitWal {
    wal: Arc<WalWriter>,
    config: Option<GroupCommitConfig>,
    queue: Mutex<Queue>,
    flushed: Condvar,
    /// Nesting depth of active bulk scopes (0 = leader/follower mode).
    bulk_depth: AtomicUsize,
    /// Records written-but-unsynced by the innermost bulk scope.
    bulk_pending: AtomicU64,
}

impl GroupCommitWal {
    fn lock_queue(&self) -> MutexGuard<'_, Queue> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Wraps `wal`. With `config == None` every append passes straight
    /// through to the underlying writer (the PR 5 behavior).
    pub fn new(wal: Arc<WalWriter>, config: Option<GroupCommitConfig>) -> Self {
        GroupCommitWal {
            wal,
            config,
            queue: Mutex::new(Queue {
                pending: Vec::new(),
                next_seq: 0,
                acked_seq: 0,
                flushing: false,
            }),
            flushed: Condvar::new(),
            bulk_depth: AtomicUsize::new(0),
            bulk_pending: AtomicU64::new(0),
        }
    }

    /// The wrapped raw writer.
    pub fn raw(&self) -> &Arc<WalWriter> {
        &self.wal
    }

    /// Appends one record; returns only after the record is covered by
    /// a sync (under `SyncPolicy::Fsync`) or written (under
    /// `SyncPolicy::WriteBack`).
    pub fn append(&self, record: &ChangeRecord) -> io::Result<()> {
        if self.bulk_depth.load(Ordering::Acquire) > 0 {
            return self.append_bulk(record);
        }
        let config = match self.config {
            Some(c) if c.max_batch > 1 => c,
            _ => return self.wal.append(record),
        };

        let mut queue = self.lock_queue();
        let my_seq = queue.next_seq;
        queue.next_seq += 1;
        queue.pending.push(record.clone());

        loop {
            if queue.acked_seq > my_seq {
                return Ok(());
            }
            // A failed group poisons the writer; surface its error.
            self.wal.ensure_healthy()?;
            if !queue.flushing {
                // Become the leader for everything queued so far.
                queue.flushing = true;
                if !config.max_delay.is_zero() && queue.pending.len() < config.max_batch {
                    queue = self
                        .flushed
                        .wait_timeout(queue, config.max_delay)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
                let take = queue.pending.len().min(config.max_batch);
                let batch: Vec<ChangeRecord> = queue.pending.drain(..take).collect();
                drop(queue);

                let result = self.wal.append_batch(&batch);

                queue = self.lock_queue();
                queue.flushing = false;
                if result.is_ok() {
                    queue.acked_seq += batch.len() as u64;
                }
                self.flushed.notify_all();
                match result {
                    Ok(()) => {
                        if queue.acked_seq > my_seq {
                            return Ok(());
                        }
                        // Our record was beyond max_batch; loop and
                        // either follow the next leader or lead again.
                    }
                    Err(e) => return Err(e),
                }
            } else {
                queue = self
                    .flushed
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Appends a whole batch as one buffered write and (outside a bulk
    /// scope) one covering sync — the `insert_batch` store path.
    pub fn append_batch(&self, records: &[ChangeRecord]) -> io::Result<()> {
        if records.is_empty() {
            return self.wal.ensure_healthy();
        }
        if self.bulk_depth.load(Ordering::Acquire) > 0 {
            self.wal.append_batch_unsynced(records)?;
            self.note_bulk_written(records.len() as u64)?;
            return Ok(());
        }
        self.wal.append_batch(records)
    }

    fn append_bulk(&self, record: &ChangeRecord) -> io::Result<()> {
        self.wal.append_unsynced(record)?;
        self.note_bulk_written(1)
    }

    /// Advances the bulk-window record count and issues the periodic
    /// covering sync whenever the count crosses a `max_batch` boundary.
    fn note_bulk_written(&self, count: u64) -> io::Result<()> {
        let after = self.bulk_pending.fetch_add(count, Ordering::AcqRel) + count;
        let sync_every = self
            .config
            .map(|c| c.max_batch.max(1) as u64)
            .unwrap_or(u64::MAX);
        if after / sync_every > (after - count) / sync_every
            && matches!(self.wal.sync_policy(), super::SyncPolicy::Fsync)
        {
            self.wal.sync_now()?;
        }
        Ok(())
    }

    /// Opens a bulk-ingest scope: every append inside the scope is
    /// written immediately but the covering sync is deferred to every
    /// `max_batch` records and to [`BulkWalScope::finish`]. Callers
    /// must not treat any record as acknowledged until `finish`
    /// returns `Ok`.
    pub fn begin_bulk(self: &Arc<Self>) -> BulkWalScope {
        self.bulk_depth.fetch_add(1, Ordering::AcqRel);
        BulkWalScope {
            sink: Arc::clone(self),
            finished: false,
        }
    }

    /// Rotates the underlying writer to a fresh segment. Callers must
    /// guarantee no append is concurrently in flight (the checkpoint
    /// path holds every store shard lock via `frozen_export`, and
    /// appenders hold their shard lock until acknowledged, so the
    /// queue is necessarily drained here).
    pub fn rotate(&self, new_path: &Path) -> io::Result<()> {
        let mut queue = self.lock_queue();
        while queue.flushing {
            queue = self
                .flushed
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
        debug_assert!(
            queue.pending.is_empty(),
            "rotate with undrained group-commit queue"
        );
        self.wal.rotate(new_path)
    }

    /// See [`WalWriter::lsn`].
    pub fn lsn(&self) -> u64 {
        self.wal.lsn()
    }

    /// See [`WalWriter::sync`].
    pub fn sync(&self) -> io::Result<()> {
        self.wal.sync()
    }

    /// See [`WalWriter::ensure_healthy`].
    pub fn ensure_healthy(&self) -> io::Result<()> {
        self.wal.ensure_healthy()
    }

    /// See [`WalWriter::stats`].
    pub fn stats(&self) -> WalStats {
        self.wal.stats()
    }
}

impl std::fmt::Debug for GroupCommitWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommitWal")
            .field("config", &self.config)
            .field("bulk_depth", &self.bulk_depth.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// RAII guard for a bulk-ingest window. Call [`BulkWalScope::finish`]
/// to issue the final covering sync and learn whether every record in
/// the window is durable; dropping without `finish` still closes the
/// window and attempts the sync best-effort, but the result is lost.
pub struct BulkWalScope {
    sink: Arc<GroupCommitWal>,
    finished: bool,
}

impl BulkWalScope {
    /// Closes the window: issues the covering sync (under
    /// `SyncPolicy::Fsync`) and returns its result. Only after an `Ok`
    /// here may the caller acknowledge the window's records.
    pub fn finish(mut self) -> io::Result<()> {
        self.finished = true;
        self.close()
    }

    fn close(&mut self) -> io::Result<()> {
        self.sink.bulk_depth.fetch_sub(1, Ordering::AcqRel);
        self.sink.bulk_pending.store(0, Ordering::Release);
        if matches!(self.sink.wal.sync_policy(), super::SyncPolicy::Fsync) {
            self.sink.wal.sync_now()
        } else {
            Ok(())
        }
    }
}

impl Drop for BulkWalScope {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::wal::{read_segment, SyncPolicy};
    use super::*;

    fn record(n: u64) -> ChangeRecord {
        ChangeRecord::Remove { vid: n }
    }

    fn temp_wal(sync: SyncPolicy) -> (tempdir::TempDir, Arc<WalWriter>) {
        let dir = tempdir::TempDir::new();
        let path = dir.path().join("wal-1.idmwal");
        let wal = Arc::new(WalWriter::create(&path, 0, sync).expect("create wal"));
        (dir, wal)
    }

    // Minimal tempdir shim so this module has no dev-dependency.
    mod tempdir {
        use std::path::{Path, PathBuf};
        use std::sync::atomic::{AtomicU64, Ordering};

        static NEXT: AtomicU64 = AtomicU64::new(0);

        pub struct TempDir(PathBuf);

        impl TempDir {
            pub fn new() -> TempDir {
                let path = std::env::temp_dir().join(format!(
                    "idm-gc-{}-{}",
                    std::process::id(),
                    NEXT.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&path).expect("create temp dir");
                TempDir(path)
            }

            pub fn path(&self) -> &Path {
                &self.0
            }
        }

        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }

    #[test]
    fn single_threaded_groups_of_one_match_plain_appends() {
        let (dir, wal) = temp_wal(SyncPolicy::Fsync);
        let sink = GroupCommitWal::new(Arc::clone(&wal), Some(GroupCommitConfig::default()));
        for n in 0..10 {
            sink.append(&record(n)).expect("append");
        }
        let stats = sink.stats();
        assert_eq!(stats.frames, 10);
        assert_eq!(stats.groups, 10);
        assert_eq!(stats.syncs, 10);
        assert_eq!(stats.largest_group, 1);
        let segment = read_segment(&dir.path().join("wal-1.idmwal")).expect("read");
        assert_eq!(segment.records.len(), 10);
    }

    #[test]
    fn concurrent_appends_coalesce_and_all_land() {
        let (dir, wal) = temp_wal(SyncPolicy::Fsync);
        let sink = Arc::new(GroupCommitWal::new(
            Arc::clone(&wal),
            Some(GroupCommitConfig {
                max_batch: 64,
                max_delay: Duration::from_millis(2),
            }),
        ));
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 50;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for n in 0..PER_THREAD {
                        sink.append(&record(t * PER_THREAD + n)).expect("append");
                    }
                });
            }
        });
        let stats = sink.stats();
        assert_eq!(stats.frames, THREADS * PER_THREAD);
        assert_eq!(stats.syncs, stats.groups);
        // Coalescing must have saved at least some syncs; the exact
        // grouping is timing-dependent.
        assert!(stats.groups <= stats.frames);
        let segment = read_segment(&dir.path().join("wal-1.idmwal")).expect("read");
        assert_eq!(segment.records.len(), (THREADS * PER_THREAD) as usize);
    }

    #[test]
    fn bulk_scope_defers_syncs_to_batch_boundaries() {
        let (dir, wal) = temp_wal(SyncPolicy::Fsync);
        let sink = Arc::new(GroupCommitWal::new(
            Arc::clone(&wal),
            Some(GroupCommitConfig {
                max_batch: 32,
                max_delay: Duration::ZERO,
            }),
        ));
        let scope = sink.begin_bulk();
        for n in 0..100 {
            sink.append(&record(n)).expect("append");
        }
        scope.finish().expect("finish");
        let stats = sink.stats();
        assert_eq!(stats.frames, 100);
        // 3 interior syncs (at 32/64/96) + 1 covering sync at finish.
        assert_eq!(stats.syncs, 4);
        let segment = read_segment(&dir.path().join("wal-1.idmwal")).expect("read");
        assert_eq!(segment.records.len(), 100);
    }

    #[test]
    fn passthrough_without_config_matches_raw_writer() {
        let (_dir, wal) = temp_wal(SyncPolicy::WriteBack);
        let sink = GroupCommitWal::new(Arc::clone(&wal), None);
        for n in 0..5 {
            sink.append(&record(n)).expect("append");
        }
        let stats = sink.stats();
        assert_eq!(stats.frames, 5);
        assert_eq!(stats.syncs, 0);
        assert_eq!(stats.syncs_saved(), 0);
    }
}
