//! Checkpoint snapshots: the full durable image of a dataspace at one
//! log sequence number.
//!
//! ## On-disk format
//!
//! ```text
//! [magic "IDMSNAP1"] [payload] [checksum: u64 LE]
//! ```
//!
//! The payload is one `Encoder` stream: base LSN, next vid, the class
//! registry (definitions in id order, so interned ids survive), every
//! live view as `(vid, version, SerialView)`, and the lineage edges. The
//! checksum is FNV-1a-64 over *everything* before it (magic included), so
//! any truncation or bit flip fails loudly. Snapshots are written to a
//! temp file, fsynced, and atomically renamed into place — a crash
//! leaves either the old snapshot or the new one, never a hybrid.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::class::{
    ChildClasses, ClassDef, ClassId, Constraints, Emptiness, Finiteness, SchemaConstraint,
};
use crate::durability::codec::{fnv1a64, get_schema, put_schema, Decoder, Encoder};
use crate::durability::record::SerialView;
use crate::lineage::Derivation;
use crate::store::Vid;

/// Magic bytes opening every snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"IDMSNAP1";

/// The decoded (or to-be-encoded) image of one checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotData {
    /// LSN as of this snapshot: WAL records at or after it postdate the
    /// image; everything before is folded in.
    pub base_lsn: u64,
    /// The store's vid allocator position.
    pub next_vid: u64,
    /// Class definitions in id order.
    pub classes: Vec<ClassDef>,
    /// Live views as `(raw vid, version, image)`, vid-ascending.
    pub views: Vec<(u64, u64, SerialView)>,
    /// Lineage edges as `(derived, source, transform)`.
    pub lineage: Vec<(u64, u64, String)>,
}

impl SnapshotData {
    /// Converts exported lineage edges into the serial form.
    pub fn lineage_from(edges: Vec<Derivation>) -> Vec<(u64, u64, String)> {
        edges
            .into_iter()
            .map(|e| (e.derived.as_u64(), e.source.as_u64(), e.transform))
            .collect()
    }

    /// Converts the serial lineage back into edges.
    pub fn lineage_edges(&self) -> Vec<Derivation> {
        self.lineage
            .iter()
            .map(|(derived, source, transform)| Derivation {
                derived: Vid::from_raw(*derived),
                source: Vid::from_raw(*source),
                transform: transform.clone(),
            })
            .collect()
    }
}

fn put_emptiness(enc: &mut Encoder, e: Emptiness) {
    enc.put_u8(match e {
        Emptiness::Any => 0,
        Emptiness::MustBeEmpty => 1,
        Emptiness::MustBeNonEmpty => 2,
    });
}

fn get_emptiness(dec: &mut Decoder) -> io::Result<Emptiness> {
    Ok(match dec.get_u8()? {
        0 => Emptiness::Any,
        1 => Emptiness::MustBeEmpty,
        2 => Emptiness::MustBeNonEmpty,
        other => return Err(Decoder::err(&format!("bad emptiness tag {other}"))),
    })
}

fn put_finiteness(enc: &mut Encoder, f: Finiteness) {
    enc.put_u8(match f {
        Finiteness::Any => 0,
        Finiteness::Finite => 1,
        Finiteness::Infinite => 2,
    });
}

fn get_finiteness(dec: &mut Decoder) -> io::Result<Finiteness> {
    Ok(match dec.get_u8()? {
        0 => Finiteness::Any,
        1 => Finiteness::Finite,
        2 => Finiteness::Infinite,
        other => return Err(Decoder::err(&format!("bad finiteness tag {other}"))),
    })
}

fn put_constraints(enc: &mut Encoder, c: &Constraints) {
    put_emptiness(enc, c.name);
    put_emptiness(enc, c.tuple);
    put_emptiness(enc, c.content);
    put_emptiness(enc, c.group);
    match &c.tuple_schema {
        SchemaConstraint::Any => enc.put_u8(0),
        SchemaConstraint::Exact(schema) => {
            enc.put_u8(1);
            put_schema(enc, schema);
        }
        SchemaConstraint::Covers(schema) => {
            enc.put_u8(2);
            put_schema(enc, schema);
        }
    }
    put_finiteness(enc, c.content_finiteness);
    put_finiteness(enc, c.group_finiteness);
    enc.put_u8(match c.ordered_members {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
    match &c.child_classes {
        ChildClasses::Any => enc.put_u8(0),
        ChildClasses::OneOf(ids) => {
            enc.put_u8(1);
            enc.put_u64(ids.len() as u64);
            for id in ids {
                enc.put_u64(id.as_u32() as u64);
            }
        }
    }
}

fn get_constraints(dec: &mut Decoder) -> io::Result<Constraints> {
    let name = get_emptiness(dec)?;
    let tuple = get_emptiness(dec)?;
    let content = get_emptiness(dec)?;
    let group = get_emptiness(dec)?;
    let tuple_schema = match dec.get_u8()? {
        0 => SchemaConstraint::Any,
        1 => SchemaConstraint::Exact(get_schema(dec)?),
        2 => SchemaConstraint::Covers(get_schema(dec)?),
        other => return Err(Decoder::err(&format!("bad schema constraint tag {other}"))),
    };
    let content_finiteness = get_finiteness(dec)?;
    let group_finiteness = get_finiteness(dec)?;
    let ordered_members = match dec.get_u8()? {
        0 => None,
        1 => Some(false),
        2 => Some(true),
        other => return Err(Decoder::err(&format!("bad ordering tag {other}"))),
    };
    let child_classes = match dec.get_u8()? {
        0 => ChildClasses::Any,
        1 => {
            let count = dec.get_u64()? as usize;
            let mut ids = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let raw = dec.get_u64()?;
                let raw = u32::try_from(raw)
                    .map_err(|_| Decoder::err(&format!("class id {raw} out of range")))?;
                ids.push(class_id(raw));
            }
            ChildClasses::OneOf(ids)
        }
        other => return Err(Decoder::err(&format!("bad child classes tag {other}"))),
    };
    Ok(Constraints {
        name,
        tuple,
        content,
        group,
        tuple_schema,
        content_finiteness,
        group_finiteness,
        ordered_members,
        child_classes,
    })
}

/// `ClassId` has a crate-private constructor; snapshots rebuild ids by
/// position, which `ClassRegistry::from_defs` preserves.
fn class_id(raw: u32) -> ClassId {
    ClassId(raw)
}

/// Serializes a snapshot image (magic + payload + trailing checksum).
pub fn to_bytes(data: &SnapshotData) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_raw(SNAP_MAGIC);
    enc.put_u64(data.base_lsn);
    enc.put_u64(data.next_vid);

    enc.put_u64(data.classes.len() as u64);
    for def in &data.classes {
        enc.put_str(&def.name);
        match def.parent {
            Some(parent) => {
                enc.put_u8(1);
                enc.put_u64(parent.as_u32() as u64);
            }
            None => enc.put_u8(0),
        }
        put_constraints(&mut enc, &def.constraints);
    }

    enc.put_u64(data.views.len() as u64);
    for (vid, version, view) in &data.views {
        enc.put_u64(*vid);
        enc.put_u64(*version);
        view.encode_into(&mut enc);
    }

    enc.put_u64(data.lineage.len() as u64);
    for (derived, source, transform) in &data.lineage {
        enc.put_u64(*derived);
        enc.put_u64(*source);
        enc.put_str(transform);
    }

    let checksum = fnv1a64(enc.as_bytes());
    let mut bytes = enc.into_bytes();
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Deserializes and fully validates a snapshot image.
pub fn from_bytes(bytes: &[u8]) -> io::Result<SnapshotData> {
    if bytes.len() < 16 {
        return Err(Decoder::err("snapshot shorter than magic + checksum"));
    }
    if &bytes[..8] != SNAP_MAGIC {
        return Err(Decoder::err("bad snapshot magic"));
    }
    let body = &bytes[..bytes.len() - 8];
    let mut tail = [0u8; 8];
    tail.copy_from_slice(&bytes[bytes.len() - 8..]);
    if fnv1a64(body) != u64::from_le_bytes(tail) {
        return Err(Decoder::err("snapshot checksum mismatch"));
    }

    let mut dec = Decoder::new(&body[8..]);
    let base_lsn = dec.get_u64()?;
    let next_vid = dec.get_u64()?;

    let class_count = dec.get_u64()? as usize;
    let mut classes = Vec::with_capacity(class_count.min(1 << 16));
    for _ in 0..class_count {
        let name = dec.get_str()?;
        let parent = match dec.get_u8()? {
            0 => None,
            1 => {
                let raw = dec.get_u64()?;
                let raw = u32::try_from(raw)
                    .map_err(|_| Decoder::err(&format!("parent id {raw} out of range")))?;
                Some(class_id(raw))
            }
            other => return Err(Decoder::err(&format!("bad parent flag {other}"))),
        };
        let constraints = get_constraints(&mut dec)?;
        classes.push(ClassDef {
            name,
            parent,
            constraints,
        });
    }

    let view_count = dec.get_u64()? as usize;
    let mut views = Vec::with_capacity(view_count.min(1 << 20));
    for _ in 0..view_count {
        let vid = dec.get_u64()?;
        let version = dec.get_u64()?;
        let view = SerialView::decode_from(&mut dec)?;
        views.push((vid, version, view));
    }

    let edge_count = dec.get_u64()? as usize;
    let mut lineage = Vec::with_capacity(edge_count.min(1 << 20));
    for _ in 0..edge_count {
        let derived = dec.get_u64()?;
        let source = dec.get_u64()?;
        let transform = dec.get_str()?;
        lineage.push((derived, source, transform));
    }

    if dec.remaining() != 0 {
        return Err(Decoder::err("trailing bytes in snapshot"));
    }
    Ok(SnapshotData {
        base_lsn,
        next_vid,
        classes,
        views,
        lineage,
    })
}

/// Fsyncs the directory containing `path`, making a just-completed
/// rename or file creation in it durable.
///
/// Real I/O errors propagate — a failed directory sync means the
/// metadata may not survive a crash and callers must not acknowledge
/// the operation. Only two cases stay silent, and only because they
/// signal *inability*, not failure: the platform cannot open
/// directories for syncing at all (`File::open` fails), or the
/// filesystem rejects the fsync as unsupported
/// (`ErrorKind::Unsupported`, the `ENOTSUP`/`EINVAL` family).
pub fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let Some(parent) = path.parent() else {
        return Ok(());
    };
    let Ok(dir) = File::open(parent) else {
        return Ok(());
    };
    match dir.sync_all() {
        Ok(()) => Ok(()),
        Err(e)
            if e.kind() == io::ErrorKind::Unsupported
                || e.raw_os_error() == Some(libc_einval()) =>
        {
            Ok(())
        }
        Err(e) => Err(e),
    }
}

/// `EINVAL` — what Linux returns for fsync on filesystems that do not
/// support directory syncing (kept literal to avoid a libc dependency).
const fn libc_einval() -> i32 {
    22
}

/// Writes a snapshot atomically: temp file in the same directory,
/// `fsync`, rename over the final name, then an fsync of the directory
/// so the rename itself is durable (see [`sync_parent_dir`] for which
/// failures are tolerated). Returns the byte size.
pub fn write(path: &Path, data: &SnapshotData) -> io::Result<u64> {
    let bytes = to_bytes(data);
    let tmp = path.with_extension("idmsnap.tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok(bytes.len() as u64)
}

/// Reads and validates a snapshot file.
pub fn read(path: &Path) -> io::Result<SnapshotData> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassRegistry;
    use crate::durability::record::{SerialContent, SerialGroup};
    use crate::value::{TupleComponent, Value};

    fn sample() -> SnapshotData {
        let registry = ClassRegistry::with_builtins();
        SnapshotData {
            base_lsn: 42,
            next_vid: 7,
            classes: registry.export_defs(),
            views: vec![
                (
                    1,
                    3,
                    SerialView {
                        name: Some("a.txt".into()),
                        tuple: Some(TupleComponent::of(vec![("size", Value::Integer(5))])),
                        content: SerialContent::Inline(bytes::Bytes::from_static(b"hello")),
                        group: SerialGroup::Empty,
                        class: Some("file".into()),
                    },
                ),
                (
                    2,
                    0,
                    SerialView {
                        name: Some("dir".into()),
                        tuple: None,
                        content: SerialContent::Empty,
                        group: SerialGroup::Finite {
                            set: vec![1],
                            seq: vec![],
                        },
                        class: Some("folder".into()),
                    },
                ),
            ],
            lineage: vec![(2, 1, "copy".into())],
        }
    }

    #[test]
    fn roundtrip() {
        let data = sample();
        let bytes = to_bytes(&data);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn class_registry_survives_with_identical_ids() {
        let data = sample();
        let back = from_bytes(&to_bytes(&data)).unwrap();
        let rebuilt = ClassRegistry::from_defs(back.classes).unwrap();
        let original = ClassRegistry::with_builtins();
        assert_eq!(rebuilt.len(), original.len());
        assert_eq!(
            rebuilt.lookup("xmlfile").map(|c| c.as_u32()),
            original.lookup("xmlfile").map(|c| c.as_u32())
        );
        let file = rebuilt.lookup("file").unwrap();
        let xmlfile = rebuilt.lookup("xmlfile").unwrap();
        assert!(rebuilt.is_subclass(xmlfile, file));
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = to_bytes(&sample());
        for cut in 0..bytes.len() {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_single_byte_corruption_errors() {
        let bytes = to_bytes(&sample());
        for i in 0..bytes.len() {
            let mut bent = bytes.clone();
            bent[i] ^= 0x01;
            assert!(from_bytes(&bent).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn trailing_bytes_error() {
        // Appending data breaks the checksum position.
        let mut bytes = to_bytes(&sample());
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn atomic_write_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!("idm-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap-1.idmsnap");
        let data = sample();
        let size = write(&path, &data).unwrap();
        assert_eq!(size, std::fs::metadata(&path).unwrap().len());
        assert_eq!(read(&path).unwrap(), data);
        // No temp file left behind.
        assert!(!path.with_extension("idmsnap.tmp").exists());
    }
}
