//! Resource view classes (Definition 2) and the built-in classes of Table 1.
//!
//! A resource view class is a set of formal restrictions on the `η`, `τ`,
//! `χ` and `γ` components of the views that conform to it:
//!
//! 1. emptiness of components,
//! 2. the schema of `τ`,
//! 3. finiteness of `χ` and of the group members `S`/`Q`,
//! 4. the classes acceptable for directly related views.
//!
//! Classes are organized in generalization hierarchies: a view conforming
//! to class `C` automatically conforms to every generalization of `C`
//! (e.g. `xmlfile` specializes `file`). Not every view needs a class —
//! iDM supports schema-first, schema-later and schema-never modeling.

use std::collections::HashMap;
use std::fmt;

use parking_lot::RwLock;

use crate::error::{IdmError, Result};
use crate::value::Schema;

/// Interned identifier of a registered resource view class.
///
/// Stable within one [`ClassRegistry`]; resolve to a name with
/// [`ClassRegistry::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub(crate) u32);

impl ClassId {
    /// Raw index accessor.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// Emptiness restriction on a single component (Def. 2, restriction 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Emptiness {
    /// No restriction.
    #[default]
    Any,
    /// The component must be empty.
    MustBeEmpty,
    /// The component must be non-empty.
    MustBeNonEmpty,
}

/// Finiteness restriction on `χ` or `γ` (Def. 2, restriction 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Finiteness {
    /// No restriction.
    #[default]
    Any,
    /// Must be finite (possibly empty).
    Finite,
    /// Must be infinite.
    Infinite,
}

/// Schema restriction on `τ` (Def. 2, restriction 2).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SchemaConstraint {
    /// No restriction.
    #[default]
    Any,
    /// `τ` must carry exactly this schema (attribute names, domains, order).
    Exact(Schema),
    /// `τ`'s schema must contain at least these attributes (any order).
    Covers(Schema),
}

/// Restriction on the classes of directly related views
/// (Def. 2, restriction 4).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ChildClasses {
    /// No restriction.
    #[default]
    Any,
    /// Every directly related view must conform to (a specialization of)
    /// one of these classes. An empty list forbids related views entirely
    /// — equivalent to requiring `γ` to be empty.
    OneOf(Vec<ClassId>),
}

/// The full restriction set of one resource view class.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Constraints {
    /// Emptiness of the name component `η`.
    pub name: Emptiness,
    /// Emptiness of the tuple component `τ`.
    pub tuple: Emptiness,
    /// Emptiness of the content component `χ`.
    pub content: Emptiness,
    /// Emptiness of the group component `γ` as a whole.
    pub group: Emptiness,
    /// Schema restriction on `τ`.
    pub tuple_schema: SchemaConstraint,
    /// Finiteness of `χ`.
    pub content_finiteness: Finiteness,
    /// Finiteness of `γ`.
    pub group_finiteness: Finiteness,
    /// Restriction on member ordering: `Some(true)` requires all members in
    /// the sequence `Q`, `Some(false)` requires all members in the set `S`.
    pub ordered_members: Option<bool>,
    /// Acceptable classes for directly related views.
    pub child_classes: ChildClasses,
}

/// One registered class: its name, optional generalization, constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    /// Class name (unique within the registry), e.g. `"xmlelem"`.
    pub name: String,
    /// The class this one specializes, if any.
    pub parent: Option<ClassId>,
    /// The restriction set.
    pub constraints: Constraints,
}

/// Registry of resource view classes, including the Table 1 built-ins.
///
/// Thread-safe; classes are append-only (a dataspace never unlearns a
/// class, though new specializations may arrive at any time).
pub struct ClassRegistry {
    inner: RwLock<RegistryInner>,
}

struct RegistryInner {
    defs: Vec<ClassDef>,
    by_name: HashMap<String, ClassId>,
}

impl ClassRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        ClassRegistry {
            inner: RwLock::new(RegistryInner {
                defs: Vec::new(),
                by_name: HashMap::new(),
            }),
        }
    }

    /// A registry pre-loaded with the built-in classes of Table 1 plus the
    /// document/email classes used throughout the paper's examples
    /// (`latex_*`, `emailmessage`, …). See [`builtin`] for the list.
    pub fn with_builtins() -> Self {
        let registry = ClassRegistry::empty();
        builtin::register_all(&registry);
        registry
    }

    /// Registers a class; errors if the name is taken.
    pub fn register(&self, def: ClassDef) -> Result<ClassId> {
        let mut inner = self.inner.write();
        if inner.by_name.contains_key(&def.name) {
            return Err(IdmError::Parse {
                detail: format!("class '{}' already registered", def.name),
            });
        }
        if let Some(parent) = def.parent {
            if parent.0 as usize >= inner.defs.len() {
                return Err(IdmError::UnknownClass(format!("{parent}")));
            }
        }
        let id = ClassId(inner.defs.len() as u32);
        inner.by_name.insert(def.name.clone(), id);
        inner.defs.push(def);
        Ok(id)
    }

    /// Registers a class with no parent and the given constraints.
    pub fn define(&self, name: &str, constraints: Constraints) -> Result<ClassId> {
        self.register(ClassDef {
            name: name.to_owned(),
            parent: None,
            constraints,
        })
    }

    /// Registers a specialization of `parent`.
    pub fn specialize(
        &self,
        name: &str,
        parent: ClassId,
        constraints: Constraints,
    ) -> Result<ClassId> {
        self.register(ClassDef {
            name: name.to_owned(),
            parent: Some(parent),
            constraints,
        })
    }

    /// Looks a class up by name.
    pub fn lookup(&self, name: &str) -> Option<ClassId> {
        self.inner.read().by_name.get(name).copied()
    }

    /// Looks a class up by name, erroring if unknown.
    pub fn require(&self, name: &str) -> Result<ClassId> {
        self.lookup(name)
            .ok_or_else(|| IdmError::UnknownClass(name.to_owned()))
    }

    /// The name of a class.
    pub fn name(&self, id: ClassId) -> String {
        self.inner
            .read()
            .defs
            .get(id.0 as usize)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("{id}"))
    }

    /// The definition of a class, cloned.
    pub fn def(&self, id: ClassId) -> Option<ClassDef> {
        self.inner.read().defs.get(id.0 as usize).cloned()
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.inner.read().defs.len()
    }

    /// Whether no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `sub` is `sup` or a (transitive) specialization of it —
    /// i.e. a view of class `sub` automatically conforms to `sup`.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let inner = self.inner.read();
        let mut cur = Some(sub);
        while let Some(id) = cur {
            if id == sup {
                return true;
            }
            cur = inner.defs.get(id.0 as usize).and_then(|d| d.parent);
        }
        false
    }

    /// All classes that are `sup` or a specialization of it (so views of
    /// any returned class conform to `sup`). Used by class predicates.
    pub fn subclasses(&self, sup: ClassId) -> Vec<ClassId> {
        let count = self.len() as u32;
        (0..count)
            .map(ClassId)
            .filter(|c| self.is_subclass(*c, sup))
            .collect()
    }

    /// Looks a class up by name, registering it with default
    /// (unconstrained) restrictions if unknown — schema-later modeling,
    /// used by durability recovery where a WAL record may carry a class
    /// name the replaying registry has not seen yet.
    pub fn lookup_or_register(&self, name: &str) -> ClassId {
        let mut inner = self.inner.write();
        if let Some(id) = inner.by_name.get(name).copied() {
            return id;
        }
        let id = ClassId(inner.defs.len() as u32);
        inner.by_name.insert(name.to_owned(), id);
        inner.defs.push(ClassDef {
            name: name.to_owned(),
            parent: None,
            constraints: Constraints::default(),
        });
        id
    }

    /// Every registered definition in id order — the durable image of
    /// this registry. Parent ids refer to positions in the returned
    /// vector, so replaying the list through [`ClassRegistry::from_defs`]
    /// reproduces identical interned ids.
    pub fn export_defs(&self) -> Vec<ClassDef> {
        self.inner.read().defs.clone()
    }

    /// Rebuilds a registry from an exported definition list, preserving
    /// interned id assignment.
    pub fn from_defs(defs: Vec<ClassDef>) -> Result<ClassRegistry> {
        let registry = ClassRegistry::empty();
        for def in defs {
            registry.register(def)?;
        }
        Ok(registry)
    }

    /// The class and all of its generalizations, most specific first.
    pub fn ancestry(&self, id: ClassId) -> Vec<ClassId> {
        let inner = self.inner.read();
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            out.push(c);
            cur = inner.defs.get(c.0 as usize).and_then(|d| d.parent);
        }
        out
    }
}

impl Default for ClassRegistry {
    fn default() -> Self {
        ClassRegistry::with_builtins()
    }
}

impl fmt::Debug for ClassRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("ClassRegistry")
            .field("classes", &inner.defs.len())
            .finish()
    }
}

/// The built-in resource view classes of Table 1, plus the document
/// structure and email classes the paper's examples and evaluation use
/// (`latex_document`, `latex_section`, `figure`, `texref`, `environment`,
/// `emailmessage`, `mailfolder`, `attachment`, `text`).
pub mod builtin {
    use super::*;
    use crate::value::Domain;

    /// Class name constants, so call sites cannot typo them.
    pub mod names {
        /// A file (Table 1).
        pub const FILE: &str = "file";
        /// A folder (Table 1).
        pub const FOLDER: &str = "folder";
        /// A link to another folder (Figure 1's 'All Projects' node) —
        /// a `folder` specialization whose single member is the target.
        pub const FOLDERLINK: &str = "folderlink";
        /// A relational tuple (Table 1).
        pub const TUPLE: &str = "tuple";
        /// A relation (Table 1).
        pub const RELATION: &str = "relation";
        /// A relational database (Table 1).
        pub const RELDB: &str = "reldb";
        /// An XML text node (Table 1).
        pub const XMLTEXT: &str = "xmltext";
        /// An XML element (Table 1).
        pub const XMLELEM: &str = "xmlelem";
        /// An XML document (Table 1).
        pub const XMLDOC: &str = "xmldoc";
        /// An XML file (Table 1) — a `file` specialization.
        pub const XMLFILE: &str = "xmlfile";
        /// A generic data stream (Table 1).
        pub const DATSTREAM: &str = "datstream";
        /// A tuple stream (Table 1).
        pub const TUPSTREAM: &str = "tupstream";
        /// An RSS/ATOM stream (Table 1).
        pub const RSSATOM: &str = "rssatom";
        /// An ActiveXML element (Section 4.3.1) — `xmlelem` specialization.
        pub const AXML: &str = "axml";
        /// A web service call element inside an AXML element.
        pub const SERVICE_CALL: &str = "sc";
        /// The materialized result of a web service call.
        pub const SERVICE_RESULT: &str = "scresult";
        /// A LaTeX file — a `file` specialization.
        pub const LATEX_FILE: &str = "latexfile";
        /// A LaTeX document root.
        pub const LATEX_DOCUMENT: &str = "latex_document";
        /// A LaTeX (sub)section; queries in the paper filter on this name.
        pub const LATEX_SECTION: &str = "latex_section";
        /// A LaTeX environment (figure, table, …); used by Q7.
        pub const ENVIRONMENT: &str = "environment";
        /// A figure with caption/label; used by Q7 and the Section 5.1
        /// OLAP example query.
        pub const FIGURE: &str = "figure";
        /// A `\ref{…}` reference node; used by Q7.
        pub const TEXREF: &str = "texref";
        /// Unstructured text content extracted from documents.
        pub const TEXT: &str = "text";
        /// An email message; used by Q8.
        pub const EMAILMESSAGE: &str = "emailmessage";
        /// An email (IMAP) folder.
        pub const MAILFOLDER: &str = "mailfolder";
        /// An email attachment — a `file` specialization.
        pub const ATTACHMENT: &str = "attachment";
    }

    /// The filesystem-level schema `W_FS` used by file/folder views.
    pub fn w_fs() -> Schema {
        Schema::of(&[
            ("size", Domain::Integer),
            ("creation time", Domain::Date),
            ("last modified time", Domain::Date),
        ])
    }

    /// Registers every built-in class into `registry`.
    ///
    /// Idempotence is not attempted: call once per registry.
    pub fn register_all(registry: &ClassRegistry) {
        use names::*;

        // --- files & folders (Section 3.2) ---
        let file = registry
            .define(
                FILE,
                Constraints {
                    name: Emptiness::MustBeNonEmpty,
                    tuple: Emptiness::MustBeNonEmpty,
                    tuple_schema: SchemaConstraint::Covers(w_fs()),
                    content_finiteness: Finiteness::Finite,
                    group_finiteness: Finiteness::Finite,
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        let folder = registry
            .define(
                FOLDER,
                Constraints {
                    name: Emptiness::MustBeNonEmpty,
                    tuple: Emptiness::MustBeNonEmpty,
                    content: Emptiness::MustBeEmpty,
                    tuple_schema: SchemaConstraint::Covers(w_fs()),
                    group_finiteness: Finiteness::Finite,
                    ordered_members: Some(false),
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        // Folder children are files or folders (or their specializations).
        // Registered after both ids exist:
        {
            let mut inner = registry.inner.write();
            inner.defs[folder.0 as usize].constraints.child_classes =
                ChildClasses::OneOf(vec![file, folder]);
        }
        registry
            .specialize(FOLDERLINK, folder, Constraints::default())
            .expect("builtin");

        // --- relational (Table 1) ---
        let tuple = registry
            .define(
                TUPLE,
                Constraints {
                    name: Emptiness::MustBeEmpty,
                    tuple: Emptiness::MustBeNonEmpty,
                    content: Emptiness::MustBeEmpty,
                    group: Emptiness::MustBeEmpty,
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        let relation = registry
            .define(
                RELATION,
                Constraints {
                    name: Emptiness::MustBeNonEmpty,
                    tuple: Emptiness::MustBeEmpty,
                    content: Emptiness::MustBeEmpty,
                    group_finiteness: Finiteness::Finite,
                    ordered_members: Some(false),
                    child_classes: ChildClasses::OneOf(vec![tuple]),
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        registry
            .define(
                RELDB,
                Constraints {
                    name: Emptiness::MustBeNonEmpty,
                    tuple: Emptiness::MustBeEmpty,
                    content: Emptiness::MustBeEmpty,
                    ordered_members: Some(false),
                    child_classes: ChildClasses::OneOf(vec![relation]),
                    ..Constraints::default()
                },
            )
            .expect("builtin");

        // --- XML (Section 3.3) ---
        let xmltext = registry
            .define(
                XMLTEXT,
                Constraints {
                    name: Emptiness::MustBeEmpty,
                    tuple: Emptiness::MustBeEmpty,
                    content: Emptiness::MustBeNonEmpty,
                    group: Emptiness::MustBeEmpty,
                    content_finiteness: Finiteness::Finite,
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        let xmlelem = registry
            .define(
                XMLELEM,
                Constraints {
                    name: Emptiness::MustBeNonEmpty,
                    content: Emptiness::MustBeEmpty,
                    group_finiteness: Finiteness::Finite,
                    ordered_members: Some(true),
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        {
            let mut inner = registry.inner.write();
            inner.defs[xmlelem.0 as usize].constraints.child_classes =
                ChildClasses::OneOf(vec![xmltext, xmlelem]);
        }
        let xmldoc = registry
            .define(
                XMLDOC,
                Constraints {
                    name: Emptiness::MustBeEmpty,
                    tuple: Emptiness::MustBeEmpty,
                    content: Emptiness::MustBeEmpty,
                    group: Emptiness::MustBeNonEmpty,
                    ordered_members: Some(true),
                    child_classes: ChildClasses::OneOf(vec![xmlelem]),
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        registry
            .specialize(
                XMLFILE,
                file,
                Constraints {
                    name: Emptiness::MustBeNonEmpty,
                    tuple: Emptiness::MustBeNonEmpty,
                    tuple_schema: SchemaConstraint::Covers(w_fs()),
                    group: Emptiness::MustBeNonEmpty,
                    ordered_members: Some(true),
                    child_classes: ChildClasses::OneOf(vec![xmldoc]),
                    ..Constraints::default()
                },
            )
            .expect("builtin");

        // --- streams (Section 3.4) ---
        let datstream = registry
            .define(
                DATSTREAM,
                Constraints {
                    tuple: Emptiness::MustBeEmpty,
                    content: Emptiness::MustBeEmpty,
                    group: Emptiness::MustBeNonEmpty,
                    group_finiteness: Finiteness::Infinite,
                    ordered_members: Some(true),
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        registry
            .specialize(
                TUPSTREAM,
                datstream,
                Constraints {
                    tuple: Emptiness::MustBeEmpty,
                    content: Emptiness::MustBeEmpty,
                    group: Emptiness::MustBeNonEmpty,
                    group_finiteness: Finiteness::Infinite,
                    ordered_members: Some(true),
                    child_classes: ChildClasses::OneOf(vec![tuple]),
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        registry
            .specialize(
                RSSATOM,
                datstream,
                Constraints {
                    tuple: Emptiness::MustBeEmpty,
                    content: Emptiness::MustBeEmpty,
                    group: Emptiness::MustBeNonEmpty,
                    group_finiteness: Finiteness::Infinite,
                    ordered_members: Some(true),
                    child_classes: ChildClasses::OneOf(vec![xmldoc]),
                    ..Constraints::default()
                },
            )
            .expect("builtin");

        // --- ActiveXML (Section 4.3.1) ---
        let sc = registry
            .define(
                SERVICE_CALL,
                Constraints {
                    content: Emptiness::MustBeNonEmpty,
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        let scresult = registry
            .define(SERVICE_RESULT, Constraints::default())
            .expect("builtin");
        registry
            .specialize(
                AXML,
                xmlelem,
                Constraints {
                    name: Emptiness::MustBeNonEmpty,
                    ordered_members: Some(true),
                    child_classes: ChildClasses::OneOf(vec![sc, scresult]),
                    ..Constraints::default()
                },
            )
            .expect("builtin");

        // --- LaTeX document structure (Sections 2.3, 5.1, Table 4) ---
        let text = registry
            .define(
                TEXT,
                Constraints {
                    content: Emptiness::MustBeNonEmpty,
                    content_finiteness: Finiteness::Finite,
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        let _ = text;
        registry
            .specialize(LATEX_FILE, file, Constraints::default())
            .expect("builtin");
        registry
            .define(LATEX_DOCUMENT, Constraints::default())
            .expect("builtin");
        registry
            .define(
                LATEX_SECTION,
                Constraints {
                    name: Emptiness::MustBeNonEmpty,
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        registry
            .define(
                ENVIRONMENT,
                Constraints {
                    name: Emptiness::MustBeNonEmpty,
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        registry
            .define(
                FIGURE,
                Constraints {
                    name: Emptiness::MustBeNonEmpty,
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        registry
            .define(
                TEXREF,
                // A `\ref` view is named after the referenced label and its
                // group points at the referenced view (Figure 1(b): the
                // 'ref' node connects to 'Preliminaries'), which is what
                // makes LaTeX content graph-structured rather than a tree.
                Constraints {
                    name: Emptiness::MustBeNonEmpty,
                    ..Constraints::default()
                },
            )
            .expect("builtin");

        // --- email (Section 4.4.1, Q8) ---
        registry
            .define(
                EMAILMESSAGE,
                Constraints {
                    tuple: Emptiness::MustBeNonEmpty,
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        registry
            .define(
                MAILFOLDER,
                Constraints {
                    name: Emptiness::MustBeNonEmpty,
                    ordered_members: Some(false),
                    ..Constraints::default()
                },
            )
            .expect("builtin");
        registry
            .specialize(ATTACHMENT, file, Constraints::default())
            .expect("builtin");
    }
}

#[cfg(test)]
mod tests {
    use super::builtin::names;
    use super::*;

    #[test]
    fn builtins_register_and_resolve() {
        let reg = ClassRegistry::with_builtins();
        for name in [
            names::FILE,
            names::FOLDER,
            names::TUPLE,
            names::RELATION,
            names::RELDB,
            names::XMLTEXT,
            names::XMLELEM,
            names::XMLDOC,
            names::XMLFILE,
            names::DATSTREAM,
            names::TUPSTREAM,
            names::RSSATOM,
            names::AXML,
            names::LATEX_SECTION,
            names::FIGURE,
            names::TEXREF,
            names::EMAILMESSAGE,
        ] {
            let id = reg.lookup(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(reg.name(id), name);
        }
    }

    #[test]
    fn duplicate_registration_rejected() {
        let reg = ClassRegistry::with_builtins();
        assert!(reg.define("file", Constraints::default()).is_err());
    }

    #[test]
    fn specialization_hierarchy() {
        let reg = ClassRegistry::with_builtins();
        let file = reg.lookup(names::FILE).unwrap();
        let xmlfile = reg.lookup(names::XMLFILE).unwrap();
        let folder = reg.lookup(names::FOLDER).unwrap();
        assert!(reg.is_subclass(xmlfile, file), "xmlfile ⊑ file");
        assert!(reg.is_subclass(file, file));
        assert!(!reg.is_subclass(file, xmlfile));
        assert!(!reg.is_subclass(xmlfile, folder));
        assert_eq!(reg.ancestry(xmlfile), vec![xmlfile, file]);
    }

    #[test]
    fn tupstream_specializes_datstream() {
        let reg = ClassRegistry::with_builtins();
        let dat = reg.lookup(names::DATSTREAM).unwrap();
        let tup = reg.lookup(names::TUPSTREAM).unwrap();
        let rss = reg.lookup(names::RSSATOM).unwrap();
        assert!(reg.is_subclass(tup, dat));
        assert!(reg.is_subclass(rss, dat));
    }

    #[test]
    fn unknown_class_lookup() {
        let reg = ClassRegistry::with_builtins();
        assert!(reg.lookup("nope").is_none());
        assert!(matches!(
            reg.require("nope"),
            Err(IdmError::UnknownClass(_))
        ));
    }

    #[test]
    fn user_defined_specialization() {
        let reg = ClassRegistry::with_builtins();
        let file = reg.lookup(names::FILE).unwrap();
        let custom = reg
            .specialize("pptfile", file, Constraints::default())
            .unwrap();
        assert!(reg.is_subclass(custom, file));
        assert_eq!(reg.name(custom), "pptfile");
    }
}
