//! # idm-core — the iMeMex Data Model (iDM)
//!
//! A from-scratch Rust implementation of the iDM data model from
//! *"iDM: A Unified and Versatile Data Model for Personal Dataspace
//! Management"* (Dittrich & Vaz Salles, VLDB 2006).
//!
//! iDM represents **all** personal information — files & folders, XML,
//! LaTeX, relational data, email, RSS feeds and infinite data streams —
//! as a single graph of *resource views*. A resource view
//! `V = (η, τ, χ, γ)` has:
//!
//! - a **name** component `η` (a finite string),
//! - a **tuple** component `τ = (W, T)` (a per-tuple schema and one tuple),
//! - a **content** component `χ` (a finite or infinite symbol sequence),
//! - a **group** component `γ = (S, Q)` (an unordered set and an ordered
//!   sequence of other resource views, finite or infinite, `S ∩ Q = ∅`).
//!
//! Views connect into arbitrary directed graphs (cycles welcome), and all
//! components may be computed **lazily**: extensionally (base facts),
//! intensionally (query/service results — including an ActiveXML
//! use-case) or infinitely (streams).
//!
//! ## Quick example
//!
//! ```
//! use idm_core::prelude::*;
//!
//! let store = ViewStore::new();
//! let tau = TupleComponent::of(vec![
//!     ("size", Value::Integer(4096)),
//!     ("creation time", Value::Date(Timestamp::from_ymd(2005, 3, 19).unwrap())),
//!     ("last modified time", Value::Date(Timestamp::from_ymd(2005, 9, 22).unwrap())),
//! ]);
//! let paper = store.build("vldb2006.tex").text("\\section{Introduction} ...").insert();
//! let pim = store.build("PIM").tuple(tau).children(vec![paper]).insert();
//! assert_eq!(store.name(pim).unwrap().as_deref(), Some("PIM"));
//! assert_eq!(idm_core::graph::directly_related(&store, pim).unwrap(), vec![paper]);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod axml;
pub mod class;
pub mod content;
pub mod durability;
pub mod error;
pub mod fault;
pub mod graph;
pub mod group;
pub mod lineage;
pub mod store;
pub mod validate;
pub mod value;
pub mod version;

/// Commonly used types, re-exported.
pub mod prelude {
    pub use crate::class::{builtin, ClassId, ClassRegistry, Constraints};
    pub use crate::content::{Content, ContentProvider, ContentReader, SymbolSource};
    pub use crate::durability::record::ChangeRecord;
    pub use crate::durability::{
        CheckpointStats, DurabilityManager, RecoveryReport, ScrubBudget, ScrubReport, Scrubber,
        SyncPolicy,
    };
    pub use crate::error::{BudgetKind, IdmError, Result, SubstrateFaultKind};
    pub use crate::fault::{
        BreakerState, CancelToken, CircuitBreaker, FaultAction, FaultCounters, FaultInjector,
        FaultPlan, FaultPoint, FaultStats, RetryPolicy, SourceGuard,
    };
    pub use crate::group::{Group, GroupData, GroupProvider, ViewSequenceSource};
    pub use crate::store::{
        ChangeEvent, ChangeKind, GroupSnapshot, InvariantReport, StoreExport, Vid, ViewBuilder,
        ViewRecord, ViewStore,
    };
    pub use crate::validate::{validate, validate_as, ValidationMode};
    pub use crate::value::{Attribute, Domain, Schema, Timestamp, TupleComponent, Value};
}

pub use prelude::*;
