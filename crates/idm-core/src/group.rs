//! The group component `γ = (S, Q)` of a resource view (Def. 1).
//!
//! `S` is a (possibly empty) *set* of resource views — used when the
//! relative order of connections does not matter (e.g. folder children) —
//! and `Q` is a (possibly empty) *ordered sequence* — used when it does
//! (e.g. XML element children). Both may be finite or infinite, and the
//! invariant `S ∩ Q = ∅` (Def. 1 (ii)) is enforced at construction.
//!
//! Group components are the edges of the resource view graph: they may
//! express trees, DAGs and cyclic graphs alike (Section 2.3).

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{IdmError, Result};
use crate::store::{Vid, ViewStore};

/// Materialized, finite group data: the set `S` and sequence `Q`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupData {
    set: Vec<Vid>,
    seq: Vec<Vid>,
}

impl GroupData {
    /// Builds group data, enforcing `S ∩ Q = ∅` and deduplicating `S`
    /// (it is a set). `Q` may contain repeats: a sequence may legitimately
    /// reference the same view twice.
    pub fn new(set: Vec<Vid>, seq: Vec<Vid>) -> Result<Self> {
        let mut seen = HashSet::with_capacity(set.len());
        let mut dedup_set = Vec::with_capacity(set.len());
        for vid in set {
            if seen.insert(vid) {
                dedup_set.push(vid);
            }
        }
        if seq.iter().any(|vid| seen.contains(vid)) {
            // The owner Vid is unknown at this level; the store re-wraps
            // the error with it where available.
            return Err(IdmError::GroupOverlap(Vid::INVALID));
        }
        Ok(GroupData {
            set: dedup_set,
            seq,
        })
    }

    /// Group data with only unordered members.
    pub fn of_set(set: Vec<Vid>) -> Self {
        // A lone set cannot overlap with an empty sequence.
        GroupData::new(set, Vec::new()).expect("set-only group cannot overlap")
    }

    /// Group data with only ordered members.
    pub fn of_seq(seq: Vec<Vid>) -> Self {
        GroupData {
            set: Vec::new(),
            seq,
        }
    }

    /// The unordered members `S`.
    pub fn set(&self) -> &[Vid] {
        &self.set
    }

    /// The ordered members `Q`.
    pub fn seq(&self) -> &[Vid] {
        &self.seq
    }

    /// All directly related views: `S ∪ Q`, set first.
    pub fn members(&self) -> impl Iterator<Item = Vid> + '_ {
        self.set.iter().chain(self.seq.iter()).copied()
    }

    /// Total number of member references.
    pub fn len(&self) -> usize {
        self.set.len() + self.seq.len()
    }

    /// Whether both `S` and `Q` are empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty() && self.seq.is_empty()
    }
}

/// Computes a finite group component on demand (intensional group).
///
/// The provider receives the store so it can *create* the child views it
/// returns — this is how e.g. the contents of a LaTeX file are transformed
/// into an iDM subgraph only when `getGroupComponent()` is first called on
/// the file's view (Section 4.1).
///
/// Providers must not force the group component of `owner` itself
/// (directly or indirectly); doing so would deadlock the per-group latch.
pub trait GroupProvider: Send + Sync {
    /// Produces the group members, inserting child views as needed.
    fn compute(&self, store: &ViewStore, owner: Vid) -> Result<GroupData>;
}

impl<F> GroupProvider for F
where
    F: Fn(&ViewStore, Vid) -> Result<GroupData> + Send + Sync,
{
    fn compute(&self, store: &ViewStore, owner: Vid) -> Result<GroupData> {
        self(store, owner)
    }
}

/// A source of an infinite sequence `Q = ⟨V_1, …⟩_{n→∞}` of resource views
/// (data streams, INBOX message streams, …; Sections 3.4 and 4.4).
pub trait ViewSequenceSource: Send + Sync {
    /// Delivers the next view of the sequence if one is available *now*.
    ///
    /// `Ok(None)` means "no element available yet", not end-of-sequence:
    /// the sequence is infinite. Sources typically mint new views in the
    /// store as data arrives. Elements are consumed: like the paper's
    /// Option 2 email stream, a delivered element cannot be pulled again.
    fn try_next(&self, store: &ViewStore) -> Result<Option<Vid>>;
}

/// Lazily computed group with caching (force-once semantics).
pub struct LazyGroup {
    provider: Arc<dyn GroupProvider>,
    cached: Mutex<Option<Arc<GroupData>>>,
}

impl LazyGroup {
    /// Wraps a provider.
    pub fn new(provider: Arc<dyn GroupProvider>) -> Self {
        LazyGroup {
            provider,
            cached: Mutex::new(None),
        }
    }

    /// Computes (or returns the cached) group data.
    pub fn force(&self, store: &ViewStore, owner: Vid) -> Result<Arc<GroupData>> {
        let mut cached = self.cached.lock();
        if let Some(data) = cached.as_ref() {
            return Ok(Arc::clone(data));
        }
        let data = Arc::new(self.provider.compute(store, owner).map_err(|e| match e {
            IdmError::GroupOverlap(_) => IdmError::GroupOverlap(owner),
            other => other,
        })?);
        *cached = Some(Arc::clone(&data));
        Ok(data)
    }

    /// Whether the group has been materialized yet.
    pub fn is_materialized(&self) -> bool {
        self.cached.lock().is_some()
    }

    /// The cached group data, if already materialized — never forces.
    /// Durability snapshots use this to persist what exists without
    /// triggering intensional work.
    pub fn peek(&self) -> Option<Arc<GroupData>> {
        self.cached.lock().clone()
    }
}

/// The group component handle stored on a view record.
#[derive(Clone, Default)]
pub enum Group {
    /// The empty group `(∅, ⟨⟩)`.
    #[default]
    Empty,
    /// Extensional, finite group data.
    Materialized(Arc<GroupData>),
    /// Intensional group, computed (then cached) on first access.
    Lazy(Arc<LazyGroup>),
    /// Infinite ordered sequence delivered by a source.
    InfiniteSeq(Arc<dyn ViewSequenceSource>),
}

impl Group {
    /// Finite extensional group from set and sequence members.
    pub fn finite(set: Vec<Vid>, seq: Vec<Vid>) -> Result<Self> {
        let data = GroupData::new(set, seq)?;
        Ok(if data.is_empty() {
            Group::Empty
        } else {
            Group::Materialized(Arc::new(data))
        })
    }

    /// Finite extensional group with unordered members only.
    pub fn of_set(set: Vec<Vid>) -> Self {
        let data = GroupData::of_set(set);
        if data.is_empty() {
            Group::Empty
        } else {
            Group::Materialized(Arc::new(data))
        }
    }

    /// Finite extensional group with ordered members only.
    pub fn of_seq(seq: Vec<Vid>) -> Self {
        let data = GroupData::of_seq(seq);
        if data.is_empty() {
            Group::Empty
        } else {
            Group::Materialized(Arc::new(data))
        }
    }

    /// Intensional group computed on demand.
    pub fn lazy(provider: Arc<dyn GroupProvider>) -> Self {
        Group::Lazy(Arc::new(LazyGroup::new(provider)))
    }

    /// Infinite sequence group.
    pub fn infinite(source: Arc<dyn ViewSequenceSource>) -> Self {
        Group::InfiniteSeq(source)
    }

    /// Whether the group is statically empty.
    ///
    /// Lazy groups report non-empty without forcing; infinite groups are
    /// never empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Group::Empty)
    }

    /// Whether the group is finite.
    pub fn is_finite(&self) -> bool {
        !matches!(self, Group::InfiniteSeq(_))
    }

    /// Whether accessing the members requires computation.
    pub fn is_intensional(&self) -> bool {
        matches!(self, Group::Lazy(_))
    }
}

impl fmt::Debug for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Group::Empty => f.write_str("Group::Empty"),
            Group::Materialized(d) => {
                write!(
                    f,
                    "Group::Materialized(|S|={}, |Q|={})",
                    d.set.len(),
                    d.seq.len()
                )
            }
            Group::Lazy(l) => write!(f, "Group::Lazy(materialized: {})", l.is_materialized()),
            Group::InfiniteSeq(_) => f.write_str("Group::InfiniteSeq"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_data_enforces_disjointness() {
        let a = Vid::from_raw(1);
        let b = Vid::from_raw(2);
        assert!(GroupData::new(vec![a], vec![b]).is_ok());
        assert!(GroupData::new(vec![a, b], vec![b]).is_err());
    }

    #[test]
    fn group_data_dedups_set_keeps_seq_repeats() {
        let a = Vid::from_raw(1);
        let b = Vid::from_raw(2);
        let d = GroupData::new(vec![a, a, b], vec![]).unwrap();
        assert_eq!(d.set(), &[a, b]);
        let d = GroupData::new(vec![], vec![a, a]).unwrap();
        assert_eq!(d.seq(), &[a, a]);
    }

    #[test]
    fn empty_groups_collapse() {
        assert!(Group::of_set(vec![]).is_empty());
        assert!(Group::of_seq(vec![]).is_empty());
        assert!(Group::finite(vec![], vec![]).unwrap().is_empty());
        assert!(!Group::of_set(vec![Vid::from_raw(7)]).is_empty());
    }

    #[test]
    fn members_iterates_set_then_seq() {
        let (a, b, c) = (Vid::from_raw(1), Vid::from_raw(2), Vid::from_raw(3));
        let d = GroupData::new(vec![a], vec![b, c]).unwrap();
        assert_eq!(d.members().collect::<Vec<_>>(), vec![a, b, c]);
        assert_eq!(d.len(), 3);
    }
}
