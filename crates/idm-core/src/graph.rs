//! Traversals over the resource view graph.
//!
//! Definition 1 (iii)/(iv): `V_k` is **directly related** to `V_i`
//! (`V_i → V_k`) when `V_k ∈ S ∪ Q` of `γ_i`; `V_k` is **indirectly
//! related** (`V_i →* V_k`) when a chain of direct relations connects
//! them. Because the graph may be cyclic, every traversal here carries a
//! visited set.
//!
//! Traversals force lazy group components as they go — this is exactly the
//! "compute the iDM graph on demand" behaviour of Section 4 — but skip
//! infinite group tails (a BFS cannot exhaust a stream) and dangling
//! references (a dataspace is never globally consistent).

use std::collections::HashSet;

use crate::error::Result;
use crate::store::{Vid, ViewStore};

/// The views directly related to `vid` (`S ∪ Q`, set members first).
pub fn directly_related(store: &ViewStore, vid: Vid) -> Result<Vec<Vid>> {
    Ok(store.group(vid)?.finite_members())
}

/// Breadth-first traversal of all views indirectly related to `root`
/// (excluding `root` itself unless it lies on one of its own cycles).
///
/// `max_nodes` bounds the expansion; traversal stops once that many
/// distinct views have been visited.
pub fn descendants(store: &ViewStore, root: Vid, max_nodes: usize) -> Result<Vec<Vid>> {
    let mut visited: HashSet<Vid> = HashSet::new();
    let mut queue: std::collections::VecDeque<Vid> = [root].into();
    let mut out = Vec::new();
    let mut seen_root = false;
    while let Some(vid) = queue.pop_front() {
        if out.len() >= max_nodes {
            break;
        }
        if !store.contains(vid) {
            continue; // dangling reference
        }
        let members = store.group(vid)?.finite_members();
        for child in members {
            if child == root {
                // root reachable from itself via a cycle: report once.
                if !seen_root {
                    seen_root = true;
                    out.push(root);
                }
                continue;
            }
            if visited.insert(child) {
                out.push(child);
                queue.push_back(child);
            }
        }
    }
    Ok(out)
}

/// Whether `target` is indirectly related to `source` (`source →* target`).
pub fn is_indirectly_related(store: &ViewStore, source: Vid, target: Vid) -> Result<bool> {
    let mut visited: HashSet<Vid> = HashSet::new();
    let mut queue: std::collections::VecDeque<Vid> = [source].into();
    while let Some(vid) = queue.pop_front() {
        if !store.contains(vid) {
            continue;
        }
        for child in store.group(vid)?.finite_members() {
            if child == target {
                return Ok(true);
            }
            if visited.insert(child) {
                queue.push_back(child);
            }
        }
    }
    Ok(false)
}

/// Builds the reverse adjacency (child → parents) over the currently
/// materialized graph, without forcing lazy groups.
///
/// Index structures ("group replica", Section 5.2) maintain this
/// incrementally; this helper is the from-first-principles fallback.
pub fn reverse_adjacency(store: &ViewStore) -> std::collections::HashMap<Vid, Vec<Vid>> {
    let mut rev: std::collections::HashMap<Vid, Vec<Vid>> = std::collections::HashMap::new();
    for vid in store.vids() {
        let Ok(handle) = store.group_handle(vid) else {
            continue;
        };
        // Only materialized groups: this helper must not trigger expansion.
        if let crate::group::Group::Materialized(data) = handle {
            for child in data.members() {
                rev.entry(child).or_default().push(vid);
            }
        }
    }
    rev
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(store: &ViewStore, n: usize) -> Vec<Vid> {
        // v0 → v1 → … → v(n-1)
        let vids: Vec<Vid> = (0..n)
            .map(|i| store.build(format!("n{i}")).insert())
            .collect();
        for i in 0..n - 1 {
            let (a, b) = (vids[i], vids[i + 1]);
            store
                .set_group(a, crate::group::Group::of_set(vec![b]))
                .unwrap();
        }
        vids
    }

    #[test]
    fn descendants_of_chain() {
        let store = ViewStore::new();
        let vids = chain(&store, 5);
        let d = descendants(&store, vids[0], usize::MAX).unwrap();
        assert_eq!(d, vids[1..].to_vec());
    }

    #[test]
    fn descendants_terminate_on_cycles() {
        let store = ViewStore::new();
        let a = store.build("a").insert();
        let b = store.build("b").children(vec![a]).insert();
        store
            .set_group(a, crate::group::Group::of_set(vec![b]))
            .unwrap();
        let d = descendants(&store, a, usize::MAX).unwrap();
        // a → b → a: both reachable, reported once each.
        assert_eq!(d.len(), 2);
        assert!(d.contains(&a) && d.contains(&b));
    }

    #[test]
    fn indirect_relatedness() {
        let store = ViewStore::new();
        let vids = chain(&store, 4);
        assert!(is_indirectly_related(&store, vids[0], vids[3]).unwrap());
        assert!(!is_indirectly_related(&store, vids[3], vids[0]).unwrap());
        // Direct relation is also indirect (one-step chain).
        assert!(is_indirectly_related(&store, vids[0], vids[1]).unwrap());
        // A view is not related to itself absent a cycle.
        assert!(!is_indirectly_related(&store, vids[0], vids[0]).unwrap());
    }

    #[test]
    fn self_relatedness_via_cycle() {
        let store = ViewStore::new();
        let a = store.build("a").insert();
        store
            .set_group(a, crate::group::Group::of_set(vec![a]))
            .unwrap();
        assert!(is_indirectly_related(&store, a, a).unwrap());
    }

    #[test]
    fn max_nodes_bounds_expansion() {
        let store = ViewStore::new();
        let vids = chain(&store, 100);
        let d = descendants(&store, vids[0], 10).unwrap();
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn reverse_adjacency_matches_forward() {
        let store = ViewStore::new();
        let c1 = store.build("c1").insert();
        let c2 = store.build("c2").insert();
        let p1 = store.build("p1").children(vec![c1, c2]).insert();
        let p2 = store.build("p2").sequence(vec![c1]).insert();
        let rev = reverse_adjacency(&store);
        let mut parents = rev.get(&c1).cloned().unwrap();
        parents.sort();
        assert_eq!(parents, vec![p1, p2]);
        assert_eq!(rev.get(&c2).cloned().unwrap(), vec![p1]);
        assert!(!rev.contains_key(&p1));
    }
}
