//! Data lineage across sources and formats (Section 8, issue 2).
//!
//! Lineage keeps the history of the transformations that originated a
//! resource view — e.g. "this `latex_section` view was derived from the
//! content component of that `file` view by the LaTeX converter". With a
//! unified model, lineage spans data sources and formats uniformly.

use std::collections::{HashMap, HashSet, VecDeque};

use parking_lot::RwLock;

use crate::store::Vid;

/// One derivation edge: `derived` was produced from `source` by `transform`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Derivation {
    /// The derived view.
    pub derived: Vid,
    /// The view it was derived from.
    pub source: Vid,
    /// The transformation, e.g. `"latex2idm"`, `"xml2idm"`, `"copy"`.
    pub transform: String,
}

/// A lineage graph over resource views. Thread-safe and append-only.
#[derive(Default)]
pub struct LineageGraph {
    inner: RwLock<LineageInner>,
}

impl std::fmt::Debug for LineageGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineageGraph")
            .field("edges", &self.len())
            .finish()
    }
}

#[derive(Default)]
struct LineageInner {
    edges: Vec<Derivation>,
    by_derived: HashMap<Vid, Vec<usize>>,
    by_source: HashMap<Vid, Vec<usize>>,
}

impl LineageGraph {
    /// An empty lineage graph.
    pub fn new() -> Self {
        LineageGraph::default()
    }

    /// Records that `derived` was produced from `source` by `transform`.
    pub fn record(&self, derived: Vid, source: Vid, transform: impl Into<String>) {
        let mut inner = self.inner.write();
        let idx = inner.edges.len();
        inner.edges.push(Derivation {
            derived,
            source,
            transform: transform.into(),
        });
        inner.by_derived.entry(derived).or_default().push(idx);
        inner.by_source.entry(source).or_default().push(idx);
    }

    /// The direct provenance of a view.
    pub fn provenance(&self, derived: Vid) -> Vec<Derivation> {
        let inner = self.inner.read();
        inner
            .by_derived
            .get(&derived)
            .map(|idxs| idxs.iter().map(|&i| inner.edges[i].clone()).collect())
            .unwrap_or_default()
    }

    /// The direct derivations of a view.
    pub fn derivations(&self, source: Vid) -> Vec<Derivation> {
        let inner = self.inner.read();
        inner
            .by_source
            .get(&source)
            .map(|idxs| idxs.iter().map(|&i| inner.edges[i].clone()).collect())
            .unwrap_or_default()
    }

    /// All transitive sources of a view (BFS over provenance edges),
    /// nearest first. Cycle-safe.
    pub fn ancestors(&self, derived: Vid) -> Vec<Vid> {
        self.walk(derived, true)
    }

    /// All transitive derivations of a view, nearest first. Cycle-safe.
    pub fn descendants(&self, source: Vid) -> Vec<Vid> {
        self.walk(source, false)
    }

    fn walk(&self, start: Vid, up: bool) -> Vec<Vid> {
        let inner = self.inner.read();
        let mut visited: HashSet<Vid> = HashSet::new();
        let mut queue: VecDeque<Vid> = [start].into();
        let mut out = Vec::new();
        while let Some(vid) = queue.pop_front() {
            let idxs = if up {
                inner.by_derived.get(&vid)
            } else {
                inner.by_source.get(&vid)
            };
            let Some(idxs) = idxs else { continue };
            for &i in idxs {
                let next = if up {
                    inner.edges[i].source
                } else {
                    inner.edges[i].derived
                };
                if next != start && visited.insert(next) {
                    out.push(next);
                    queue.push_back(next);
                }
            }
        }
        out
    }

    /// Every recorded edge in insertion order — the durable image of
    /// this graph, written into checkpoint snapshots.
    pub fn export_edges(&self) -> Vec<Derivation> {
        self.inner.read().edges.clone()
    }

    /// Re-records a previously exported edge list (recovery).
    pub fn import_edges(&self, edges: Vec<Derivation>) {
        for edge in edges {
            self.record(edge.derived, edge.source, edge.transform);
        }
    }

    /// Total number of derivation edges.
    pub fn len(&self) -> usize {
        self.inner.read().edges.len()
    }

    /// Whether no derivations were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u64) -> Vid {
        Vid::from_raw(i)
    }

    #[test]
    fn copy_then_convert_chain() {
        // file → copied file → extracted section (the Section 8 example
        // plus a converter step).
        let lineage = LineageGraph::new();
        lineage.record(v(2), v(1), "copy");
        lineage.record(v(3), v(2), "latex2idm");

        assert_eq!(lineage.provenance(v(3))[0].source, v(1).max(v(2)));
        assert_eq!(lineage.ancestors(v(3)), vec![v(2), v(1)]);
        assert_eq!(lineage.descendants(v(1)), vec![v(2), v(3)]);
        assert!(lineage.provenance(v(1)).is_empty());
    }

    #[test]
    fn multiple_sources_merge() {
        // A view derived from two sources (e.g. a join result).
        let lineage = LineageGraph::new();
        lineage.record(v(10), v(1), "join");
        lineage.record(v(10), v(2), "join");
        let mut anc = lineage.ancestors(v(10));
        anc.sort();
        assert_eq!(anc, vec![v(1), v(2)]);
    }

    #[test]
    fn cyclic_lineage_terminates() {
        // Degenerate but possible after repeated copies back and forth.
        let lineage = LineageGraph::new();
        lineage.record(v(1), v(2), "copy");
        lineage.record(v(2), v(1), "copy");
        assert_eq!(lineage.ancestors(v(1)), vec![v(2)]);
        assert_eq!(lineage.descendants(v(1)), vec![v(2)]);
    }
}
