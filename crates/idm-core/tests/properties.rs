//! Property-based tests of the core model invariants.

use idm_core::prelude::*;
use proptest::prelude::*;

// ---- Timestamp / civil-date properties --------------------------------

proptest! {
    /// Civil-date conversion roundtrips for any timestamp within a wide
    /// range (years ≈ 1500–2500).
    #[test]
    fn timestamp_roundtrip(secs in -15_000_000_000i64..15_000_000_000i64) {
        let t = Timestamp(secs);
        let (y, m, d) = t.to_ymd();
        let (h, mi, s) = t.to_hms();
        let rebuilt = Timestamp::from_ymd_hms(y, m, d, h, mi, s).expect("valid");
        prop_assert_eq!(rebuilt, t);
    }

    /// `to_ymd` always yields a valid calendar date.
    #[test]
    fn to_ymd_is_valid(secs in -15_000_000_000i64..15_000_000_000i64) {
        let (y, m, d) = Timestamp(secs).to_ymd();
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
        prop_assert!(Timestamp::from_ymd(y, m, d).is_ok());
    }

    /// Date ordering agrees with raw-second ordering.
    #[test]
    fn date_order_is_second_order(a in -1_000_000_000i64..1_000_000_000i64,
                                  b in -1_000_000_000i64..1_000_000_000i64) {
        let (ta, tb) = (Timestamp(a), Timestamp(b));
        prop_assert_eq!(ta.cmp(&tb), a.cmp(&b));
    }

    /// `plus_days` is additive.
    #[test]
    fn plus_days_additive(secs in -1_000_000_000i64..1_000_000_000i64,
                          d1 in -500i64..500, d2 in -500i64..500) {
        let t = Timestamp(secs);
        prop_assert_eq!(t.plus_days(d1).plus_days(d2), t.plus_days(d1 + d2));
    }
}

// ---- Value comparison properties ---------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Integer),
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        any::<bool>().prop_map(Value::Boolean),
        "[a-z]{0,12}".prop_map(Value::Text),
        (-10_000_000_000i64..10_000_000_000i64).prop_map(|s| Value::Date(Timestamp(s))),
    ]
}

proptest! {
    /// compare() is antisymmetric where defined.
    #[test]
    fn value_compare_antisymmetric(a in arb_value(), b in arb_value()) {
        if let (Some(ab), Some(ba)) = (a.compare(&b), b.compare(&a)) {
            prop_assert_eq!(ab, ba.reverse());
        }
    }

    /// compare() with self is Equal (except NaN, excluded by generation).
    #[test]
    fn value_compare_reflexive(a in arb_value()) {
        prop_assert_eq!(a.compare(&a), Some(std::cmp::Ordering::Equal));
    }

    /// Cross-domain comparisons are only defined for numeric pairs.
    #[test]
    fn value_compare_domain_rules(a in arb_value(), b in arb_value()) {
        let numeric = |v: &Value| matches!(v, Value::Integer(_) | Value::Float(_));
        let defined = a.compare(&b).is_some();
        if a.domain() == b.domain() {
            prop_assert!(defined);
        } else if !(numeric(&a) && numeric(&b)) {
            prop_assert!(!defined);
        }
    }
}

// ---- Tuple component properties -----------------------------------------

proptest! {
    /// A tuple built from (name, value) pairs retrieves every value by
    /// its first occurrence's name.
    #[test]
    fn tuple_of_get_consistent(pairs in proptest::collection::vec(("[a-f]{1,4}", arb_value()), 0..8)) {
        let tuple = TupleComponent::of(
            pairs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect(),
        );
        prop_assert_eq!(tuple.schema().arity(), pairs.len());
        for (name, _) in &pairs {
            let first = pairs.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone()).unwrap();
            prop_assert_eq!(tuple.get(name), Some(&first));
        }
    }

    /// Schema validation rejects any arity mismatch.
    #[test]
    fn tuple_arity_enforced(n_schema in 0usize..6, n_values in 0usize..6) {
        let schema = Schema::of(&vec![("a", Domain::Integer); n_schema]
            .iter().enumerate().map(|(i, _)| {
                // names must be distinct strings: leak tiny names
                (Box::leak(format!("a{i}").into_boxed_str()) as &str, Domain::Integer)
            }).collect::<Vec<_>>());
        let values = vec![Value::Integer(1); n_values];
        let result = TupleComponent::new(schema, values);
        prop_assert_eq!(result.is_ok(), n_schema == n_values);
    }
}

// ---- Group component invariants -----------------------------------------

proptest! {
    /// GroupData always maintains S ∩ Q = ∅ and a duplicate-free S.
    #[test]
    fn group_invariants(set in proptest::collection::vec(0u64..30, 0..15),
                        seq in proptest::collection::vec(0u64..30, 0..15)) {
        let set: Vec<Vid> = set.into_iter().map(Vid::from_raw).collect();
        let seq: Vec<Vid> = seq.into_iter().map(Vid::from_raw).collect();
        match GroupData::new(set.clone(), seq.clone()) {
            Ok(data) => {
                // S has no duplicates.
                let mut s: Vec<Vid> = data.set().to_vec();
                s.sort();
                s.dedup();
                prop_assert_eq!(s.len(), data.set().len());
                // S and Q are disjoint.
                prop_assert!(data.set().iter().all(|v| !data.seq().contains(v)));
                // Q is preserved exactly.
                prop_assert_eq!(data.seq(), &seq[..]);
            }
            Err(_) => {
                // Construction only fails when some set member appears
                // in the sequence.
                prop_assert!(set.iter().any(|v| seq.contains(v)));
            }
        }
    }
}

// ---- Store / graph properties -------------------------------------------

proptest! {
    /// Random graphs: descendants() terminates, reports no duplicates,
    /// and agrees with is_indirectly_related on every pair.
    #[test]
    fn traversal_consistency(edges in proptest::collection::vec((0u64..12, 0u64..12), 0..40)) {
        let store = ViewStore::new();
        let vids: Vec<Vid> = (0..12).map(|i| store.build(format!("n{i}")).insert()).collect();
        // Group edges (deduplicated per parent via the set S).
        let mut adjacency: std::collections::HashMap<Vid, Vec<Vid>> = Default::default();
        for (a, b) in edges {
            adjacency.entry(vids[a as usize]).or_default().push(vids[b as usize]);
        }
        for (parent, children) in &adjacency {
            store.set_group(*parent, Group::of_set(children.clone())).unwrap();
        }

        let root = vids[0];
        let reached = idm_core::graph::descendants(&store, root, usize::MAX).unwrap();
        // No duplicates.
        let mut sorted = reached.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), reached.len());
        // Agreement with the pairwise reachability check.
        for &v in &vids {
            let in_bfs = reached.contains(&v);
            let reachable = idm_core::graph::is_indirectly_related(&store, root, v).unwrap();
            prop_assert_eq!(in_bfs, reachable, "vid {} from root", v);
        }
    }

    /// Insert/remove keeps len() consistent and ids stable.
    #[test]
    fn store_len_consistency(ops in proptest::collection::vec(any::<bool>(), 1..60)) {
        let store = ViewStore::new();
        let mut live: Vec<Vid> = Vec::new();
        let mut expected = 0usize;
        for (i, insert) in ops.into_iter().enumerate() {
            if insert || live.is_empty() {
                live.push(store.build(format!("v{i}")).insert());
                expected += 1;
            } else {
                let vid = live.swap_remove(i % live.len());
                store.remove(vid).unwrap();
                expected -= 1;
            }
            prop_assert_eq!(store.len(), expected);
        }
        for vid in live {
            prop_assert!(store.contains(vid));
        }
    }
}
