//! Deterministic crash-recovery matrix for the durability layer.
//!
//! A seeded workload of 200+ mutations runs against a durable store;
//! the resulting WAL is then truncated at **every** record boundary and
//! at pseudo-random mid-record offsets, and each truncation is
//! recovered and compared — byte-for-byte via the serialized view
//! records — against a reference store that applied exactly the
//! surviving mutation prefix. Recovery must be prefix-consistent:
//! never a torn mutation, never a duplicate vid, never `S ∩ Q ≠ ∅`.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use idm_core::durability::record::view_bytes;
use idm_core::durability::wal::read_segment;
use idm_core::durability::{DurabilityManager, SyncPolicy};
use idm_core::lineage::LineageGraph;
use idm_core::prelude::*;

// ---- deterministic PRNG ---------------------------------------------------

struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

// ---- seeded workload ------------------------------------------------------

/// One mutation, pre-validated so that applying it to a store holding
/// the preceding prefix always succeeds (and therefore logs exactly one
/// WAL record).
#[derive(Debug, Clone)]
enum Op {
    Insert {
        name: String,
        text: Option<String>,
        size: Option<i64>,
        children: Vec<u64>,
        class: Option<&'static str>,
    },
    SetName(u64, Option<String>),
    SetTuple(u64, Option<i64>),
    SetContent(u64, String),
    SetGroup(u64, Vec<u64>, Vec<u64>),
    SetClass(u64, Option<&'static str>),
    AddMember(u64, u64, bool),
    Remove(u64),
}

/// Generates `n` ops from `seed`, tracking a lightweight model (live
/// vids and per-vid group membership) so every op is valid against any
/// store that applied all preceding ops.
fn workload(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = SplitMix(seed);
    let mut ops = Vec::with_capacity(n);
    let mut live: Vec<u64> = Vec::new();
    // Parallel to `live`: members of each view's set and seq.
    let mut groups: Vec<(u64, HashSet<u64>, HashSet<u64>)> = Vec::new();
    let mut next_vid = 0u64;
    let classes = [None, Some("file"), Some("folder"), Some("emailmessage")];

    for i in 0..n {
        let kind = if live.len() < 3 { 0 } else { rng.below(10) };
        let pick = |rng: &mut SplitMix, live: &[u64]| live[rng.below(live.len() as u64) as usize];
        match kind {
            0..=2 => {
                // Insert, sometimes with children drawn from live views.
                let mut children = Vec::new();
                if !live.is_empty() && rng.below(2) == 0 {
                    let count = 1 + rng.below(3.min(live.len() as u64));
                    for _ in 0..count {
                        children.push(pick(&mut rng, &live));
                    }
                    children.sort_unstable();
                    children.dedup();
                }
                ops.push(Op::Insert {
                    name: format!("view-{i}.txt"),
                    text: (rng.below(3) != 0).then(|| format!("contents of op {i}: dataspace")),
                    size: (rng.below(2) == 0).then(|| rng.below(100_000) as i64),
                    children: children.clone(),
                    class: classes[rng.below(4) as usize],
                });
                live.push(next_vid);
                groups.push((next_vid, children.into_iter().collect(), HashSet::new()));
                next_vid += 1;
            }
            3 => {
                let vid = pick(&mut rng, &live);
                let name = (rng.below(4) != 0).then(|| format!("renamed-{i}"));
                ops.push(Op::SetName(vid, name));
            }
            4 => {
                let vid = pick(&mut rng, &live);
                ops.push(Op::SetTuple(vid, (rng.below(3) != 0).then_some(i as i64)));
            }
            5 => {
                let vid = pick(&mut rng, &live);
                ops.push(Op::SetContent(vid, format!("rewritten at op {i}")));
            }
            6 => {
                let vid = pick(&mut rng, &live);
                let mut set = Vec::new();
                let mut seq = Vec::new();
                for _ in 0..rng.below(4) {
                    set.push(pick(&mut rng, &live));
                }
                set.sort_unstable();
                set.dedup();
                for _ in 0..rng.below(3) {
                    let m = pick(&mut rng, &live);
                    if !set.contains(&m) {
                        seq.push(m);
                    }
                }
                let entry = groups.iter_mut().find(|(v, _, _)| *v == vid).unwrap();
                entry.1 = set.iter().copied().collect();
                entry.2 = seq.iter().copied().collect();
                ops.push(Op::SetGroup(vid, set, seq));
            }
            7 => {
                let vid = pick(&mut rng, &live);
                ops.push(Op::SetClass(vid, classes[rng.below(4) as usize]));
            }
            8 => {
                let vid = pick(&mut rng, &live);
                let member = pick(&mut rng, &live);
                let ordered = rng.below(2) == 0;
                let entry = groups.iter().find(|(v, _, _)| *v == vid).unwrap();
                // Keep S ∩ Q = ∅: skip members already on the other side.
                if (ordered && entry.1.contains(&member)) || (!ordered && entry.2.contains(&member))
                {
                    ops.push(Op::SetName(vid, Some(format!("fallback-{i}"))));
                } else {
                    let entry = groups.iter_mut().find(|(v, _, _)| *v == vid).unwrap();
                    if ordered {
                        entry.2.insert(member);
                    } else {
                        entry.1.insert(member);
                    }
                    ops.push(Op::AddMember(vid, member, ordered));
                }
            }
            _ => {
                let idx = rng.below(live.len() as u64) as usize;
                let vid = live.swap_remove(idx);
                groups.retain(|(v, _, _)| *v != vid);
                ops.push(Op::Remove(vid));
            }
        }
    }
    ops
}

fn apply(store: &ViewStore, op: &Op) {
    match op {
        Op::Insert {
            name,
            text,
            size,
            children,
            class,
        } => {
            let mut builder = store.build(name.clone());
            if let Some(text) = text {
                builder = builder.text(text.clone());
            }
            if let Some(size) = size {
                builder = builder.tuple(TupleComponent::of(vec![("size", Value::Integer(*size))]));
            }
            if !children.is_empty() {
                builder = builder.children(children.iter().map(|&v| Vid::from_raw(v)).collect());
            }
            if let Some(class) = class {
                builder = builder.class_named(class);
            }
            builder.insert();
        }
        Op::SetName(vid, name) => store.set_name(Vid::from_raw(*vid), name.clone()).unwrap(),
        Op::SetTuple(vid, value) => store
            .set_tuple(
                Vid::from_raw(*vid),
                value.map(|v| TupleComponent::of(vec![("size", Value::Integer(v))])),
            )
            .unwrap(),
        Op::SetContent(vid, text) => store
            .set_content(Vid::from_raw(*vid), Content::text(text.clone()))
            .unwrap(),
        Op::SetGroup(vid, set, seq) => store
            .set_group(
                Vid::from_raw(*vid),
                Group::finite(
                    set.iter().map(|&v| Vid::from_raw(v)).collect(),
                    seq.iter().map(|&v| Vid::from_raw(v)).collect(),
                )
                .unwrap(),
            )
            .unwrap(),
        Op::SetClass(vid, class) => store
            .set_class(
                Vid::from_raw(*vid),
                class.and_then(|name| store.classes().lookup(name)),
            )
            .unwrap(),
        Op::AddMember(vid, member, ordered) => store
            .add_group_member(Vid::from_raw(*vid), Vid::from_raw(*member), *ordered)
            .unwrap(),
        Op::Remove(vid) => {
            store.remove(Vid::from_raw(*vid)).unwrap();
        }
    }
}

/// A reference store holding exactly the first `k` ops, never durable.
fn reference(ops: &[Op], k: usize) -> ViewStore {
    let store = ViewStore::new();
    for op in &ops[..k] {
        apply(&store, op);
    }
    store
}

/// Asserts `recovered` is byte-identical to `expected`: same live vids,
/// same serialized view records, same version counters — and that the
/// recovered store satisfies the model invariants.
fn assert_same_state(recovered: &ViewStore, expected: &ViewStore, context: &str) {
    let got = recovered.vids();
    let want = expected.vids();
    assert_eq!(got, want, "{context}: live vid sets differ");
    let dup: HashSet<Vid> = got.iter().copied().collect();
    assert_eq!(dup.len(), got.len(), "{context}: duplicate vids");
    for vid in want {
        let got_bytes = view_bytes(&recovered.record(vid).unwrap(), recovered.classes());
        let want_bytes = view_bytes(&expected.record(vid).unwrap(), expected.classes());
        assert_eq!(got_bytes, want_bytes, "{context}: {vid} differs");
        assert_eq!(
            recovered.version(vid).unwrap(),
            expected.version(vid).unwrap(),
            "{context}: {vid} version differs"
        );
    }
    let report = recovered.verify_invariants();
    assert!(report.is_ok(), "{context}: invariants violated: {report:?}");
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("idm-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the workload against a fresh durable dataspace, returning the
/// dataspace dir (snap-1 + wal-1, never checkpointed so every op is one
/// WAL record).
fn run_durable(dir: &Path, ops: &[Op]) {
    let store = Arc::new(ViewStore::new());
    let lineage = LineageGraph::new();
    let (_mgr, _) =
        DurabilityManager::attach(dir, &store, &lineage, SyncPolicy::WriteBack).expect("attach");
    for op in ops {
        apply(&store, op);
    }
}

/// Clones `snap-1` and a truncated `wal-1` into a fresh directory.
fn truncated_copy(src: &Path, name: &str, wal_bytes: &[u8]) -> PathBuf {
    let dst = tmp(name);
    std::fs::create_dir_all(&dst).unwrap();
    std::fs::copy(src.join("snap-1.idmsnap"), dst.join("snap-1.idmsnap")).unwrap();
    std::fs::write(dst.join("wal-1.idmlog"), wal_bytes).unwrap();
    dst
}

const SEED: u64 = 0x0001_DA7A_5EED;
const OPS: usize = 220;

#[test]
fn truncation_at_every_record_boundary_recovers_the_exact_prefix() {
    let ops = workload(SEED, OPS);
    let dir = tmp("boundaries");
    run_durable(&dir, &ops);

    let wal = std::fs::read(dir.join("wal-1.idmlog")).unwrap();
    let segment = read_segment(&dir.join("wal-1.idmlog")).unwrap();
    assert_eq!(segment.records.len(), OPS, "every op logged one record");
    assert_eq!(segment.torn_bytes(), 0);

    // Boundary k = state after the first k mutations; boundary 0 is the
    // bare magic (no records).
    let mut boundaries = vec![8u64];
    boundaries.extend(&segment.boundaries);
    for (k, &offset) in boundaries.iter().enumerate() {
        let case = truncated_copy(&dir, &format!("b{k}"), &wal[..offset as usize]);
        let (recovered, _, _, report) =
            DurabilityManager::open(&case, SyncPolicy::WriteBack).expect("recovery");
        assert_eq!(report.records_replayed, k as u64, "boundary {k}");
        assert_eq!(report.bytes_truncated, 0, "boundary {k}: clean cut");
        assert_same_state(&recovered, &reference(&ops, k), &format!("boundary {k}"));
        std::fs::remove_dir_all(&case).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_mid_record_recovers_the_longest_valid_prefix() {
    let ops = workload(SEED, OPS);
    let dir = tmp("midrecord");
    run_durable(&dir, &ops);

    let wal = std::fs::read(dir.join("wal-1.idmlog")).unwrap();
    let segment = read_segment(&dir.join("wal-1.idmlog")).unwrap();
    let mut boundaries = vec![8u64];
    boundaries.extend(&segment.boundaries);

    let mut rng = SplitMix(SEED ^ 0xFEED);
    for trial in 0..48 {
        // A cut strictly inside some record's frame.
        let cut = 8 + rng.below(wal.len() as u64 - 8);
        let prefix = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        if boundaries[prefix] == cut {
            continue; // exact boundary, covered by the other test
        }
        let case = truncated_copy(&dir, &format!("m{trial}"), &wal[..cut as usize]);
        let (recovered, _, _, report) =
            DurabilityManager::open(&case, SyncPolicy::WriteBack).expect("recovery");
        assert_eq!(
            report.records_replayed, prefix as u64,
            "cut at {cut}: longest valid prefix"
        );
        assert!(report.bytes_truncated > 0, "cut at {cut} left a torn tail");
        assert_same_state(&recovered, &reference(&ops, prefix), &format!("cut {cut}"));
        std::fs::remove_dir_all(&case).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn single_byte_corruption_recovers_the_records_before_it() {
    let ops = workload(SEED, OPS);
    let dir = tmp("corrupt");
    run_durable(&dir, &ops);

    let wal = std::fs::read(dir.join("wal-1.idmlog")).unwrap();
    let segment = read_segment(&dir.join("wal-1.idmlog")).unwrap();
    let mut boundaries = vec![8u64];
    boundaries.extend(&segment.boundaries);

    let mut rng = SplitMix(SEED ^ 0xC0FFEE);
    for trial in 0..32 {
        let pos = 8 + rng.below(wal.len() as u64 - 8);
        let flip = 1 + (rng.below(255) as u8);
        let mut corrupt = wal.clone();
        corrupt[pos as usize] ^= flip;
        // The record whose frame contains `pos` must die; everything
        // before it must survive. (A corrupt length field may also eat
        // the tail, but never resurrect a torn record.)
        let intact = boundaries.iter().filter(|&&b| b <= pos).count() - 1;
        let case = truncated_copy(&dir, &format!("c{trial}"), &corrupt);
        let (recovered, _, _, report) =
            DurabilityManager::open(&case, SyncPolicy::WriteBack).expect("recovery");
        assert!(
            report.records_replayed <= OPS as u64,
            "flip at {pos}: impossible record count"
        );
        assert_eq!(
            report.records_replayed, intact as u64,
            "flip at {pos}: prefix before the corrupt frame"
        );
        assert_same_state(&recovered, &reference(&ops, intact), &format!("flip {pos}"));
        std::fs::remove_dir_all(&case).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_then_reopen_replays_zero_records() {
    let ops = workload(SEED, OPS);
    let dir = tmp("checkpointed");
    let store = Arc::new(ViewStore::new());
    let lineage = LineageGraph::new();
    let (mut mgr, _) =
        DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
    for op in &ops {
        apply(&store, op);
    }
    let stats = mgr.checkpoint(&store, &lineage).unwrap();
    assert_eq!(stats.lsn, OPS as u64);
    drop(store);
    drop(mgr);

    let (recovered, _, _, report) =
        DurabilityManager::open(&dir, SyncPolicy::WriteBack).expect("recovery");
    assert_eq!(report.records_replayed, 0, "checkpoint folded the log");
    assert_eq!(report.snapshot_seq, Some(2));
    assert_same_state(&recovered, &reference(&ops, OPS), "checkpointed");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mutations_after_recovery_survive_the_next_crash() {
    // Recover from a torn log, keep mutating, crash again, recover: the
    // second recovery must see both the original prefix and the new ops.
    let ops = workload(SEED, 80);
    let dir = tmp("relog");
    run_durable(&dir, &ops);
    let wal = std::fs::read(dir.join("wal-1.idmlog")).unwrap();
    std::fs::write(dir.join("wal-1.idmlog"), &wal[..wal.len() - 5]).unwrap();

    let (recovered, _, _, report) =
        DurabilityManager::open(&dir, SyncPolicy::WriteBack).expect("first recovery");
    let prefix = report.records_replayed as usize;
    assert_eq!(prefix, 79, "one torn record discarded");
    let extra = Vid::from_raw(
        recovered
            .build("post-crash")
            .text("still here")
            .insert()
            .as_u64(),
    );
    drop(recovered);

    let (again, _, _, report) =
        DurabilityManager::open(&dir, SyncPolicy::WriteBack).expect("second recovery");
    assert_eq!(report.records_replayed, 80);
    let expected = reference(&ops, prefix);
    let v = expected.build("post-crash").text("still here").insert();
    assert_eq!(v, extra, "vid allocation is deterministic across recovery");
    assert_same_state(&again, &expected, "after re-logging");
    std::fs::remove_dir_all(&dir).ok();
}

// ---- group commit & coalesced batches -------------------------------------

#[test]
fn bulk_window_log_is_byte_identical_and_saves_fsyncs() {
    let ops = workload(SEED, OPS);
    let plain_dir = tmp("gc-plain");
    let bulk_dir = tmp("gc-bulk");

    // Record-at-a-time under Fsync: one sync per append.
    let store = Arc::new(ViewStore::new());
    let lineage = LineageGraph::new();
    let (mgr, _) =
        DurabilityManager::attach(&plain_dir, &store, &lineage, SyncPolicy::Fsync).unwrap();
    for op in &ops {
        apply(&store, op);
    }
    let plain = mgr.wal_stats();
    drop(store);
    drop(mgr);

    // The same appends inside a bulk WAL window: syncs deferred to
    // batch boundaries plus one covering sync at the end.
    let store = Arc::new(ViewStore::new());
    let lineage = LineageGraph::new();
    let (mgr, _) =
        DurabilityManager::attach(&bulk_dir, &store, &lineage, SyncPolicy::Fsync).unwrap();
    let scope = store.wal_bulk_scope().expect("wal armed");
    for op in &ops {
        apply(&store, op);
    }
    scope.finish().expect("covering sync");
    let bulk = mgr.wal_stats();
    drop(store);
    drop(mgr);

    assert_eq!(plain.frames, OPS as u64);
    assert_eq!(bulk.frames, OPS as u64);
    assert!(
        plain.syncs >= plain.frames,
        "record-at-a-time issues one fsync per record ({} < {})",
        plain.syncs,
        plain.frames
    );
    assert!(
        bulk.syncs * 10 <= bulk.frames,
        "the bulk window must save >=10x fsyncs: {} syncs for {} frames",
        bulk.syncs,
        bulk.frames
    );
    assert!(bulk.syncs_saved() > 0);

    // Grouping changes when data reaches disk, never what is written:
    // the two logs are byte-identical.
    let a = std::fs::read(plain_dir.join("wal-1.idmlog")).unwrap();
    let b = std::fs::read(bulk_dir.join("wal-1.idmlog")).unwrap();
    assert_eq!(a, b, "bulk window altered the log bytes");

    // Both recover to the full workload state, byte for byte.
    let (ra, _, _, _) = DurabilityManager::open(&plain_dir, SyncPolicy::WriteBack).unwrap();
    let (rb, _, _, _) = DurabilityManager::open(&bulk_dir, SyncPolicy::WriteBack).unwrap();
    assert_same_state(&ra, &reference(&ops, OPS), "plain recovery");
    assert_same_state(&rb, &reference(&ops, OPS), "bulk recovery");
    std::fs::remove_dir_all(&plain_dir).ok();
    std::fs::remove_dir_all(&bulk_dir).ok();
}

#[test]
fn truncation_inside_coalesced_batches_recovers_the_exact_prefix() {
    // Inserts applied through `insert_batch` in chunks: every WAL
    // write is one coalesced multi-frame group. Killing at each frame
    // boundary — including every boundary *inside* a group — must
    // recover the exact insert prefix: frames, not groups, are the
    // recovery unit.
    const N: usize = 96;
    const CHUNK: usize = 16;
    let dir = tmp("gc-batches");
    let store = Arc::new(ViewStore::new());
    let lineage = LineageGraph::new();
    let (mgr, _) = DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::Fsync).unwrap();
    let texts: Vec<(String, String)> = (0..N)
        .map(|i| (format!("batched-{i}.txt"), format!("bulk insert {i}")))
        .collect();
    for chunk in texts.chunks(CHUNK) {
        let records = chunk
            .iter()
            .map(|(name, text)| store.build(name.clone()).text(text.clone()).into_record())
            .collect();
        store.insert_batch(records);
    }
    let stats = mgr.wal_stats();
    assert_eq!(stats.frames, N as u64);
    assert_eq!(
        stats.groups,
        (N / CHUNK) as u64,
        "one write group per chunk"
    );
    assert_eq!(stats.largest_group, CHUNK as u64);
    assert_eq!(stats.syncs, stats.groups, "one covering fsync per group");
    drop(store);
    drop(mgr);

    let wal = std::fs::read(dir.join("wal-1.idmlog")).unwrap();
    let segment = read_segment(&dir.join("wal-1.idmlog")).unwrap();
    assert_eq!(segment.records.len(), N);
    let mut boundaries = vec![8u64];
    boundaries.extend(&segment.boundaries);

    // `insert_batch` promises the store image of one-at-a-time inserts,
    // so the reference applies the same prefix sequentially.
    let expected = |k: usize| {
        let s = ViewStore::new();
        for (name, text) in &texts[..k] {
            s.build(name.clone()).text(text.clone()).insert();
        }
        s
    };
    for (k, &offset) in boundaries.iter().enumerate() {
        let case = truncated_copy(&dir, &format!("gb{k}"), &wal[..offset as usize]);
        let (recovered, _, _, report) =
            DurabilityManager::open(&case, SyncPolicy::WriteBack).expect("recovery");
        assert_eq!(report.records_replayed, k as u64, "boundary {k}");
        assert_same_state(
            &recovered,
            &expected(k),
            &format!("batch-interior boundary {k}"),
        );
        std::fs::remove_dir_all(&case).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---- arbitrary damage is always a clean prefix ----------------------------

/// A position-independent fingerprint of a store's full extensional
/// state (serialized views + versions), for prefix-membership checks.
fn state_fingerprint(store: &ViewStore) -> u64 {
    let mut bytes = Vec::new();
    for vid in store.vids() {
        bytes.extend_from_slice(&vid.as_u64().to_le_bytes());
        bytes.extend_from_slice(&store.version(vid).unwrap().to_le_bytes());
        bytes.extend_from_slice(&view_bytes(&store.record(vid).unwrap(), store.classes()));
    }
    idm_core::durability::codec::fnv1a64(&bytes)
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(40))]

    /// Any combination of truncation and byte flips applied to the WAL
    /// recovers — without panicking — to a state that is byte-identical
    /// to SOME prefix of the original mutation sequence: damage can
    /// shorten history, never invent or reorder it.
    #[test]
    fn arbitrary_wal_damage_recovers_some_exact_prefix(
        seed in 0u64..1_000_000,
        n_ops in 5usize..40,
        cut in 0usize..10_000,
        flip_pos in 0usize..10_000,
        flip in 0u8..=255,
    ) {
        let ops = workload(seed, n_ops);
        let dir = tmp(&format!("prop-{seed}-{n_ops}-{cut}-{flip_pos}-{flip}"));
        run_durable(&dir, &ops);

        // Fingerprint every prefix state once.
        let prefixes: Vec<u64> = (0..=n_ops)
            .map(|k| state_fingerprint(&reference(&ops, k)))
            .collect();

        let mut wal = std::fs::read(dir.join("wal-1.idmlog")).unwrap();
        wal.truncate(8.max(cut % (wal.len() + 1)));
        if !wal.is_empty() && flip != 0 {
            let pos = flip_pos % wal.len();
            wal[pos] ^= flip;
        }
        std::fs::write(dir.join("wal-1.idmlog"), &wal).unwrap();

        let (recovered, _, _, report) =
            DurabilityManager::open(&dir, SyncPolicy::WriteBack).expect("damaged WAL must recover");
        prop_assert!(recovered.verify_invariants().is_ok());
        let got = state_fingerprint(&recovered);
        let k = report.records_replayed as usize;
        prop_assert!(k <= n_ops, "replayed more records than were written");
        prop_assert_eq!(
            got, prefixes[k],
            "recovered state is not the claimed {}-record prefix", k
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

use proptest::{prop_assert, prop_assert_eq};

// ---- fault-injected crashes ----------------------------------------------

#[cfg(feature = "fault-injection")]
mod injected {
    use super::*;
    use idm_core::fault::FaultPlan;

    #[test]
    fn crash_at_append_loses_only_the_unlogged_suffix() {
        let ops = workload(SEED, 120);
        for crash_at in [1u64, 7, 60, 119] {
            let dir = tmp(&format!("crashat{crash_at}"));
            let store = Arc::new(ViewStore::new());
            let lineage = LineageGraph::new();
            let (mgr, _) =
                DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
            mgr.wal()
                .fault_point()
                .install(FaultPlan::crash_at(crash_at));
            for op in &ops {
                apply(&store, op); // appends die silently after the crash point
            }
            assert!(mgr.wal().ensure_healthy().is_err(), "sticky death surfaces");
            drop(store);
            drop(mgr);

            let logged = (crash_at - 1) as usize;
            let (recovered, _, _, report) =
                DurabilityManager::open(&dir, SyncPolicy::WriteBack).expect("recovery");
            assert_eq!(report.records_replayed, logged as u64);
            assert_same_state(
                &recovered,
                &reference(&ops, logged),
                &format!("crash at append {crash_at}"),
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn torn_write_at_append_truncates_to_the_previous_record() {
        let ops = workload(SEED, 100);
        for (torn_at, keep) in [(5u64, 3usize), (50, 11), (99, 1)] {
            let dir = tmp(&format!("torn{torn_at}"));
            let store = Arc::new(ViewStore::new());
            let lineage = LineageGraph::new();
            let (mgr, _) =
                DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
            mgr.wal()
                .fault_point()
                .install(FaultPlan::torn_write(torn_at, keep));
            for op in &ops {
                apply(&store, op);
            }
            drop(store);
            drop(mgr);

            let logged = (torn_at - 1) as usize;
            let (recovered, _, _, report) =
                DurabilityManager::open(&dir, SyncPolicy::WriteBack).expect("recovery");
            assert_eq!(report.records_replayed, logged as u64);
            assert!(report.bytes_truncated > 0, "the torn half-record is cut");
            assert_same_state(
                &recovered,
                &reference(&ops, logged),
                &format!("torn write at {torn_at}"),
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn torn_coalesced_batch_keeps_every_acknowledged_record() {
        // Six 16-record `insert_batch` groups under Fsync; write number
        // 3 (the third group's single coalesced buffer) tears down to
        // `keep` bytes, then the writer dies. Batches 1–2 were
        // acknowledged by their covering fsyncs, so recovery must keep
        // all 32 of their records, plus only *complete* frames of the
        // torn group — an exact prefix, never a torn record.
        const N: usize = 96;
        const CHUNK: usize = 16;
        let texts: Vec<(String, String)> = (0..N)
            .map(|i| (format!("batched-{i}.txt"), format!("bulk insert {i}")))
            .collect();
        let expected = |k: usize| {
            let s = ViewStore::new();
            for (name, text) in &texts[..k] {
                s.build(name.clone()).text(text.clone()).insert();
            }
            s
        };
        for keep in [0usize, 1, 9, 120, 700] {
            let dir = tmp(&format!("gctorn{keep}"));
            let store = Arc::new(ViewStore::new());
            let lineage = LineageGraph::new();
            let (mgr, _) =
                DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::Fsync).unwrap();
            mgr.wal()
                .fault_point()
                .install(FaultPlan::torn_write(3, keep));
            for chunk in texts.chunks(CHUNK) {
                let records = chunk
                    .iter()
                    .map(|(name, text)| store.build(name.clone()).text(text.clone()).into_record())
                    .collect();
                store.insert_batch(records);
            }
            assert!(mgr.wal().ensure_healthy().is_err(), "sticky death surfaces");
            drop(store);
            drop(mgr);

            let (recovered, _, _, report) =
                DurabilityManager::open(&dir, SyncPolicy::WriteBack).expect("recovery");
            let prefix = report.records_replayed as usize;
            assert!(
                (2 * CHUNK..3 * CHUNK).contains(&prefix),
                "keep {keep}: expected the two acked groups plus part of the third, got {prefix}"
            );
            assert_same_state(
                &recovered,
                &expected(prefix),
                &format!("torn group, keep {keep}"),
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn checkpoint_refuses_a_dead_wal() {
        let dir = tmp("deadwal");
        let store = Arc::new(ViewStore::new());
        let lineage = LineageGraph::new();
        let (mut mgr, _) =
            DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
        mgr.wal().fault_point().install(FaultPlan::crash_at(1));
        store.build("lost").insert();
        assert!(
            mgr.checkpoint(&store, &lineage).is_err(),
            "a checkpoint over a dead WAL would silently bless lost writes"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---- double faults --------------------------------------------------------
//
// A crash is allowed to strike while the system is *already* healing:
// during the recovery replay of a previous crash, or during the
// proactive checkpoint a scrub repair triggers. Both must still land on
// an exact mutation prefix.

/// Recovery's only persistent side effects are tail truncation and
/// artifact quarantine, so a crash *during* replay leaves a dataspace
/// that a second recovery must read to the identical prefix — recovery
/// is idempotent.
#[test]
fn crash_during_recovery_replay_recovers_the_same_prefix_on_reboot() {
    let ops = workload(SEED, 160);
    let dir = tmp("double-recovery");
    run_durable(&dir, &ops);

    // Damage the log so the first recovery has real healing to do.
    let wal_file = dir.join("wal-1.idmlog");
    let mut wal = std::fs::read(&wal_file).unwrap();
    let cut = wal.len() * 2 / 3;
    wal[cut] ^= 0x40;
    std::fs::write(&wal_file, &wal).unwrap();

    let (first, _, _, report) =
        DurabilityManager::open(&dir, SyncPolicy::WriteBack).expect("first recovery");
    let prefix = report.records_replayed as usize;
    assert!(prefix < 160, "the flip must cost at least the tail");
    assert_same_state(&first, &reference(&ops, prefix), "first recovery");
    drop(first); // crash again: replay finished, nothing new was written

    let (second, _, _, again) =
        DurabilityManager::open(&dir, SyncPolicy::WriteBack).expect("second recovery");
    assert_eq!(again.records_replayed as usize, prefix, "prefix is stable");
    assert_same_state(&second, &reference(&ops, prefix), "second recovery");
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(feature = "fault-injection")]
mod double_fault {
    use super::*;
    use idm_core::durability::{ScrubBudget, Scrubber};
    use idm_core::fault::FaultPlan;

    /// Byte-flip the newest snapshot, then kill the scrub-triggered
    /// repair checkpoint between WAL rotation and the snapshot write —
    /// and crash. The damaged snapshot is already quarantined, the old
    /// snapshot plus the complete (rotated) WAL chain survive, so
    /// recovery lands on every mutation. A second crash-and-reopen on
    /// the result must agree.
    #[test]
    fn crash_during_scrub_repair_checkpoint_loses_no_mutation() {
        let ops = workload(SEED, 160);
        let dir = tmp("scrub-ckpt-crash");
        let store = Arc::new(ViewStore::new());
        let lineage = LineageGraph::new();
        let (mut mgr, _) =
            DurabilityManager::attach(&dir, &store, &lineage, SyncPolicy::WriteBack).unwrap();
        for op in &ops[..120] {
            apply(&store, op);
        }
        mgr.checkpoint(&store, &lineage)
            .expect("healthy checkpoint");
        for op in &ops[120..] {
            apply(&store, op);
        }

        // Flip one byte of the newest snapshot (seq 2, written above).
        let snap = dir.join("snap-2.idmsnap");
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&snap, &bytes).unwrap();

        mgr.checkpoint_fault_point().install(FaultPlan::fail_n(1));
        let mut scrubber = Scrubber::new(ScrubBudget::default());
        let err = mgr.scrub_round(&store, &lineage, &mut scrubber);
        assert!(err.is_err(), "the repair checkpoint must die mid-flight");
        assert!(
            !snap.exists(),
            "the damaged snapshot was quarantined before the checkpoint"
        );
        drop(store);
        drop(mgr); // crash: no shutdown path runs

        let (recovered, _, _, report) =
            DurabilityManager::open(&dir, SyncPolicy::WriteBack).expect("recovery");
        assert_eq!(report.records_replayed, 160, "{report}");
        assert_same_state(
            &recovered,
            &reference(&ops, 160),
            "crash during scrub repair checkpoint",
        );
        drop(recovered);

        // Double fault: crash again immediately after that recovery.
        let (again, _, _, second) =
            DurabilityManager::open(&dir, SyncPolicy::WriteBack).expect("second recovery");
        assert_eq!(second.records_replayed, 160, "{second}");
        assert_same_state(&again, &reference(&ops, 160), "second crash after repair");
        std::fs::remove_dir_all(&dir).ok();
    }
}
