//! Concurrency tests: the view store is shared across every component
//! of a PDSMS (query processor, sync manager, push operators), so its
//! guarantees under parallel access matter.

use std::sync::Arc;
use std::thread;

use idm_core::prelude::*;

#[test]
fn parallel_inserts_are_all_visible() {
    let store = Arc::new(ViewStore::new());
    let threads = 8;
    let per_thread = 200;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let mut vids = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    vids.push(store.build(format!("t{t}-v{i}")).text("body").insert());
                }
                vids
            })
        })
        .collect();
    let mut all: Vec<Vid> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("no panics"))
        .collect();
    assert_eq!(store.len(), threads * per_thread);
    // Every thread got distinct vids.
    all.sort();
    all.dedup();
    assert_eq!(all.len(), threads * per_thread);
    // And all are resolvable.
    for vid in all {
        assert!(store.contains(vid));
        assert!(store.name(vid).unwrap().is_some());
    }
}

#[test]
fn readers_run_during_writes() {
    let store = Arc::new(ViewStore::new());
    let root = store.build("root").insert();

    let writer = {
        let store = Arc::clone(&store);
        thread::spawn(move || {
            for i in 0..500 {
                let child = store.build(format!("c{i}")).insert();
                store.add_group_member(root, child, false).unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let mut max_seen = 0;
                for _ in 0..500 {
                    let members = store.group(root).unwrap().finite_members();
                    // Group snapshots are consistent prefixes: size only
                    // ever grows.
                    assert!(members.len() >= max_seen);
                    max_seen = members.len();
                    for member in members {
                        // Every member visible in a snapshot resolves.
                        assert!(store.name(member).is_ok());
                    }
                }
                max_seen
            })
        })
        .collect();
    writer.join().expect("writer ok");
    for reader in readers {
        reader.join().expect("reader ok");
    }
    assert_eq!(store.group(root).unwrap().finite_members().len(), 500);
}

#[test]
fn lazy_group_forced_from_many_threads_computes_once() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let store = Arc::new(ViewStore::new());
    static CALLS: AtomicUsize = AtomicUsize::new(0);
    let provider = Arc::new(|store: &ViewStore, _owner: Vid| {
        CALLS.fetch_add(1, Ordering::SeqCst);
        // Simulate a slow conversion.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let child = store.build("expensive child").insert();
        Ok(GroupData::of_set(vec![child]))
    });
    let lazy = store.build("lazy").group(Group::lazy(provider)).insert();

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let store = Arc::clone(&store);
            thread::spawn(move || store.group(lazy).unwrap().finite_members())
        })
        .collect();
    let results: Vec<Vec<Vid>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(CALLS.load(Ordering::SeqCst), 1, "computed exactly once");
    assert!(results.windows(2).all(|w| w[0] == w[1]), "same members");
    assert_eq!(store.len(), 2, "one child only");
}

/// Stress the sharded store: ≥8 threads concurrently growing overlapping
/// subtrees (`add_group_member` = the `add_child` path) while as many
/// readers walk the same subtrees through `group()`. The test asserts the
/// whole thing terminates (no deadlock across shard locks) and that final
/// child counts are exactly what the writers produced.
#[test]
fn multi_writer_multi_reader_stress_over_overlapping_subtrees() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let store = Arc::new(ViewStore::with_shards(8));
    // Three roots; each writer appends to ALL of them so every pair of
    // writers contends on every root's shard.
    let roots: Vec<Vid> = (0..3)
        .map(|i| store.build(format!("root{i}")).insert())
        .collect();
    let writers = 8;
    let readers = 8;
    let per_root = 50;
    let done = Arc::new(AtomicBool::new(false));

    let writer_handles: Vec<_> = (0..writers)
        .map(|t| {
            let store = Arc::clone(&store);
            let roots = roots.clone();
            thread::spawn(move || {
                for i in 0..per_root {
                    for (r, &root) in roots.iter().enumerate() {
                        let child = store.build(format!("w{t}-r{r}-c{i}")).text("leaf").insert();
                        store.add_group_member(root, child, true).unwrap();
                    }
                }
            })
        })
        .collect();

    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let store = Arc::clone(&store);
            let roots = roots.clone();
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut last = vec![0usize; roots.len()];
                while !done.load(Ordering::Relaxed) {
                    for (r, &root) in roots.iter().enumerate() {
                        let members = store.group(root).unwrap().finite_members();
                        assert!(
                            members.len() >= last[r],
                            "snapshot sizes are monotone per root"
                        );
                        last[r] = members.len();
                        for member in members {
                            assert!(store.name(member).unwrap().is_some());
                        }
                    }
                }
            })
        })
        .collect();

    for w in writer_handles {
        w.join().expect("writer finished without deadlock");
    }
    done.store(true, Ordering::Relaxed);
    for r in reader_handles {
        r.join().expect("reader finished without deadlock");
    }

    for &root in &roots {
        assert_eq!(
            store.group(root).unwrap().finite_members().len(),
            writers * per_root,
            "every concurrently-added child is present"
        );
    }
    assert_eq!(store.len(), roots.len() + writers * per_root * roots.len());
}

#[test]
fn change_events_reach_every_subscriber_exactly_once() {
    let store = Arc::new(ViewStore::new());
    let receivers: Vec<_> = (0..4).map(|_| store.subscribe()).collect();

    let writers: Vec<_> = (0..4)
        .map(|t| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                for i in 0..100 {
                    store.build(format!("w{t}-{i}")).insert();
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().unwrap();
    }
    for rx in receivers {
        let events: Vec<ChangeEvent> = rx.try_iter().collect();
        assert_eq!(events.len(), 400, "each subscriber sees every event");
        assert!(events.iter().all(|e| e.kind == ChangeKind::Created));
    }
}
