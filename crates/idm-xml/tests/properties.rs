//! Property-based tests for the XML parser/writer and the iDM converter.

use idm_xml::parser::{parse, XmlDocument, XmlElement, XmlNode};
use idm_xml::writer::to_xml_string;
use proptest::prelude::*;

/// Arbitrary XML names (subset the parser accepts).
fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_.-]{0,8}".prop_map(|s| s)
}

/// Text without leading/trailing whitespace ambiguity (the default
/// parse options drop whitespace-only runs, and the writer/parser pair
/// normalizes nothing else).
fn arb_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9<>&\"' ]{1,20}".prop_filter("not ws-only", |s| !s.trim().is_empty())
}

fn arb_element(depth: u32) -> BoxedStrategy<XmlElement> {
    let leaf = (
        arb_name(),
        proptest::collection::vec((arb_name(), arb_text()), 0..3),
    )
        .prop_map(|(name, attrs)| {
            let mut e = XmlElement::new(name);
            // Attribute names must be unique per element.
            let mut seen = std::collections::HashSet::new();
            for (n, v) in attrs {
                if seen.insert(n.clone()) {
                    e.attributes.push((n, v));
                }
            }
            e
        });
    if depth == 0 {
        return leaf.boxed();
    }
    (
        leaf,
        proptest::collection::vec(
            prop_oneof![
                arb_element(depth - 1).prop_map(XmlNode::Element),
                arb_text().prop_map(XmlNode::Text),
            ],
            0..4,
        ),
    )
        .prop_map(|(mut e, children)| {
            // Merge adjacent text nodes like the parser does, so the
            // roundtrip comparison is well-defined.
            for child in children {
                match (&child, e.children.last_mut()) {
                    (XmlNode::Text(t), Some(XmlNode::Text(prev))) => prev.push_str(t),
                    _ => e.children.push(child),
                }
            }
            e
        })
        .boxed()
}

proptest! {
    /// write → parse is the identity on arbitrary trees (with escaping).
    #[test]
    fn roundtrip(root in arb_element(3)) {
        let doc = XmlDocument { root };
        let xml = to_xml_string(&doc);
        let reparsed = parse(&xml).expect("writer output is well-formed");
        prop_assert_eq!(reparsed, doc);
    }

    /// The parser never panics on arbitrary input (errors are fine).
    #[test]
    fn no_panic_on_garbage(input in ".{0,300}") {
        let _ = parse(&input);
    }

    /// The parser never panics on "almost XML" either.
    #[test]
    fn no_panic_on_mangled_xml(root in arb_element(2), cut in 0usize..200, flip in 0usize..200) {
        let mut xml = to_xml_string(&XmlDocument { root });
        if !xml.is_empty() {
            let cut = cut % xml.len();
            while !xml.is_char_boundary(cut) && !xml.is_empty() {
                xml.pop();
            }
            xml.truncate(cut.min(xml.len()));
            if !xml.is_empty() {
                let pos = flip % xml.len();
                if xml.is_char_boundary(pos) {
                    xml.insert(pos, '<');
                }
            }
        }
        let _ = parse(&xml);
    }

    /// item_count equals the number of views the converter derives.
    #[test]
    fn item_count_matches_derived_views(root in arb_element(3)) {
        let doc = XmlDocument { root };
        let xml = to_xml_string(&doc);
        let store = idm_core::prelude::ViewStore::new();
        let (_vid, derived) =
            idm_xml::convert::text_to_views(&store, &xml).expect("convert");
        prop_assert_eq!(derived, doc.item_count());
    }

    /// Feeds roundtrip through their XML serialization.
    #[test]
    fn feed_roundtrip(
        title in "[a-zA-Z0-9 &<]{0,20}"
            .prop_filter("not blank", |s| s.is_empty() || !s.trim().is_empty()),
        items in proptest::collection::vec(
            (
                // Whitespace-only strings are legitimately lossy (the
                // parser drops whitespace-only text nodes), so exclude
                // them while keeping "" and internal/trailing spaces.
                "[a-zA-Z0-9 ]{0,15}".prop_filter("not blank", |s| s.is_empty() || !s.trim().is_empty()),
                "[a-z]{0,8}",
                any::<i32>(),
                "[a-zA-Z0-9 .,&]{0,40}".prop_filter("not blank", |s| s.is_empty() || !s.trim().is_empty()),
            ),
            0..6,
        )
    ) {
        use idm_xml::rss::{Feed, FeedItem};
        use idm_core::prelude::Timestamp;
        let mut feed = Feed::new(title);
        for (t, a, p, b) in items {
            feed.items.push(FeedItem {
                title: t,
                author: a,
                published: Timestamp(i64::from(p)),
                body: b,
            });
        }
        let parsed = Feed::from_xml(&feed.to_xml()).expect("roundtrip parse");
        prop_assert_eq!(parsed, feed);
    }
}
