//! A from-scratch, dependency-free XML 1.0 parser.
//!
//! Produces the core XML Information Set items used by Section 3.3 of
//! the paper: the document, elements with attributes, and character data.
//! Comments, processing instructions, the XML declaration and DOCTYPE
//! internal subsets are consumed and discarded; CDATA sections become
//! character data; entity and character references are decoded.

use std::collections::HashMap;
use std::fmt;

/// An XML parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// An element information item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlElement {
    /// Element name `N_E`.
    pub name: String,
    /// Attributes in document order: the element's `(W_E, T_E)`.
    pub attributes: Vec<(String, String)>,
    /// Ordered children (elements and text).
    pub children: Vec<XmlNode>,
}

impl XmlElement {
    /// A new element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        XmlElement {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The value of the first attribute with the given name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements (skipping text nodes).
    pub fn child_elements(&self) -> impl Iterator<Item = &XmlElement> {
        self.children.iter().filter_map(|c| match c {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// The first child element with the given name.
    pub fn child_named(&self, name: &str) -> Option<&XmlElement> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Concatenated text content of this element's direct text children.
    pub fn direct_text(&self) -> String {
        let mut out = String::new();
        for child in &self.children {
            if let XmlNode::Text(t) = child {
                out.push_str(t);
            }
        }
        out
    }

    /// Concatenated text content of the whole subtree.
    pub fn deep_text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for child in &self.children {
            match child {
                XmlNode::Text(t) => out.push_str(t),
                XmlNode::Element(e) => e.collect_text(out),
            }
        }
    }

    /// Total number of information items in the subtree (this element,
    /// descendant elements, and text nodes). This is exactly the number
    /// of resource views the iDM converter derives from the element.
    pub fn item_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| match c {
                XmlNode::Element(e) => e.item_count(),
                XmlNode::Text(_) => 1,
            })
            .sum::<usize>()
    }
}

/// A node: an element or character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// An element information item.
    Element(XmlElement),
    /// A character information item run.
    Text(String),
}

/// A document information item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlDocument {
    /// The root element.
    pub root: XmlElement,
}

impl XmlDocument {
    /// Total number of information items (document + subtree).
    pub fn item_count(&self) -> usize {
        1 + self.root.item_count()
    }
}

/// Parser configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// Drop text nodes that are entirely whitespace (the usual choice for
    /// data-oriented XML; pretty-printed documents otherwise drown the
    /// view graph in indentation nodes). Default: `true`.
    pub drop_whitespace_text: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            drop_whitespace_text: true,
        }
    }
}

/// Parses a document with default options.
pub fn parse(input: &str) -> Result<XmlDocument, XmlError> {
    parse_with(input, ParseOptions::default())
}

/// Parses a document with explicit options.
pub fn parse_with(input: &str, options: ParseOptions) -> Result<XmlDocument, XmlError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        options,
    };
    parser.skip_prolog()?;
    let root = parser.parse_element()?;
    parser.skip_misc();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("content after the root element"));
    }
    Ok(XmlDocument { root })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    options: ParseOptions,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn advance(&mut self, n: usize) {
        self.pos = (self.pos + n).min(self.bytes.len());
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.starts_with(s) {
            self.advance(s.len());
            Ok(())
        } else {
            Err(self.error(format!("expected '{s}'")))
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        match find_sub(&self.bytes[self.pos..], end.as_bytes()) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(self.error(format!("unterminated construct, expected '{end}'"))),
        }
    }

    /// Skips the XML declaration, comments, PIs, DOCTYPE and whitespace.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skips comments/PIs/whitespace after the root element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                if self.skip_until("?>").is_err() {
                    return;
                }
            } else if self.starts_with("<!--") {
                if self.skip_until("-->").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        // <!DOCTYPE ... [ internal subset ] >
        self.expect("<!DOCTYPE")?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                Some(b'<') => {
                    depth += 1;
                    self.pos += 1;
                }
                Some(b'>') => {
                    depth -= 1;
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
                None => return Err(self.error("unterminated DOCTYPE")),
            }
        }
        Ok(())
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        let name = &self.bytes[start..self.pos];
        let first = name[0];
        if first.is_ascii_digit() || first == b'-' || first == b'.' {
            return Err(XmlError {
                offset: start,
                message: "names must not start with a digit, '-' or '.'".into(),
            });
        }
        Ok(String::from_utf8_lossy(name).into_owned())
    }

    fn parse_element(&mut self) -> Result<XmlElement, XmlError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut element = XmlElement::new(name);

        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    self.expect("=")?;
                    self.skip_whitespace();
                    let value = self.parse_attr_value()?;
                    if element.attributes.iter().any(|(n, _)| *n == attr_name) {
                        return Err(self.error(format!("duplicate attribute '{attr_name}'")));
                    }
                    element.attributes.push((attr_name, value));
                }
                None => return Err(self.error("unterminated start tag")),
            }
        }

        // Content.
        loop {
            if self.starts_with("</") {
                self.advance(2);
                let end_name = self.parse_name()?;
                if end_name != element.name {
                    return Err(self.error(format!(
                        "mismatched end tag: expected </{}>, found </{end_name}>",
                        element.name
                    )));
                }
                self.skip_whitespace();
                self.expect(">")?;
                return Ok(element);
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.advance("<![CDATA[".len());
                let rest = &self.bytes[self.pos..];
                let end = find_sub(rest, b"]]>")
                    .ok_or_else(|| self.error("unterminated CDATA section"))?;
                let text = String::from_utf8_lossy(&rest[..end]).into_owned();
                self.advance(end + 3);
                push_text(&mut element, text, self.options);
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.children.push(XmlNode::Element(child));
            } else if self.peek().is_some() {
                let text = self.parse_char_data()?;
                push_text(&mut element, text, self.options);
            } else {
                return Err(self.error(format!("unterminated element <{}>", element.name)));
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.error("expected a quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                self.pos += 1;
                return decode_entities(&raw).map_err(|m| XmlError {
                    offset: start,
                    message: m,
                });
            }
            if b == b'<' {
                return Err(self.error("'<' is not allowed in attribute values"));
            }
            self.pos += 1;
        }
        Err(self.error("unterminated attribute value"))
    }

    fn parse_char_data(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.pos += 1;
        }
        let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        decode_entities(&raw).map_err(|m| XmlError {
            offset: start,
            message: m,
        })
    }
}

fn push_text(element: &mut XmlElement, text: String, options: ParseOptions) {
    if options.drop_whitespace_text && text.trim().is_empty() {
        return;
    }
    // Merge adjacent character runs (e.g. text–CDATA–text) into one
    // character information item, as the infoset prescribes.
    if let Some(XmlNode::Text(prev)) = element.children.last_mut() {
        prev.push_str(&text);
    } else {
        element.children.push(XmlNode::Text(text));
    }
}

fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Decodes the five predefined entities and numeric character references.
fn decode_entities(raw: &str) -> Result<String, String> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| "unterminated entity reference".to_owned())?;
        let entity = &rest[1..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("bad character reference '&{entity};'"))?;
                out.push(char::from_u32(code).ok_or("invalid character code")?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..]
                    .parse()
                    .map_err(|_| format!("bad character reference '&{entity};'"))?;
                out.push(char::from_u32(code).ok_or("invalid character code")?);
            }
            _ => return Err(format!("unknown entity '&{entity};'")),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// An attribute map helper for tests and converters.
pub fn attr_map(element: &XmlElement) -> HashMap<&str, &str> {
    element
        .attributes
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_document() {
        let doc = parse("<a/>").unwrap();
        assert_eq!(doc.root.name, "a");
        assert!(doc.root.children.is_empty());
        assert_eq!(doc.item_count(), 2);
    }

    #[test]
    fn paper_figure_2_fragment() {
        // The <article> fragment shape from Figure 2.
        let doc = parse(
            r#"<article year="2005"><title>Dataspaces</title><author>Franklin</author></article>"#,
        )
        .unwrap();
        assert_eq!(doc.root.name, "article");
        assert_eq!(doc.root.attr("year"), Some("2005"));
        assert_eq!(doc.root.child_elements().count(), 2);
        assert_eq!(
            doc.root.child_named("title").unwrap().direct_text(),
            "Dataspaces"
        );
        // document + article + title + text + author + text = 6 items.
        assert_eq!(doc.item_count(), 6);
    }

    #[test]
    fn declaration_comments_pis_doctype_skipped() {
        let doc = parse(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
             <!DOCTYPE html [ <!ENTITY x \"y\"> ]>\n\
             <!-- a comment -->\n\
             <root><?pi data?><!-- inner --><a/></root>\n\
             <!-- trailing -->",
        )
        .unwrap();
        assert_eq!(doc.root.name, "root");
        assert_eq!(doc.root.child_elements().count(), 1);
    }

    #[test]
    fn cdata_becomes_text_and_merges() {
        let doc = parse("<a>one <![CDATA[<two> & ]]>three</a>").unwrap();
        assert_eq!(doc.root.children.len(), 1, "merged into one run");
        assert_eq!(doc.root.direct_text(), "one <two> & three");
    }

    #[test]
    fn entities_decoded() {
        let doc = parse("<a x=\"&lt;&amp;&quot;&#65;&#x42;\">&gt;&apos;</a>").unwrap();
        assert_eq!(doc.root.attr("x"), Some("<&\"AB"));
        assert_eq!(doc.root.direct_text(), ">'");
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<a>&nbsp;</a>").is_err());
        assert!(parse("<a>&unterminated</a>").is_err());
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
        assert!(parse("<a>").is_err());
        assert!(parse("<a></a><b/>").is_err());
        assert!(parse("plain text").is_err());
    }

    #[test]
    fn duplicate_attributes_rejected() {
        assert!(parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn invalid_names_rejected() {
        assert!(parse("<1a/>").is_err());
        assert!(parse("<-a/>").is_err());
    }

    #[test]
    fn whitespace_text_dropped_by_default_kept_on_request() {
        let pretty = "<a>\n  <b>x</b>\n</a>";
        let doc = parse(pretty).unwrap();
        assert_eq!(doc.root.children.len(), 1);

        let doc = parse_with(
            pretty,
            ParseOptions {
                drop_whitespace_text: false,
            },
        )
        .unwrap();
        assert_eq!(doc.root.children.len(), 3, "ws runs kept");
    }

    #[test]
    fn single_quoted_attributes() {
        let doc = parse("<a x='hello world'/>").unwrap();
        assert_eq!(doc.root.attr("x"), Some("hello world"));
    }

    #[test]
    fn deep_text_spans_subtree() {
        let doc = parse("<a>x<b>y<c>z</c></b>w</a>").unwrap();
        assert_eq!(doc.root.deep_text(), "xyzw");
    }

    #[test]
    fn nested_depth_is_handled() {
        let mut input = String::new();
        for i in 0..200 {
            input.push_str(&format!("<e{i}>"));
        }
        input.push_str("leaf");
        for i in (0..200).rev() {
            input.push_str(&format!("</e{i}>"));
        }
        let doc = parse(&input).unwrap();
        assert_eq!(doc.root.name, "e0");
        assert_eq!(doc.root.deep_text(), "leaf");
    }

    #[test]
    fn attribute_with_lt_rejected() {
        assert!(parse(r#"<a x="a<b"/>"#).is_err());
    }

    #[test]
    fn activexml_document_from_section_4_3_1() {
        let doc = parse("<dep>\n  <sc>web.server.com/GetDepartments()</sc>\n</dep>").unwrap();
        assert_eq!(doc.root.name, "dep");
        let sc = doc.root.child_named("sc").unwrap();
        assert_eq!(sc.direct_text(), "web.server.com/GetDepartments()");
    }
}
