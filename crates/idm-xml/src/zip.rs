//! A from-scratch, store-only ZIP codec (PKZIP local headers, central
//! directory, EOCD, CRC-32).
//!
//! Why a ZIP codec in a dataspace system? The paper's footnote 1: "Open
//! Office has stored documents in XML since version 1.0. MS Office 12
//! appearing end of 2006 will also enable storage of files using zipped
//! XML." — office documents are ZIP containers of XML parts, and the
//! Content2iDM converter for them must open the container first. Only
//! the `stored` (uncompressed) method is implemented; that is enough
//! for a faithful container model and keeps the codec dependency-free.

use idm_core::prelude::{IdmError, Result};

const LOCAL_MAGIC: u32 = 0x0403_4B50; // PK\x03\x04
const CENTRAL_MAGIC: u32 = 0x0201_4B50; // PK\x01\x02
const EOCD_MAGIC: u32 = 0x0605_4B50; // PK\x05\x06

/// One archive member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZipEntry {
    /// Member path, e.g. `word/document.xml`.
    pub name: String,
    /// Uncompressed (= stored) bytes.
    pub data: Vec<u8>,
}

/// CRC-32 (IEEE 802.3), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    fn table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    }
    // Computed once; the table is tiny and the const-fn form keeps this
    // allocation-free.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(table);
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = table[((crc ^ u32::from(byte)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Builds a ZIP archive (stored method) from entries.
pub fn write_zip(entries: &[ZipEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut central = Vec::new();
    for entry in entries {
        let offset = out.len() as u32;
        let crc = crc32(&entry.data);
        let name = entry.name.as_bytes();
        let size = entry.data.len() as u32;

        // Local file header.
        put_u32(&mut out, LOCAL_MAGIC);
        put_u16(&mut out, 20); // version needed
        put_u16(&mut out, 0); // flags
        put_u16(&mut out, 0); // method: stored
        put_u16(&mut out, 0); // mod time
        put_u16(&mut out, 0); // mod date
        put_u32(&mut out, crc);
        put_u32(&mut out, size); // compressed
        put_u32(&mut out, size); // uncompressed
        put_u16(&mut out, name.len() as u16);
        put_u16(&mut out, 0); // extra len
        out.extend_from_slice(name);
        out.extend_from_slice(&entry.data);

        // Central directory record.
        put_u32(&mut central, CENTRAL_MAGIC);
        put_u16(&mut central, 20); // version made by
        put_u16(&mut central, 20); // version needed
        put_u16(&mut central, 0);
        put_u16(&mut central, 0);
        put_u16(&mut central, 0);
        put_u16(&mut central, 0);
        put_u32(&mut central, crc);
        put_u32(&mut central, size);
        put_u32(&mut central, size);
        put_u16(&mut central, name.len() as u16);
        put_u16(&mut central, 0); // extra
        put_u16(&mut central, 0); // comment
        put_u16(&mut central, 0); // disk
        put_u16(&mut central, 0); // internal attrs
        put_u32(&mut central, 0); // external attrs
        put_u32(&mut central, offset);
        central.extend_from_slice(name);
    }
    let central_offset = out.len() as u32;
    out.extend_from_slice(&central);
    // End of central directory.
    put_u32(&mut out, EOCD_MAGIC);
    put_u16(&mut out, 0); // disk
    put_u16(&mut out, 0); // cd disk
    put_u16(&mut out, entries.len() as u16);
    put_u16(&mut out, entries.len() as u16);
    put_u32(&mut out, central.len() as u32);
    put_u32(&mut out, central_offset);
    put_u16(&mut out, 0); // comment len
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(message: &str) -> IdmError {
        IdmError::Parse {
            detail: format!("zip: {message}"),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(Self::err("truncated archive"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16> {
        let bytes = self.take(2)?;
        Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    fn u32(&mut self) -> Result<u32> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }
}

/// Reads a stored-method ZIP archive.
pub fn read_zip(bytes: &[u8]) -> Result<Vec<ZipEntry>> {
    let mut cursor = Cursor { buf: bytes, pos: 0 };
    let mut entries = Vec::new();
    loop {
        let start = cursor.pos;
        let magic = match cursor.u32() {
            Ok(m) => m,
            Err(_) => break,
        };
        if magic != LOCAL_MAGIC {
            // Central directory (or EOCD) reached — done with members.
            if magic == CENTRAL_MAGIC || magic == EOCD_MAGIC {
                break;
            }
            return Err(Cursor::err(&format!("unexpected record at offset {start}")));
        }
        let _version = cursor.u16()?;
        let flags = cursor.u16()?;
        if flags & 0x0008 != 0 {
            return Err(Cursor::err("streaming data descriptors unsupported"));
        }
        let method = cursor.u16()?;
        if method != 0 {
            return Err(Cursor::err(&format!(
                "compression method {method} unsupported (stored only)"
            )));
        }
        let _time = cursor.u16()?;
        let _date = cursor.u16()?;
        let crc = cursor.u32()?;
        let compressed = cursor.u32()? as usize;
        let uncompressed = cursor.u32()? as usize;
        if compressed != uncompressed {
            return Err(Cursor::err("stored entry with mismatched sizes"));
        }
        let name_len = cursor.u16()? as usize;
        let extra_len = cursor.u16()? as usize;
        let name = String::from_utf8_lossy(cursor.take(name_len)?).into_owned();
        cursor.take(extra_len)?;
        let data = cursor.take(compressed)?.to_vec();
        if crc32(&data) != crc {
            return Err(Cursor::err(&format!("CRC mismatch in '{name}'")));
        }
        entries.push(ZipEntry { name, data });
    }
    Ok(entries)
}

/// Whether bytes look like a ZIP archive.
pub fn is_zip(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == LOCAL_MAGIC.to_le_bytes()
}

/// Builds an Office-12-style document container: `word/document.xml`
/// plus a content-types part, exactly the "zipped XML" shape the
/// paper's footnote 1 describes.
pub fn office_document(document_xml: &str) -> Vec<u8> {
    write_zip(&[
        ZipEntry {
            name: "[Content_Types].xml".into(),
            data: br#"<?xml version="1.0"?><Types><Default Extension="xml" ContentType="application/xml"/></Types>"#.to_vec(),
        },
        ZipEntry {
            name: "word/document.xml".into(),
            data: document_xml.as_bytes().to_vec(),
        },
    ])
}

/// Extracts the main document part of an Office-style container
/// (`word/document.xml`, or OpenOffice's `content.xml`).
pub fn office_document_xml(bytes: &[u8]) -> Result<String> {
    let entries = read_zip(bytes)?;
    for candidate in ["word/document.xml", "content.xml"] {
        if let Some(entry) = entries.iter().find(|e| e.name == candidate) {
            return Ok(String::from_utf8_lossy(&entry.data).into_owned());
        }
    }
    Err(IdmError::Parse {
        detail: "zip: no document part (word/document.xml or content.xml)".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn zip_roundtrip() {
        let entries = vec![
            ZipEntry {
                name: "a.txt".into(),
                data: b"hello".to_vec(),
            },
            ZipEntry {
                name: "dir/b.xml".into(),
                data: b"<x/>".to_vec(),
            },
            ZipEntry {
                name: "empty".into(),
                data: vec![],
            },
        ];
        let bytes = write_zip(&entries);
        assert!(is_zip(&bytes));
        let read = read_zip(&bytes).unwrap();
        assert_eq!(read, entries);
    }

    #[test]
    fn corrupt_archives_error_cleanly() {
        let entries = vec![ZipEntry {
            name: "a".into(),
            data: b"payload".to_vec(),
        }];
        let mut bytes = write_zip(&entries);
        // Flip a payload byte (local header is 30 bytes + 1 name byte,
        // so the payload starts at offset 31): CRC must catch it.
        bytes[33] ^= 0xFF;
        assert!(read_zip(&bytes).is_err());
        assert!(read_zip(b"PK\x03\x04trunc").is_err());
        assert!(read_zip(b"garbage").is_err());
        assert!(read_zip(b"").unwrap().is_empty());
    }

    #[test]
    fn office_container_shape() {
        let bytes = office_document("<doc><p>Grant proposal text</p></doc>");
        assert!(is_zip(&bytes));
        let xml = office_document_xml(&bytes).unwrap();
        assert!(xml.contains("Grant proposal"));
        // The container is NOT texty: the binary-content heuristic of
        // the content index must skip it... actually stored zips of text
        // have no NUL in header+ascii names+xml; check what matters:
        // office_document_xml finds the part regardless.
        let entries = read_zip(&bytes).unwrap();
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn missing_document_part_errors() {
        let bytes = write_zip(&[ZipEntry {
            name: "other.xml".into(),
            data: b"<x/>".to_vec(),
        }]);
        assert!(office_document_xml(&bytes).is_err());
    }
}
