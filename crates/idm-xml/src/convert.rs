//! The `XML2iDM` Content2iDM converter (Section 3.3).
//!
//! Instantiates the XML data model in iDM:
//!
//! - a character item becomes a `xmltext` view: `V = (χ)` with `χ = C_t`,
//! - an element item becomes a `xmlelem` view: `η = N_E`,
//!   `τ = (W_E, T_E)` (the attributes), `γ = (∅, ⟨children⟩)`,
//! - a document item becomes a `xmldoc` view: `γ = (∅, ⟨V_root⟩)`,
//! - an XML *file* view is upgraded to class `xmlfile` with
//!   `γ = (∅, ⟨V_doc⟩)`, removing the boundary between the file on the
//!   outside and its structure on the inside.

use std::sync::Arc;

use idm_core::class::builtin::names;
use idm_core::prelude::*;

use crate::parser::{parse, XmlDocument, XmlElement, XmlNode};

/// Converts attributes to the element's tuple component `(W_E, T_E)`.
///
/// All XML attribute values are text; the schema records one text
/// attribute per XML attribute, in document order.
fn attributes_to_tuple(element: &XmlElement) -> Option<TupleComponent> {
    if element.attributes.is_empty() {
        return None;
    }
    Some(TupleComponent::of(
        element
            .attributes
            .iter()
            .map(|(name, value)| (name.as_str(), Value::Text(value.clone())))
            .collect(),
    ))
}

/// Instantiates an element subtree; returns the `xmlelem` view.
pub fn element_to_views(store: &ViewStore, element: &XmlElement) -> Result<Vid> {
    let xmlelem = store.classes().require(names::XMLELEM)?;
    let xmltext = store.classes().require(names::XMLTEXT)?;
    element_to_views_inner(store, element, xmlelem, xmltext)
}

fn element_to_views_inner(
    store: &ViewStore,
    element: &XmlElement,
    xmlelem: ClassId,
    xmltext: ClassId,
) -> Result<Vid> {
    let mut children = Vec::with_capacity(element.children.len());
    for child in &element.children {
        let vid = match child {
            XmlNode::Element(e) => element_to_views_inner(store, e, xmlelem, xmltext)?,
            XmlNode::Text(t) => store
                .build_unnamed()
                .content(Content::text(t.clone()))
                .class(xmltext)
                .insert(),
        };
        children.push(vid);
    }
    let mut builder = store.build(element.name.clone()).class(xmlelem);
    if let Some(tuple) = attributes_to_tuple(element) {
        builder = builder.tuple(tuple);
    }
    if !children.is_empty() {
        builder = builder.sequence(children);
    }
    Ok(builder.insert())
}

/// Instantiates a parsed document; returns the `xmldoc` view.
pub fn document_to_views(store: &ViewStore, doc: &XmlDocument) -> Result<Vid> {
    let xmldoc = store.classes().require(names::XMLDOC)?;
    let root = element_to_views(store, &doc.root)?;
    Ok(store
        .build_unnamed()
        .sequence(vec![root])
        .class(xmldoc)
        .insert())
}

/// Parses XML text and instantiates it; returns the `xmldoc` view and the
/// number of views created.
pub fn text_to_views(store: &ViewStore, xml: &str) -> Result<(Vid, usize)> {
    let doc = parse(xml).map_err(|e| IdmError::Parse {
        detail: e.to_string(),
    })?;
    let before = store.len();
    let vid = document_to_views(store, &doc)?;
    Ok((vid, store.len() - before))
}

/// Upgrades a `file` view whose content is XML into an `xmlfile` view:
/// parses the content component, instantiates the document subgraph and
/// wires it as the file's group sequence `⟨V_doc⟩`.
///
/// Returns the `xmldoc` view and the number of derived views.
pub fn enrich_xml_file(store: &ViewStore, file: Vid) -> Result<(Vid, usize)> {
    let xml = store.content(file)?.text_lossy()?;
    let (doc_vid, derived) = text_to_views(store, &xml)?;
    let xmlfile = store.classes().require(names::XMLFILE)?;
    store.set_group(file, Group::of_seq(vec![doc_vid]))?;
    store.set_class(file, Some(xmlfile))?;
    Ok((doc_vid, derived))
}

/// A lazy variant of [`enrich_xml_file`]: the file keeps its original
/// class but gains a **lazy group** that parses the content and builds
/// the subgraph only when `getGroupComponent()` is first called.
pub fn enrich_xml_file_lazily(store: &ViewStore, file: Vid) -> Result<()> {
    let provider = Arc::new(move |store: &ViewStore, owner: Vid| {
        let xml = store.content(owner)?.text_lossy()?;
        let (doc_vid, _derived) = text_to_views(store, &xml)?;
        Ok(GroupData::of_seq(vec![doc_vid]))
    });
    store.set_group(file, Group::lazy(provider))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_core::graph;

    #[test]
    fn figure_2_instantiation() {
        // Figure 2: an <article> fragment as a resource view graph.
        let store = ViewStore::new();
        let (doc, derived) = text_to_views(
            &store,
            r#"<article year="2005"><title>Dataspaces</title></article>"#,
        )
        .unwrap();

        // Views: xmldoc, article, title, text("Dataspaces") = 4.
        assert_eq!(derived, 4);
        assert!(store.conforms_to(doc, "xmldoc").unwrap());

        let root = store.group(doc).unwrap().finite_members()[0];
        assert_eq!(store.name(root).unwrap().as_deref(), Some("article"));
        assert!(store.conforms_to(root, "xmlelem").unwrap());
        // Attributes live in τ.
        assert_eq!(
            store.tuple(root).unwrap().unwrap().get("year"),
            Some(&Value::Text("2005".into()))
        );

        let title = store.group(root).unwrap().finite_members()[0];
        assert_eq!(store.name(title).unwrap().as_deref(), Some("title"));
        let text = store.group(title).unwrap().finite_members()[0];
        assert!(store.conforms_to(text, "xmltext").unwrap());
        assert_eq!(
            store.content(text).unwrap().text_lossy().unwrap(),
            "Dataspaces"
        );
    }

    #[test]
    fn element_children_are_ordered() {
        let store = ViewStore::new();
        let (doc, _) = text_to_views(&store, "<r><a/><b/><c/>tail</r>").unwrap();
        let root = store.group(doc).unwrap().finite_members()[0];
        let snapshot = store.group(root).unwrap();
        let data = snapshot.finite().unwrap();
        assert!(data.set().is_empty(), "children live in the sequence Q");
        let names: Vec<Option<String>> =
            data.seq().iter().map(|v| store.name(*v).unwrap()).collect();
        assert_eq!(
            names,
            vec![
                Some("a".into()),
                Some("b".into()),
                Some("c".into()),
                None // the text node is unnamed
            ]
        );
    }

    #[test]
    fn derived_view_count_matches_item_count() {
        let xml = "<a><b x=\"1\">t1</b><c><d/>t2</c></a>";
        let doc = parse(xml).unwrap();
        let store = ViewStore::new();
        let (_, derived) = text_to_views(&store, xml).unwrap();
        assert_eq!(derived, doc.item_count());
    }

    #[test]
    fn enrich_file_removes_inside_outside_boundary() {
        let store = ViewStore::new();
        let tau = TupleComponent::of(vec![
            ("size", Value::Integer(42)),
            ("creation time", Value::Date(Timestamp(0))),
            ("last modified time", Value::Date(Timestamp(0))),
        ]);
        let file = store
            .build("feed.xml")
            .tuple(tau)
            .text(r#"<feed><entry>Mike Franklin</entry></feed>"#)
            .class_named("file")
            .insert();

        let (doc, derived) = enrich_xml_file(&store, file).unwrap();
        assert_eq!(derived, 4);
        assert!(store.conforms_to(file, "xmlfile").unwrap());
        assert!(store.conforms_to(file, "file").unwrap(), "still a file");
        // The inside structure is now indirectly related to the file view.
        let inside = graph::descendants(&store, file, usize::MAX).unwrap();
        assert!(inside.contains(&doc));
        let texts: Vec<String> = inside
            .iter()
            .filter(|v| store.conforms_to(**v, "xmltext").unwrap())
            .map(|v| store.content(*v).unwrap().text_lossy().unwrap())
            .collect();
        assert_eq!(texts, vec!["Mike Franklin"]);
    }

    #[test]
    fn lazy_enrichment_defers_parsing() {
        let store = ViewStore::new();
        let file = store.build("a.xml").text("<r><x/></r>").insert();
        enrich_xml_file_lazily(&store, file).unwrap();
        assert_eq!(store.len(), 1, "no parsing yet");
        let members = store.group(file).unwrap().finite_members();
        assert_eq!(members.len(), 1);
        assert_eq!(store.len(), 4, "doc + r + x created on demand");
    }

    #[test]
    fn malformed_xml_surfaces_as_parse_error() {
        let store = ViewStore::new();
        let err = text_to_views(&store, "<a><b></a>").unwrap_err();
        assert!(matches!(err, IdmError::Parse { .. }));
    }

    #[test]
    fn converted_views_validate_deeply() {
        let store = ViewStore::new();
        let (doc, _) = text_to_views(&store, r#"<r a="1"><s>text</s><t/></r>"#).unwrap();
        // Every derived view must conform to its class.
        for vid in idm_core::graph::descendants(&store, doc, usize::MAX)
            .unwrap()
            .into_iter()
            .chain([doc])
        {
            validate(&store, vid, ValidationMode::Deep).unwrap();
        }
    }
}
