//! # idm-xml — XML for the iMeMex dataspace
//!
//! A from-scratch XML 1.0 parser covering the core subset of the XML
//! Information Set the paper instantiates in iDM (Section 3.3): document,
//! element, attribute and character information items. On top of the
//! parser sit:
//!
//! - [`convert`] — the `XML2iDM` Content2iDM converter that turns a
//!   document into a resource view subgraph (classes `xmldoc`,
//!   `xmlelem`, `xmltext`, `xmlfile`),
//! - [`rss`] — an RSS/ATOM feed model (feeds are "just simple XML
//!   documents published on a web server", Section 3.4), used by the
//!   stream substrate and the synthetic dataset.
//!
//! The parser favors robustness over DTD completeness: declarations,
//! comments, processing instructions and CDATA are handled; DTD internal
//! subsets are skipped; the five XML entities and numeric character
//! references are decoded. This matches what a 2006 PDSMS content
//! converter needed from office-document XML.

#![warn(missing_docs)]

pub mod convert;
pub mod parser;
pub mod rss;
pub mod writer;
pub mod zip;

pub use parser::{parse, parse_with, ParseOptions, XmlDocument, XmlElement, XmlError, XmlNode};
pub use writer::to_xml_string;
