//! Serializing XML trees back to text (used by the ActiveXML service
//! simulation, the RSS feed server and the synthetic dataset generator).

use crate::parser::{XmlDocument, XmlElement, XmlNode};

/// Serializes a document with an XML declaration.
pub fn to_xml_string(doc: &XmlDocument) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    write_element(&doc.root, &mut out);
    out
}

/// Serializes a lone element (no declaration).
pub fn element_to_string(element: &XmlElement) -> String {
    let mut out = String::new();
    write_element(element, &mut out);
    out
}

fn write_element(element: &XmlElement, out: &mut String) {
    out.push('<');
    out.push_str(&element.name);
    for (name, value) in &element.attributes {
        out.push(' ');
        out.push_str(name);
        out.push_str("=\"");
        escape_into(value, true, out);
        out.push('"');
    }
    if element.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for child in &element.children {
        match child {
            XmlNode::Element(e) => write_element(e, out),
            XmlNode::Text(t) => escape_into(t, false, out),
        }
    }
    out.push_str("</");
    out.push_str(&element.name);
    out.push('>');
}

fn escape_into(text: &str, in_attribute: bool, out: &mut String) {
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attribute => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn roundtrip_preserves_structure() {
        let input = r#"<article year="2005"><title>Data &amp; Spaces</title><e/></article>"#;
        let doc = parse(input).unwrap();
        let serialized = to_xml_string(&doc);
        let reparsed = parse(&serialized).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn escapes_special_characters() {
        let mut e = XmlElement::new("a");
        e.attributes.push(("x".into(), "a\"b<c".into()));
        e.children.push(XmlNode::Text("1 < 2 & 3 > 2".into()));
        let s = element_to_string(&e);
        assert_eq!(s, r#"<a x="a&quot;b&lt;c">1 &lt; 2 &amp; 3 &gt; 2</a>"#);
        // And it survives a reparse.
        let doc = parse(&s).unwrap();
        assert_eq!(doc.root.attr("x"), Some("a\"b<c"));
        assert_eq!(doc.root.direct_text(), "1 < 2 & 3 > 2");
    }

    #[test]
    fn proptest_style_roundtrip_of_nested_docs() {
        // Deterministic pseudo-random nested documents.
        for seed in 0..25u64 {
            let doc = synth_doc(seed);
            let reparsed = parse(&to_xml_string(&doc)).unwrap();
            assert_eq!(doc, reparsed, "seed {seed}");
        }
    }

    fn synth_doc(seed: u64) -> XmlDocument {
        fn build(depth: usize, state: &mut u64) -> XmlElement {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let n_children = if depth >= 3 {
                0
            } else {
                (*state >> 33) as usize % 4
            };
            let mut e = XmlElement::new(format!("e{}", (*state >> 20) % 10));
            if (*state).is_multiple_of(2) {
                e.attributes
                    .push((format!("a{}", *state % 5), format!("v&{}", *state % 100)));
            }
            for i in 0..n_children {
                if (*state >> i).is_multiple_of(3) {
                    e.children
                        .push(XmlNode::Text(format!("text<{}>", *state % 50)));
                }
                e.children.push(XmlNode::Element(build(depth + 1, state)));
            }
            e
        }
        let mut state = seed.wrapping_add(17);
        XmlDocument {
            root: build(0, &mut state),
        }
    }
}
