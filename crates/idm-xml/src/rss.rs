//! RSS/ATOM feeds (Section 3.4, Table 1 class `rssatom`).
//!
//! The paper observes (footnote 5) that RSS/ATOM "streams" are really
//! just XML documents republished on a web server with no change
//! notifications — clients must poll. This module models exactly that: a
//! [`FeedServer`] publishes feed documents at URLs; the stream substrate
//! (`idm-streams`) polls it and converts new entries into `xmldoc`
//! resource views, forming the infinite `rssatom` group sequence.

use std::collections::HashMap;

use idm_core::prelude::*;
use idm_core::value::Timestamp;
use parking_lot::RwLock;

use crate::parser::{parse, XmlDocument, XmlElement, XmlNode};
use crate::writer::to_xml_string;

/// One feed entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedItem {
    /// Entry title.
    pub title: String,
    /// Entry author.
    pub author: String,
    /// Publication timestamp.
    pub published: Timestamp,
    /// Entry body text.
    pub body: String,
}

/// A feed: a titled sequence of items, newest last.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Feed {
    /// Feed title.
    pub title: String,
    /// Items in publication order.
    pub items: Vec<FeedItem>,
}

impl Feed {
    /// A new, empty feed.
    pub fn new(title: impl Into<String>) -> Self {
        Feed {
            title: title.into(),
            items: Vec::new(),
        }
    }

    /// Serializes the feed as an RSS-flavored XML document.
    pub fn to_xml(&self) -> String {
        let mut channel = XmlElement::new("channel");
        let mut title = XmlElement::new("title");
        title.children.push(XmlNode::Text(self.title.clone()));
        channel.children.push(XmlNode::Element(title));
        for item in &self.items {
            let mut e = XmlElement::new("item");
            e.attributes
                .push(("published".into(), item.published.0.to_string()));
            for (tag, value) in [
                ("title", &item.title),
                ("author", &item.author),
                ("description", &item.body),
            ] {
                let mut c = XmlElement::new(tag);
                c.children.push(XmlNode::Text(value.clone()));
                e.children.push(XmlNode::Element(c));
            }
            channel.children.push(XmlNode::Element(e));
        }
        let mut rss = XmlElement::new("rss");
        rss.attributes.push(("version".into(), "2.0".into()));
        rss.children.push(XmlNode::Element(channel));
        to_xml_string(&XmlDocument { root: rss })
    }

    /// Parses a feed from its XML serialization.
    pub fn from_xml(xml: &str) -> Result<Feed> {
        let doc = parse(xml).map_err(|e| IdmError::Parse {
            detail: e.to_string(),
        })?;
        let channel = doc
            .root
            .child_named("channel")
            .ok_or_else(|| IdmError::Parse {
                detail: "rss: missing <channel>".into(),
            })?;
        let mut feed = Feed::new(
            channel
                .child_named("title")
                .map(|t| t.direct_text())
                .unwrap_or_default(),
        );
        for item in channel.child_elements().filter(|e| e.name == "item") {
            let text_of = |tag: &str| {
                item.child_named(tag)
                    .map(|e| e.direct_text())
                    .unwrap_or_default()
            };
            let published = item
                .attr("published")
                .and_then(|p| p.parse::<i64>().ok())
                .map(Timestamp)
                .unwrap_or_default();
            feed.items.push(FeedItem {
                title: text_of("title"),
                author: text_of("author"),
                published,
                body: text_of("description"),
            });
        }
        Ok(feed)
    }
}

/// A simulated web server publishing feeds at URLs. Poll-only, like real
/// RSS servers: there is no way to subscribe for notifications.
#[derive(Default)]
pub struct FeedServer {
    feeds: RwLock<HashMap<String, Feed>>,
    #[cfg(feature = "fault-injection")]
    faults: FaultPoint,
}

impl FeedServer {
    /// An empty server.
    pub fn new() -> Self {
        FeedServer::default()
    }

    /// Installs a fault plan on this server's fetches; returns the
    /// injector for call/fault counting.
    #[cfg(feature = "fault-injection")]
    pub fn install_faults(&self, plan: FaultPlan) -> std::sync::Arc<FaultInjector> {
        self.faults.install(plan)
    }

    /// Removes any installed fault plan (the server heals).
    #[cfg(feature = "fault-injection")]
    pub fn clear_faults(&self) {
        self.faults.clear()
    }

    #[cfg(feature = "fault-injection")]
    fn fault_check(&self, op: &str) -> Result<FaultAction> {
        self.faults.check("rss", op)
    }

    #[cfg(not(feature = "fault-injection"))]
    #[inline(always)]
    fn fault_check(&self, _op: &str) -> Result<FaultAction> {
        Ok(FaultAction::Proceed)
    }

    /// Creates (or replaces) the feed at `url`.
    pub fn publish(&self, url: impl Into<String>, feed: Feed) {
        self.feeds.write().insert(url.into(), feed);
    }

    /// Appends an item to the feed at `url` (creating the feed if new),
    /// like a blog posting a new entry.
    pub fn append_item(&self, url: &str, item: FeedItem) {
        let mut feeds = self.feeds.write();
        feeds
            .entry(url.to_owned())
            .or_insert_with(|| Feed::new(url.to_owned()))
            .items
            .push(item);
    }

    /// Fetches the current document at `url` (one HTTP GET's worth).
    pub fn fetch(&self, url: &str) -> Result<String> {
        let action = self.fault_check("fetch")?;
        let mut xml = self
            .feeds
            .read()
            .get(url)
            .map(Feed::to_xml)
            .ok_or_else(|| IdmError::provider(format!("feed server: 404 for '{url}'")))?;
        // Torn read: the HTTP response was cut short mid-document.
        if let FaultAction::Truncate(keep) = action {
            let keep = xml
                .char_indices()
                .map(|(i, _)| i)
                .take_while(|i| *i <= keep)
                .last()
                .unwrap_or(0);
            xml.truncate(keep);
        }
        Ok(xml)
    }

    /// Number of items currently in the feed at `url`.
    pub fn item_count(&self, url: &str) -> usize {
        self.feeds
            .read()
            .get(url)
            .map(|f| f.items.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(i: usize) -> FeedItem {
        FeedItem {
            title: format!("Post {i}"),
            author: "jens".into(),
            published: Timestamp(1_000 + i as i64),
            body: format!("body of post {i} & more"),
        }
    }

    #[test]
    fn feed_xml_roundtrip() {
        let mut feed = Feed::new("DB group news");
        feed.items.push(item(1));
        feed.items.push(item(2));
        let xml = feed.to_xml();
        let parsed = Feed::from_xml(&xml).unwrap();
        assert_eq!(parsed, feed);
    }

    #[test]
    fn server_is_poll_based() {
        let server = FeedServer::new();
        server.publish("http://feeds.example.org/db", Feed::new("db"));
        assert_eq!(server.item_count("http://feeds.example.org/db"), 0);

        server.append_item("http://feeds.example.org/db", item(1));
        // The client sees the change only by fetching again.
        let xml = server.fetch("http://feeds.example.org/db").unwrap();
        let feed = Feed::from_xml(&xml).unwrap();
        assert_eq!(feed.items.len(), 1);

        server.append_item("http://feeds.example.org/db", item(2));
        let feed = Feed::from_xml(&server.fetch("http://feeds.example.org/db").unwrap()).unwrap();
        assert_eq!(feed.items.len(), 2);
    }

    #[test]
    fn fetch_unknown_url_is_404() {
        let server = FeedServer::new();
        assert!(server.fetch("http://nowhere/").is_err());
    }
}
