//! RFC-822-style message parsing and serialization with MIME multipart
//! attachments — the format the simulated IMAP server stores and the
//! Email2iDM converter consumes.

use bytes::Bytes;
use idm_core::prelude::*;
use idm_core::value::Timestamp;

use crate::base64;

/// An attachment: a filename plus bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attachment {
    /// The attachment filename, e.g. `vldb2006.tex`.
    pub filename: String,
    /// Raw content bytes.
    pub content: Bytes,
}

/// A parsed email message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EmailMessage {
    /// `Subject:` header.
    pub subject: String,
    /// `From:` header.
    pub from: String,
    /// `To:` header.
    pub to: String,
    /// Parsed `Date:` header.
    pub date: Timestamp,
    /// The text body.
    pub body: String,
    /// MIME attachments, in order.
    pub attachments: Vec<Attachment>,
}

impl EmailMessage {
    /// Total content size: body plus attachments.
    pub fn content_size(&self) -> usize {
        self.body.len()
            + self
                .attachments
                .iter()
                .map(|a| a.content.len())
                .sum::<usize>()
    }

    /// Serializes to RFC-822-style wire bytes. Messages without
    /// attachments are plain text; with attachments they become
    /// `multipart/mixed` with base64-encoded attachment parts.
    pub fn to_wire(&self) -> String {
        let date = format_date(self.date);
        let mut out = String::new();
        out.push_str(&format!("From: {}\r\n", self.from));
        out.push_str(&format!("To: {}\r\n", self.to));
        out.push_str(&format!("Subject: {}\r\n", self.subject));
        out.push_str(&format!("Date: {date}\r\n"));
        if self.attachments.is_empty() {
            out.push_str("Content-Type: text/plain; charset=utf-8\r\n\r\n");
            out.push_str(&self.body);
            return out;
        }
        let boundary = "=-imemex-boundary-7d1";
        out.push_str(&format!(
            "Content-Type: multipart/mixed; boundary=\"{boundary}\"\r\n\r\n"
        ));
        out.push_str(&format!("--{boundary}\r\n"));
        out.push_str("Content-Type: text/plain; charset=utf-8\r\n\r\n");
        out.push_str(&self.body);
        out.push_str("\r\n");
        for attachment in &self.attachments {
            out.push_str(&format!("--{boundary}\r\n"));
            out.push_str("Content-Type: application/octet-stream\r\n");
            out.push_str("Content-Transfer-Encoding: base64\r\n");
            out.push_str(&format!(
                "Content-Disposition: attachment; filename=\"{}\"\r\n\r\n",
                attachment.filename
            ));
            out.push_str(&base64::encode(&attachment.content));
            out.push_str("\r\n");
        }
        out.push_str(&format!("--{boundary}--\r\n"));
        out
    }

    /// Parses wire bytes back into a message.
    pub fn from_wire(raw: &str) -> Result<EmailMessage> {
        let (headers, body) = split_headers(raw)?;
        let header = |name: &str| -> String {
            headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        let mut message = EmailMessage {
            subject: header("Subject"),
            from: header("From"),
            to: header("To"),
            date: parse_date(&header("Date")).unwrap_or_default(),
            body: String::new(),
            attachments: Vec::new(),
        };

        let content_type = header("Content-Type");
        if let Some(boundary) = extract_boundary(&content_type) {
            parse_multipart(body, &boundary, &mut message)?;
        } else {
            message.body = body.to_owned();
        }
        Ok(message)
    }
}

fn split_headers(raw: &str) -> Result<(Vec<(String, String)>, &str)> {
    let (head, body) = match raw.find("\r\n\r\n") {
        Some(i) => (&raw[..i], &raw[i + 4..]),
        None => match raw.find("\n\n") {
            Some(i) => (&raw[..i], &raw[i + 2..]),
            None => (raw, ""),
        },
    };
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in head.lines() {
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            // Folded header continuation.
            if let Some((_, value)) = headers.last_mut() {
                value.push(' ');
                value.push_str(line.trim());
                continue;
            }
        }
        let (name, value) = line.split_once(':').ok_or_else(|| IdmError::Parse {
            detail: format!("malformed header line '{line}'"),
        })?;
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
    }
    Ok((headers, body))
}

fn extract_boundary(content_type: &str) -> Option<String> {
    if !content_type.to_ascii_lowercase().contains("multipart") {
        return None;
    }
    let idx = content_type.to_ascii_lowercase().find("boundary=")?;
    let rest = &content_type[idx + "boundary=".len()..];
    let boundary = if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()?
    } else {
        rest.split(';').next()?.trim()
    };
    Some(boundary.to_owned())
}

fn parse_multipart(body: &str, boundary: &str, message: &mut EmailMessage) -> Result<()> {
    let delim = format!("--{boundary}");
    let closing = format!("--{boundary}--");
    let mut parts: Vec<&str> = Vec::new();
    let mut rest = body;
    // Skip preamble up to the first delimiter.
    while let Some(i) = rest.find(&delim) {
        let after = &rest[i + delim.len()..];
        if rest[i..].starts_with(&closing) {
            break;
        }
        let after = after
            .strip_prefix("\r\n")
            .or_else(|| after.strip_prefix('\n'))
            .unwrap_or(after);
        let end = after.find(&delim).unwrap_or(after.len());
        // Strip exactly the one line break that precedes the next
        // boundary delimiter (the part body itself may end in newlines).
        let part = after[..end]
            .strip_suffix("\r\n")
            .or_else(|| after[..end].strip_suffix('\n'))
            .unwrap_or(&after[..end]);
        parts.push(part);
        rest = &after[end..];
        if rest.starts_with(&closing) {
            break;
        }
    }

    for part in parts {
        let (headers, part_body) = split_headers(part)?;
        let header = |name: &str| -> String {
            headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        let disposition = header("Content-Disposition");
        if disposition.to_ascii_lowercase().contains("attachment") {
            let filename = disposition
                .split("filename=")
                .nth(1)
                .map(|f| f.trim_matches(['"', ' ', ';']).to_owned())
                .unwrap_or_else(|| "attachment".to_owned());
            let encoding = header("Content-Transfer-Encoding");
            let content = if encoding.eq_ignore_ascii_case("base64") {
                Bytes::from(base64::decode(part_body).map_err(|e| IdmError::Parse {
                    detail: format!("attachment '{filename}': {e}"),
                })?)
            } else {
                Bytes::from(part_body.as_bytes().to_vec())
            };
            message.attachments.push(Attachment { filename, content });
        } else {
            // Body part.
            if message.body.is_empty() {
                message.body = part_body.to_owned();
            } else {
                message.body.push('\n');
                message.body.push_str(part_body);
            }
        }
    }
    Ok(())
}

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Formats `12 Jun 2005 16:14:02` (a UTC-only RFC 2822 subset).
pub fn format_date(t: Timestamp) -> String {
    let (y, mo, d) = t.to_ymd();
    let (h, mi, s) = t.to_hms();
    format!(
        "{d} {} {y} {h:02}:{mi:02}:{s:02}",
        MONTHS[(mo - 1) as usize]
    )
}

/// Parses the [`format_date`] shape (weekday prefixes and zone suffixes
/// tolerated and ignored: everything is UTC in the simulation).
pub fn parse_date(text: &str) -> Result<Timestamp> {
    let text = text.trim();
    // Strip an optional leading "Mon, " weekday.
    let text = match text.split_once(", ") {
        Some((_weekday, rest)) => rest,
        None => text,
    };
    let mut parts = text.split_whitespace();
    let (day, month, year, time) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(d), Some(m), Some(y), Some(t)) => (d, m, y, t),
        _ => {
            return Err(IdmError::Parse {
                detail: format!("bad date '{text}'"),
            })
        }
    };
    let month_num = MONTHS
        .iter()
        .position(|m| m.eq_ignore_ascii_case(month))
        .ok_or_else(|| IdmError::Parse {
            detail: format!("bad month '{month}'"),
        })? as u32
        + 1;
    let mut hms = time.split(':');
    let (h, mi, s) = match (hms.next(), hms.next(), hms.next()) {
        (Some(h), Some(m), Some(s)) => (h, m, s),
        _ => {
            return Err(IdmError::Parse {
                detail: format!("bad time '{time}'"),
            })
        }
    };
    let parse_num = |s: &str, what: &str| -> Result<u32> {
        s.parse().map_err(|_| IdmError::Parse {
            detail: format!("bad {what} '{s}'"),
        })
    };
    Timestamp::from_ymd_hms(
        parse_num(year, "year")? as i32,
        month_num,
        parse_num(day, "day")?,
        parse_num(h, "hour")?,
        parse_num(mi, "minute")?,
        parse_num(s, "second")?,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EmailMessage {
        EmailMessage {
            subject: "OLAP project figures".into(),
            from: "jens.dittrich@inf.ethz.ch".into(),
            to: "marcos@inf.ethz.ch".into(),
            date: Timestamp::from_ymd_hms(2005, 9, 22, 16, 14, 2).unwrap(),
            body: "Please find the indexing time figure attached.".into(),
            attachments: vec![
                Attachment {
                    filename: "olap.tex".into(),
                    content: Bytes::from_static(b"\\section{Results}"),
                },
                Attachment {
                    filename: "data.bin".into(),
                    content: Bytes::from(vec![0u8, 255, 128, 7]),
                },
            ],
        }
    }

    #[test]
    fn wire_roundtrip_with_attachments() {
        let message = sample();
        let wire = message.to_wire();
        let parsed = EmailMessage::from_wire(&wire).unwrap();
        assert_eq!(parsed, message);
    }

    #[test]
    fn wire_roundtrip_plain() {
        let message = EmailMessage {
            subject: "hello".into(),
            from: "a@b".into(),
            to: "c@d".into(),
            date: Timestamp::from_ymd(2005, 1, 2).unwrap(),
            body: "just text\r\nwith two lines".into(),
            attachments: vec![],
        };
        let parsed = EmailMessage::from_wire(&message.to_wire()).unwrap();
        assert_eq!(parsed, message);
    }

    #[test]
    fn date_roundtrip() {
        let t = Timestamp::from_ymd_hms(2005, 6, 12, 23, 59, 58).unwrap();
        assert_eq!(parse_date(&format_date(t)).unwrap(), t);
        // Weekday prefix tolerated.
        assert_eq!(parse_date("Sun, 12 Jun 2005 23:59:58").unwrap(), t);
        assert!(parse_date("not a date").is_err());
    }

    #[test]
    fn folded_headers_unfold() {
        let raw = "Subject: a very\r\n long subject\r\nFrom: x@y\r\nTo: z@w\r\nDate: 1 Jan 2005 00:00:00\r\n\r\nbody";
        let m = EmailMessage::from_wire(raw).unwrap();
        assert_eq!(m.subject, "a very long subject");
        assert_eq!(m.body, "body");
    }

    #[test]
    fn content_size_counts_attachments() {
        let m = sample();
        assert_eq!(
            m.content_size(),
            m.body.len() + "\\section{Results}".len() + 4
        );
    }

    #[test]
    fn malformed_header_rejected() {
        assert!(EmailMessage::from_wire("NoColonHere\r\n\r\nbody").is_err());
    }

    #[test]
    fn missing_headers_default_empty() {
        let m = EmailMessage::from_wire("Subject: s\r\n\r\nb").unwrap();
        assert_eq!(m.from, "");
        assert_eq!(m.date, Timestamp::default());
        assert_eq!(m.body, "b");
    }
}
