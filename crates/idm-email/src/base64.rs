//! A from-scratch Base64 codec (RFC 4648, standard alphabet with
//! padding) for MIME `Content-Transfer-Encoding: base64` parts.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as Base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3F] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3F] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3F] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 0x3F] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes Base64 text (whitespace tolerated, padding required for the
/// final quantum when the length demands it).
pub fn decode(text: &str) -> Result<Vec<u8>, String> {
    fn value(c: u8) -> Result<u32, String> {
        match c {
            b'A'..=b'Z' => Ok(u32::from(c - b'A')),
            b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(format!("invalid base64 character '{}'", c as char)),
        }
    }

    let cleaned: Vec<u8> = text.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    let mut out = Vec::with_capacity(cleaned.len() / 4 * 3);
    for quad in cleaned.chunks(4) {
        if quad.len() < 2 {
            return Err("truncated base64 quantum".into());
        }
        let pads = quad.iter().rev().take_while(|&&c| c == b'=').count();
        if pads > 2 {
            return Err("malformed base64 padding".into());
        }
        // Unpadded final quanta of length 2 or 3 are tolerated.
        let digits = quad.len() - pads;
        if digits < 2 {
            return Err("malformed base64 padding".into());
        }
        let mut triple = 0u32;
        for (i, &c) in quad.iter().enumerate().take(digits) {
            if c == b'=' {
                return Err("padding inside base64 quantum".into());
            }
            triple |= value(c)? << (18 - 6 * i);
        }
        out.push((triple >> 16) as u8);
        if digits > 2 {
            out.push((triple >> 8) as u8);
        }
        if digits > 3 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        let vectors = [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, encoded) in vectors {
            assert_eq!(encode(plain.as_bytes()), encoded);
            assert_eq!(decode(encoded).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn roundtrip_binary() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(decode("Zm9v\r\nYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn invalid_input_rejected() {
        assert!(decode("Zm9v!").is_err());
        assert!(decode("Z").is_err());
        assert!(decode("Z===").is_err());
        assert!(decode("=Zm9").is_err());
    }
}
