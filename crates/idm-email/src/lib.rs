//! # idm-email — email for the iMeMex dataspace
//!
//! The paper's evaluation indexes 6,335 messages from a remote IMAP
//! server, and Section 4.4.1 develops email as the canonical *infinite*
//! group component (Option 1: model the INBOX **state**; Option 2: model
//! the message **stream**). This crate builds the whole substrate from
//! scratch:
//!
//! - [`base64`] — a from-scratch Base64 codec (MIME transfer encoding),
//! - [`message`] — an RFC-822-style header + MIME multipart parser and
//!   serializer (subject/from/to/date headers, text bodies, attachments),
//! - [`imap`] — a simulated IMAP server: a mailbox tree, per-operation
//!   **latency model** standing in for the network round-trips that
//!   dominate the paper's email indexing time (Figure 5), and
//!   notifications,
//! - [`convert`] — Email2iDM: mailboxes become `mailfolder` views,
//!   messages `emailmessage` views, attachments `attachment` (file)
//!   views — plus both INBOX modeling options, including the Option 2
//!   infinite message stream.

#![warn(missing_docs)]

pub mod base64;
pub mod convert;
pub mod imap;
pub mod message;

pub use imap::{ImapServer, LatencyModel, MailboxId, Uid};
pub use message::{Attachment, EmailMessage};
