//! A simulated IMAP server with a latency model.
//!
//! The paper's email source lives on a *remote* server: Figure 5 shows
//! email indexing time dominated by data source access (network round
//! trips + transfer), unlike the local filesystem. The latency model
//! reproduces that cost structure deterministically: every operation
//! pays a fixed per-round-trip cost plus a per-byte transfer cost.
//! `LatencyModel::none()` turns the simulation off for unit tests.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use idm_core::prelude::*;
use parking_lot::{Mutex, RwLock};

use crate::message::EmailMessage;

/// Identifier of a mailbox on one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MailboxId(u32);

impl MailboxId {
    /// Raw accessor.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for MailboxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mbox{}", self.0)
    }
}

/// Message unique id (per server, monotonically increasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uid(pub u64);

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid{}", self.0)
    }
}

/// The deterministic latency model for remote operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Cost per round trip (LIST, FETCH, APPEND, …).
    pub per_op: Duration,
    /// Transfer cost per byte fetched.
    pub per_byte: Duration,
}

impl LatencyModel {
    /// No simulated latency (unit tests).
    pub fn none() -> Self {
        LatencyModel {
            per_op: Duration::ZERO,
            per_byte: Duration::ZERO,
        }
    }

    /// A scaled-down "2005 IMAP over DSL" model: the ratio between
    /// round-trip and transfer cost mirrors the setting in which the
    /// paper's email indexing was dominated by data source access.
    pub fn remote_2005(scale: f64) -> Self {
        LatencyModel {
            per_op: Duration::from_nanos((400_000.0 * scale) as u64),
            per_byte: Duration::from_nanos((120.0 * scale).max(0.0) as u64),
        }
    }

    fn charge(&self, bytes: usize) -> Duration {
        self.per_op + self.per_byte * (bytes as u32)
    }
}

/// Events emitted when the mail store changes (new message, deletion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MailEvent {
    /// A message arrived in a mailbox.
    Delivered(MailboxId, Uid),
    /// A message was deleted from a mailbox.
    Deleted(MailboxId, Uid),
}

struct Mailbox {
    name: String,
    children: Vec<MailboxId>,
    /// Message uids in arrival order (the INBOX "window" of Section 4.4.1).
    messages: Vec<Uid>,
}

struct ServerInner {
    mailboxes: Vec<Mailbox>,
    /// Message wire bytes by uid.
    store: HashMap<Uid, String>,
    next_uid: u64,
}

/// Busy-waits short costs (thread::sleep granularity would distort
/// sub-millisecond simulated latencies), sleeps long ones.
fn wait_for(cost: std::time::Duration) {
    if cost >= std::time::Duration::from_millis(5) {
        std::thread::sleep(cost);
    } else {
        let start = std::time::Instant::now();
        while start.elapsed() < cost {
            std::hint::spin_loop();
        }
    }
}

/// The simulated IMAP server.
pub struct ImapServer {
    inner: RwLock<ServerInner>,
    latency: LatencyModel,
    /// Accumulated simulated latency, for benchmarks that want to report
    /// simulated time rather than sleeping (`charge_only` mode).
    simulated: Mutex<Duration>,
    sleep: bool,
    subscribers: Mutex<Vec<Sender<MailEvent>>>,
    #[cfg(feature = "fault-injection")]
    faults: FaultPoint,
}

impl ImapServer {
    /// A server with the given latency model. `sleep` chooses whether
    /// latency is really slept (realistic end-to-end timing) or only
    /// accounted (fast tests that still want the bookkeeping).
    pub fn new(latency: LatencyModel, sleep: bool) -> Self {
        ImapServer {
            inner: RwLock::new(ServerInner {
                mailboxes: vec![Mailbox {
                    name: "INBOX".to_owned(),
                    children: Vec::new(),
                    messages: Vec::new(),
                }],
                store: HashMap::new(),
                next_uid: 1,
            }),
            latency,
            simulated: Mutex::new(Duration::ZERO),
            sleep,
            subscribers: Mutex::new(Vec::new()),
            #[cfg(feature = "fault-injection")]
            faults: FaultPoint::new(),
        }
    }

    /// Installs a fault plan on this server's protocol round trips;
    /// returns the injector for call/fault counting.
    #[cfg(feature = "fault-injection")]
    pub fn install_faults(&self, plan: FaultPlan) -> std::sync::Arc<FaultInjector> {
        self.faults.install(plan)
    }

    /// Removes any installed fault plan (the link heals).
    #[cfg(feature = "fault-injection")]
    pub fn clear_faults(&self) {
        self.faults.clear()
    }

    #[cfg(feature = "fault-injection")]
    fn fault_check(&self, op: &str) -> Result<FaultAction> {
        self.faults.check("imap", op)
    }

    #[cfg(not(feature = "fault-injection"))]
    #[inline(always)]
    fn fault_check(&self, _op: &str) -> Result<FaultAction> {
        Ok(FaultAction::Proceed)
    }

    /// A latency-free server for tests.
    pub fn in_process() -> Self {
        ImapServer::new(LatencyModel::none(), false)
    }

    /// The root mailbox (`INBOX`).
    pub fn inbox(&self) -> MailboxId {
        MailboxId(0)
    }

    fn pay(&self, bytes: usize) {
        let cost = self.latency.charge(bytes);
        if cost.is_zero() {
            return;
        }
        *self.simulated.lock() += cost;
        if self.sleep {
            wait_for(cost);
        }
    }

    /// Total simulated latency accumulated so far.
    pub fn simulated_latency(&self) -> Duration {
        *self.simulated.lock()
    }

    /// Resets the simulated latency counter.
    pub fn reset_simulated_latency(&self) {
        *self.simulated.lock() = Duration::ZERO;
    }

    /// Subscribes to delivery/deletion notifications. (Real 2005 IMAP
    /// lacked useful push — the paper's Option 2 bypasses the state
    /// window — so this models the notification service the paper's
    /// Synchronization Manager would subscribe to where available.)
    pub fn subscribe(&self) -> Receiver<MailEvent> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    fn emit(&self, event: MailEvent) {
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| tx.send(event).is_ok());
    }

    /// Creates a sub-mailbox.
    pub fn create_mailbox(&self, parent: MailboxId, name: &str) -> Result<MailboxId> {
        self.pay(0);
        let mut inner = self.inner.write();
        if inner.mailboxes.get(parent.0 as usize).is_none() {
            return Err(IdmError::provider(format!("imap: no mailbox {parent}")));
        }
        let id = MailboxId(inner.mailboxes.len() as u32);
        inner.mailboxes.push(Mailbox {
            name: name.to_owned(),
            children: Vec::new(),
            messages: Vec::new(),
        });
        inner.mailboxes[parent.0 as usize].children.push(id);
        Ok(id)
    }

    /// Lists sub-mailboxes of `parent` as `(id, name)` pairs.
    pub fn list_mailboxes(&self, parent: MailboxId) -> Result<Vec<(MailboxId, String)>> {
        self.fault_check("list_mailboxes")?;
        self.pay(0);
        let inner = self.inner.read();
        let mailbox = inner
            .mailboxes
            .get(parent.0 as usize)
            .ok_or_else(|| IdmError::provider(format!("imap: no mailbox {parent}")))?;
        Ok(mailbox
            .children
            .iter()
            .map(|c| (*c, inner.mailboxes[c.0 as usize].name.clone()))
            .collect())
    }

    /// A mailbox's name.
    pub fn mailbox_name(&self, id: MailboxId) -> Result<String> {
        let inner = self.inner.read();
        inner
            .mailboxes
            .get(id.0 as usize)
            .map(|m| m.name.clone())
            .ok_or_else(|| IdmError::provider(format!("imap: no mailbox {id}")))
    }

    /// Delivers a message into a mailbox; returns its uid.
    pub fn append(&self, mailbox: MailboxId, message: &EmailMessage) -> Result<Uid> {
        self.fault_check("append")?;
        let wire = message.to_wire();
        self.pay(wire.len());
        let uid = {
            let mut inner = self.inner.write();
            if inner.mailboxes.get(mailbox.0 as usize).is_none() {
                return Err(IdmError::provider(format!("imap: no mailbox {mailbox}")));
            }
            let uid = Uid(inner.next_uid);
            inner.next_uid += 1;
            inner.store.insert(uid, wire);
            inner.mailboxes[mailbox.0 as usize].messages.push(uid);
            uid
        };
        self.emit(MailEvent::Delivered(mailbox, uid));
        Ok(uid)
    }

    /// Lists message uids in a mailbox (one LIST round trip).
    pub fn list_messages(&self, mailbox: MailboxId) -> Result<Vec<Uid>> {
        self.fault_check("list_messages")?;
        self.pay(0);
        let inner = self.inner.read();
        inner
            .mailboxes
            .get(mailbox.0 as usize)
            .map(|m| m.messages.clone())
            .ok_or_else(|| IdmError::provider(format!("imap: no mailbox {mailbox}")))
    }

    /// Fetches a message (one FETCH round trip paying transfer cost).
    pub fn fetch(&self, uid: Uid) -> Result<EmailMessage> {
        let action = self.fault_check("fetch")?;
        let mut wire = {
            let inner = self.inner.read();
            inner
                .store
                .get(&uid)
                .cloned()
                .ok_or_else(|| IdmError::provider(format!("imap: no message {uid}")))?
        };
        // Torn read: the FETCH transfer was cut short mid-wire.
        if let FaultAction::Truncate(keep) = action {
            let keep = wire
                .char_indices()
                .map(|(i, _)| i)
                .take_while(|i| *i <= keep)
                .last()
                .unwrap_or(0);
            wire.truncate(keep);
        }
        self.pay(wire.len());
        EmailMessage::from_wire(&wire)
    }

    /// Fetches only a message's wire size (header-level round trip).
    pub fn fetch_size(&self, uid: Uid) -> Result<usize> {
        self.fault_check("fetch_size")?;
        self.pay(0);
        let inner = self.inner.read();
        inner
            .store
            .get(&uid)
            .map(String::len)
            .ok_or_else(|| IdmError::provider(format!("imap: no message {uid}")))
    }

    /// Deletes a message from a mailbox.
    pub fn delete(&self, mailbox: MailboxId, uid: Uid) -> Result<()> {
        self.fault_check("delete")?;
        self.pay(0);
        {
            let mut inner = self.inner.write();
            let mbox = inner
                .mailboxes
                .get_mut(mailbox.0 as usize)
                .ok_or_else(|| IdmError::provider(format!("imap: no mailbox {mailbox}")))?;
            let before = mbox.messages.len();
            mbox.messages.retain(|u| *u != uid);
            if mbox.messages.len() == before {
                return Err(IdmError::provider(format!("imap: {uid} not in {mailbox}")));
            }
            inner.store.remove(&uid);
        }
        self.emit(MailEvent::Deleted(mailbox, uid));
        Ok(())
    }

    /// Total number of stored messages across all mailboxes.
    pub fn message_count(&self) -> usize {
        self.inner.read().store.len()
    }

    /// Sum of wire sizes of all stored messages, in bytes.
    pub fn total_wire_bytes(&self) -> usize {
        self.inner.read().store.values().map(String::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_core::value::Timestamp;

    fn msg(subject: &str) -> EmailMessage {
        EmailMessage {
            subject: subject.into(),
            from: "a@b".into(),
            to: "c@d".into(),
            date: Timestamp::from_ymd(2005, 6, 1).unwrap(),
            body: "body".into(),
            attachments: vec![],
        }
    }

    #[test]
    fn mailbox_tree_and_messages() {
        let server = ImapServer::in_process();
        let projects = server.create_mailbox(server.inbox(), "Projects").unwrap();
        let olap = server.create_mailbox(projects, "OLAP").unwrap();
        assert_eq!(
            server.list_mailboxes(server.inbox()).unwrap(),
            vec![(projects, "Projects".to_owned())]
        );

        let uid = server.append(olap, &msg("figures")).unwrap();
        assert_eq!(server.list_messages(olap).unwrap(), vec![uid]);
        let fetched = server.fetch(uid).unwrap();
        assert_eq!(fetched.subject, "figures");
        assert_eq!(server.message_count(), 1);
    }

    #[test]
    fn delete_removes_and_notifies() {
        let server = ImapServer::in_process();
        let rx = server.subscribe();
        let uid = server.append(server.inbox(), &msg("x")).unwrap();
        server.delete(server.inbox(), uid).unwrap();
        assert!(server.fetch(uid).is_err());
        assert!(server.delete(server.inbox(), uid).is_err());
        let events: Vec<MailEvent> = rx.try_iter().collect();
        assert_eq!(
            events,
            vec![
                MailEvent::Delivered(MailboxId(0), uid),
                MailEvent::Deleted(MailboxId(0), uid)
            ]
        );
    }

    #[test]
    fn latency_is_accounted() {
        let server = ImapServer::new(
            LatencyModel {
                per_op: Duration::from_micros(100),
                per_byte: Duration::from_nanos(10),
            },
            false, // account only, don't sleep
        );
        let uid = server.append(server.inbox(), &msg("x")).unwrap();
        let after_append = server.simulated_latency();
        assert!(after_append >= Duration::from_micros(100));
        server.fetch(uid).unwrap();
        assert!(server.simulated_latency() > after_append);
        server.reset_simulated_latency();
        assert_eq!(server.simulated_latency(), Duration::ZERO);
    }

    #[test]
    fn uids_are_unique_across_mailboxes() {
        let server = ImapServer::in_process();
        let a = server.create_mailbox(server.inbox(), "a").unwrap();
        let u1 = server.append(server.inbox(), &msg("1")).unwrap();
        let u2 = server.append(a, &msg("2")).unwrap();
        assert_ne!(u1, u2);
    }

    #[test]
    fn unknown_ids_error() {
        let server = ImapServer::in_process();
        assert!(server.list_messages(MailboxId(9)).is_err());
        assert!(server.fetch(Uid(42)).is_err());
        assert!(server.create_mailbox(MailboxId(9), "x").is_err());
    }
}
