//! Email2iDM: instantiating email in the resource view graph.
//!
//! - A mailbox becomes a `mailfolder` view whose set `S` holds its
//!   sub-mailboxes and messages.
//! - A message becomes an `emailmessage` view: `η` = subject, `τ` =
//!   (from, to, date, size), `χ` = the body text, `γ` = attachments.
//! - An attachment becomes an `attachment` (a `file` specialization)
//!   view whose tuple mimics `W_FS` so attachments answer the same
//!   queries as filesystem files — the Example 2 ("files versus email
//!   attachments") requirement. Content converters (XML/LaTeX) can then
//!   enrich attachments exactly like files, which Q8 relies on.
//!
//! Section 4.4.1's two INBOX models are both provided:
//! [`materialize_mailbox`] snapshots the **state** (Option 1), and
//! [`InboxStreamSource`] is the infinite message **stream** (Option 2) —
//! delivered messages are consumed and cannot be pulled twice.

use std::sync::Arc;

use idm_core::class::builtin::names;
use idm_core::prelude::*;
use parking_lot::Mutex;

use crate::imap::{ImapServer, MailboxId, Uid};
use crate::message::EmailMessage;

/// Instantiates one message (and its attachments) as resource views.
pub fn message_to_views(store: &ViewStore, message: &EmailMessage) -> Result<Vid> {
    let attachment_class = store.classes().require(names::ATTACHMENT)?;
    let mut attachment_vids = Vec::with_capacity(message.attachments.len());
    for attachment in &message.attachments {
        let tuple = TupleComponent::of(vec![
            ("size", Value::Integer(attachment.content.len() as i64)),
            ("creation time", Value::Date(message.date)),
            ("last modified time", Value::Date(message.date)),
        ]);
        attachment_vids.push(
            store
                .build(attachment.filename.clone())
                .tuple(tuple)
                .content(Content::inline(attachment.content.clone()))
                .class(attachment_class)
                .insert(),
        );
    }
    let tuple = TupleComponent::of(vec![
        ("from", Value::Text(message.from.clone())),
        ("to", Value::Text(message.to.clone())),
        ("date", Value::Date(message.date)),
        ("size", Value::Integer(message.content_size() as i64)),
    ]);
    let mut builder = store
        .build(message.subject.clone())
        .tuple(tuple)
        .content(Content::text(message.body.clone()))
        .class_named(names::EMAILMESSAGE);
    if !attachment_vids.is_empty() {
        builder = builder.children(attachment_vids);
    }
    Ok(builder.insert())
}

/// Statistics of a mailbox materialization.
#[derive(Debug, Clone, Copy, Default)]
pub struct MailboxStats {
    /// Mailbox folder views created.
    pub folders: usize,
    /// Message views created.
    pub messages: usize,
    /// Attachment views created.
    pub attachments: usize,
}

/// The node mapping produced by a mailbox materialization: what the
/// email synchronization manager needs to resolve server notifications
/// back to resource views.
#[derive(Debug)]
pub struct MailboxMapping {
    /// The root mailbox view.
    pub root: Vid,
    /// Mailbox → mailfolder view.
    pub folders: std::collections::HashMap<MailboxId, Vid>,
    /// Message uid → emailmessage view.
    pub messages: std::collections::HashMap<Uid, Vid>,
    /// Counters.
    pub stats: MailboxStats,
}

impl Default for MailboxMapping {
    fn default() -> Self {
        MailboxMapping {
            root: Vid::from_raw(u64::MAX),
            folders: Default::default(),
            messages: Default::default(),
            stats: MailboxStats::default(),
        }
    }
}

/// Option 1 — **model the state**: snapshots a mailbox subtree into
/// finite `mailfolder`/`emailmessage` views. The state may be retrieved
/// multiple times; nothing is removed from the server.
pub fn materialize_mailbox(
    server: &ImapServer,
    store: &ViewStore,
    mailbox: MailboxId,
) -> Result<(Vid, MailboxStats)> {
    let mapping = materialize_mailbox_mapped(server, store, mailbox)?;
    Ok((mapping.root, mapping.stats))
}

/// [`materialize_mailbox`] variant returning the full node mapping.
pub fn materialize_mailbox_mapped(
    server: &ImapServer,
    store: &ViewStore,
    mailbox: MailboxId,
) -> Result<MailboxMapping> {
    let mut mapping = MailboxMapping::default();
    let root = materialize_rec(server, store, mailbox, &mut mapping)?;
    mapping.root = root;
    Ok(mapping)
}

fn materialize_rec(
    server: &ImapServer,
    store: &ViewStore,
    mailbox: MailboxId,
    mapping: &mut MailboxMapping,
) -> Result<Vid> {
    let name = server.mailbox_name(mailbox)?;
    let mut children = Vec::new();
    for (sub, _name) in server.list_mailboxes(mailbox)? {
        children.push(materialize_rec(server, store, sub, mapping)?);
    }
    for uid in server.list_messages(mailbox)? {
        let message = server.fetch(uid)?;
        let vid = message_to_views(store, &message)?;
        mapping.stats.messages += 1;
        mapping.stats.attachments += message.attachments.len();
        mapping.messages.insert(uid, vid);
        children.push(vid);
    }
    mapping.stats.folders += 1;
    let mut builder = store.build(name).class_named(names::MAILFOLDER);
    if !children.is_empty() {
        builder = builder.children(children);
    }
    let vid = builder.insert();
    mapping.folders.insert(mailbox, vid);
    Ok(vid)
}

/// Option 2 — **model the stream**: an infinite group sequence of the
/// messages routed to the account. Pulling an element fetches the next
/// unseen message, converts it into views and (matching the paper's
/// "messages delivered by the stream cannot be retrieved a second time")
/// deletes it from the server window.
pub struct InboxStreamSource {
    server: Arc<ImapServer>,
    mailbox: MailboxId,
    /// Uids already delivered to the stream (guards against re-delivery
    /// if deletion is disabled).
    delivered: Mutex<Vec<Uid>>,
    /// Whether pulled messages are removed from the server (the paper's
    /// single-point-of-access mode).
    consume: bool,
}

impl InboxStreamSource {
    /// Creates a stream source over `mailbox`.
    pub fn new(server: Arc<ImapServer>, mailbox: MailboxId, consume: bool) -> Self {
        InboxStreamSource {
            server,
            mailbox,
            delivered: Mutex::new(Vec::new()),
            consume,
        }
    }

    /// Builds the `datstream`-classed view carrying this infinite group.
    pub fn into_stream_view(self, store: &ViewStore) -> Result<Vid> {
        let class = store.classes().require(names::DATSTREAM)?;
        Ok(store
            .build("INBOX message stream")
            .group(Group::infinite(Arc::new(self)))
            .class(class)
            .insert())
    }
}

impl ViewSequenceSource for InboxStreamSource {
    fn try_next(&self, store: &ViewStore) -> Result<Option<Vid>> {
        let mut delivered = self.delivered.lock();
        let next = self
            .server
            .list_messages(self.mailbox)?
            .into_iter()
            .find(|uid| !delivered.contains(uid));
        let Some(uid) = next else {
            return Ok(None);
        };
        let message = self.server.fetch(uid)?;
        delivered.push(uid);
        if self.consume {
            self.server.delete(self.mailbox, uid)?;
        }
        Ok(Some(message_to_views(store, &message)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Attachment;
    use bytes::Bytes;
    use idm_core::graph;

    fn msg(subject: &str, attachments: Vec<Attachment>) -> EmailMessage {
        EmailMessage {
            subject: subject.into(),
            from: "jens.dittrich@inf.ethz.ch".into(),
            to: "marcos@inf.ethz.ch".into(),
            date: Timestamp::from_ymd(2005, 9, 22).unwrap(),
            body: format!("body of {subject}"),
            attachments,
        }
    }

    fn tex_attachment(name: &str) -> Attachment {
        Attachment {
            filename: name.into(),
            content: Bytes::from_static(b"\\section{Results}\nIndexing Time"),
        }
    }

    #[test]
    fn message_views_carry_all_components() {
        let store = ViewStore::new();
        let vid = message_to_views(
            &store,
            &msg("OLAP figures", vec![tex_attachment("olap.tex")]),
        )
        .unwrap();
        assert_eq!(store.name(vid).unwrap().as_deref(), Some("OLAP figures"));
        assert!(store.conforms_to(vid, names::EMAILMESSAGE).unwrap());
        let tuple = store.tuple(vid).unwrap().unwrap();
        assert_eq!(
            tuple.get("from"),
            Some(&Value::Text("jens.dittrich@inf.ethz.ch".into()))
        );
        assert!(tuple.get("size").unwrap().as_integer().unwrap() > 0);
        assert!(store
            .content(vid)
            .unwrap()
            .text_lossy()
            .unwrap()
            .contains("body of OLAP figures"));

        let attachments = store.group(vid).unwrap().finite_members();
        assert_eq!(attachments.len(), 1);
        let att = attachments[0];
        assert!(store.conforms_to(att, names::ATTACHMENT).unwrap());
        assert!(
            store.conforms_to(att, names::FILE).unwrap(),
            "attachments behave like files (Example 2)"
        );
        assert_eq!(store.name(att).unwrap().as_deref(), Some("olap.tex"));
    }

    #[test]
    fn option_1_state_snapshot() {
        let server = ImapServer::in_process();
        let projects = server.create_mailbox(server.inbox(), "Projects").unwrap();
        server
            .append(server.inbox(), &msg("hello", vec![]))
            .unwrap();
        server
            .append(projects, &msg("OLAP", vec![tex_attachment("olap.tex")]))
            .unwrap();

        let store = ViewStore::new();
        let (root, stats) = materialize_mailbox(&server, &store, server.inbox()).unwrap();
        assert_eq!(stats.folders, 2);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.attachments, 1);
        assert!(store.conforms_to(root, names::MAILFOLDER).unwrap());

        // The attachment is reachable from the INBOX view (boundary gone).
        let all = graph::descendants(&store, root, usize::MAX).unwrap();
        assert!(all
            .iter()
            .any(|v| store.name(*v).unwrap().as_deref() == Some("olap.tex")));

        // State retrieval is repeatable: the server still has everything.
        assert_eq!(server.message_count(), 2);
        let (_, stats2) = materialize_mailbox(&server, &store, server.inbox()).unwrap();
        assert_eq!(stats2.messages, 2);
    }

    #[test]
    fn option_2_stream_consumes_messages() {
        let server = Arc::new(ImapServer::in_process());
        server.append(server.inbox(), &msg("m1", vec![])).unwrap();
        server.append(server.inbox(), &msg("m2", vec![])).unwrap();

        let store = ViewStore::new();
        let stream = InboxStreamSource::new(Arc::clone(&server), server.inbox(), true)
            .into_stream_view(&store)
            .unwrap();
        let snapshot = store.group(stream).unwrap();
        assert!(snapshot.is_infinite());
        let GroupSnapshot::Infinite(source) = snapshot else {
            panic!()
        };

        let v1 = source.try_next(&store).unwrap().unwrap();
        assert_eq!(store.name(v1).unwrap().as_deref(), Some("m1"));
        assert_eq!(server.message_count(), 1, "m1 consumed from server");

        let v2 = source.try_next(&store).unwrap().unwrap();
        assert_eq!(store.name(v2).unwrap().as_deref(), Some("m2"));
        assert_eq!(server.message_count(), 0);

        // Stream is dry but not ended; a new delivery resumes it.
        assert_eq!(source.try_next(&store).unwrap(), None);
        server.append(server.inbox(), &msg("m3", vec![])).unwrap();
        let v3 = source.try_next(&store).unwrap().unwrap();
        assert_eq!(store.name(v3).unwrap().as_deref(), Some("m3"));
    }

    #[test]
    fn non_consuming_stream_leaves_server_intact() {
        let server = Arc::new(ImapServer::in_process());
        server.append(server.inbox(), &msg("m1", vec![])).unwrap();
        let store = ViewStore::new();
        let source = InboxStreamSource::new(Arc::clone(&server), server.inbox(), false);
        assert!(source.try_next(&store).unwrap().is_some());
        assert_eq!(server.message_count(), 1);
        // But it is not delivered twice.
        assert!(source.try_next(&store).unwrap().is_none());
    }
}
