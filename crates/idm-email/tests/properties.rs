//! Property-based tests: Base64 codec against the spec, MIME wire
//! roundtrips, and date parsing.

use bytes::Bytes;
use idm_core::prelude::Timestamp;
use idm_email::base64;
use idm_email::message::{format_date, parse_date, Attachment, EmailMessage};
use proptest::prelude::*;

proptest! {
    /// decode ∘ encode is the identity on arbitrary bytes.
    #[test]
    fn base64_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let encoded = base64::encode(&data);
        prop_assert_eq!(base64::decode(&encoded).unwrap(), data);
    }

    /// Encoded output uses only the Base64 alphabet and is 4/3 the size.
    #[test]
    fn base64_output_shape(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let encoded = base64::encode(&data);
        prop_assert_eq!(encoded.len(), data.len().div_ceil(3) * 4);
        prop_assert!(encoded.bytes().all(
            |b| b.is_ascii_alphanumeric() || matches!(b, b'+' | b'/' | b'=')
        ));
    }

    /// The decoder never panics on arbitrary text.
    #[test]
    fn base64_decode_never_panics(text in ".{0,100}") {
        let _ = base64::decode(&text);
    }

    /// Wire-format roundtrip for arbitrary messages. Header values
    /// avoid newlines (folded headers unfold lossily, by design).
    #[test]
    fn message_wire_roundtrip(
        subject in "[^\r\n]{0,40}",
        from in "[a-z0-9.@]{0,20}",
        to in "[a-z0-9.@]{0,20}",
        date_secs in 0i64..4_000_000_000i64,
        body in "[a-zA-Z0-9 .,!\n]{0,200}",
        attachments in proptest::collection::vec(
            ("[a-z0-9.]{1,12}", proptest::collection::vec(any::<u8>(), 0..64)),
            0..3,
        ),
    ) {
        // Second precision only; trim to whole seconds.
        let message = EmailMessage {
            subject: subject.trim().to_owned(),
            from: from.trim().to_owned(),
            to: to.trim().to_owned(),
            date: Timestamp(date_secs),
            body: body.replace('\n', "\r\n"),
            attachments: attachments
                .into_iter()
                .map(|(filename, content)| Attachment {
                    filename,
                    content: Bytes::from(content),
                })
                .collect(),
        };
        let parsed = EmailMessage::from_wire(&message.to_wire()).expect("parse");
        prop_assert_eq!(parsed, message);
    }

    /// Date format/parse roundtrip over four millennia.
    #[test]
    fn date_roundtrip(secs in -30_000_000_000i64..60_000_000_000i64) {
        let t = Timestamp(secs);
        prop_assert_eq!(parse_date(&format_date(t)).unwrap(), t);
    }

    /// The message parser never panics on arbitrary input.
    #[test]
    fn from_wire_never_panics(raw in ".{0,400}") {
        let _ = EmailMessage::from_wire(&raw);
    }
}
