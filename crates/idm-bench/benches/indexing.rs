//! Criterion bench for **Figure 5**: full ingestion per data source
//! (data source access, conversion, catalog insert, component
//! indexing), plus the end-to-end pipeline. Latency models are on so
//! the measured cost *structure* matches the paper's (remote email
//! slower per byte than the local disk). Scale via `IDM_BENCH_SF`
//! (default 0.01 — the whole pipeline runs per sample).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use idm_dataset::{generate, DatasetConfig};
use idm_email::LatencyModel;
use idm_system::{DataSourcePlugin, FsPlugin, ImapPlugin, Pdsms};
use idm_vfs::{DiskLatency, NodeId};

fn bench_scale() -> f64 {
    std::env::var("IDM_BENCH_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01)
}

fn dataset_config(scale: f64) -> DatasetConfig {
    DatasetConfig {
        scale,
        imap_latency: LatencyModel::remote_2005(1.0),
        imap_sleep: true,
        ..DatasetConfig::default()
    }
}

fn figure5_indexing(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("figure5");
    group.sample_size(10);

    group.bench_function("filesystem_ingest", |b| {
        b.iter_batched(
            || {
                let dataset = generate(dataset_config(scale));
                dataset.fs.set_latency(DiskLatency::ide_2005(0.25));
                let system = Pdsms::new();
                let plugin: Arc<dyn DataSourcePlugin> =
                    Arc::new(FsPlugin::new(Arc::clone(&dataset.fs), NodeId::ROOT));
                (dataset, system, plugin)
            },
            |(_dataset, system, plugin)| {
                let stats = system.rvm().ingest_source(&plugin).expect("ingest");
                std::hint::black_box(stats.total_views())
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("email_ingest", |b| {
        b.iter_batched(
            || {
                let dataset = generate(dataset_config(scale));
                let system = Pdsms::new();
                let plugin: Arc<dyn DataSourcePlugin> =
                    Arc::new(ImapPlugin::new(Arc::clone(&dataset.imap)));
                (dataset, system, plugin)
            },
            |(_dataset, system, plugin)| {
                let stats = system.rvm().ingest_source(&plugin).expect("ingest");
                std::hint::black_box(stats.total_views())
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("full_pipeline", |b| {
        b.iter_batched(
            || {
                let dataset = generate(dataset_config(scale));
                dataset.fs.set_latency(DiskLatency::ide_2005(0.25));
                let mut system = Pdsms::new();
                system.register_source(Arc::new(FsPlugin::new(
                    Arc::clone(&dataset.fs),
                    NodeId::ROOT,
                )));
                system.register_source(Arc::new(ImapPlugin::new(Arc::clone(&dataset.imap))));
                (dataset, system)
            },
            |(_dataset, system)| {
                let stats = system.index_all().expect("ingest");
                std::hint::black_box(stats.len())
            },
            BatchSize::PerIteration,
        )
    });

    group.finish();
}

criterion_group!(benches, figure5_indexing);
criterion_main!(benches);
