//! Criterion bench for **Figure 6**: warm-cache response times of the
//! eight Table 4 queries. Scale via `IDM_BENCH_SF` (default 0.05).

use criterion::{criterion_group, criterion_main, Criterion};
use idm_bench::{build, BuildOptions, TABLE4_QUERIES};
use idm_query::ExpansionStrategy;

fn bench_scale() -> f64 {
    std::env::var("IDM_BENCH_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

fn figure6_queries(c: &mut Criterion) {
    let bench = build(BuildOptions {
        scale: bench_scale(),
        imap_latency_scale: 0.0,
        fs_latency_scale: 0.0,
        imap_sleep: false,
        with_rss: false,
    });
    let processor = bench.processor(ExpansionStrategy::Forward);

    let expected = bench.expected_counts();
    let mut group = c.benchmark_group("figure6");
    for (i, (name, iql)) in TABLE4_QUERIES.into_iter().enumerate() {
        // Warm up and check against the planted ground truth.
        let result = processor.execute(iql).expect("query runs");
        assert_eq!(
            result.rows.len(),
            expected[i],
            "{name} must return the planted count"
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = processor.execute(std::hint::black_box(iql)).expect("query");
                std::hint::black_box(r.rows.len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = figure6_queries
}
criterion_main!(benches);
